"""Application communication patterns (paper Tables 4 and 5).

The paper extracts the static patterns of three programs; the original
Fortran sources are not needed because the evaluation consumes only the
extracted pattern and its message sizes, both of which Table 4 and the
program descriptions pin down:

**GS** -- Gauss-Seidel iteration on a discretised ``G x G`` unit square.
The PEs form a logical linear array (row strips of the grid); each PE
exchanges its boundary row -- ``G`` elements -- with its (up to) two
neighbours.  126 connections on 64 PEs.

**TSCF** -- self-consistent-field simulation of a self-gravitating
system; explicit send/receive along a 64-PE hypercube.  The paper notes
the message size does *not* scale with the problem size (5120
particles); the reductions exchange fixed-size coefficient vectors,
modelled here as ``TSCF_MESSAGE_SIZE`` elements.

**P3M** -- particle-particle/particle-mesh code with five static
patterns: four block-cyclic redistributions of the ``G^3`` mesh between
the (4,4,4)-block, (8,8)-pencil and z-plane layouts (message sizes are
the exact element counts computed by
:mod:`repro.patterns.redistribution`) and a 26-neighbour boundary
exchange on the logical 4x4x4 PE grid (small face/edge/corner messages;
see the calibration note in :func:`p3m_pattern`).

All patterns use the paper's natural PE-to-node numbering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.requests import Request, RequestSet
from repro.patterns.classic import hypercube_pattern, nearest_neighbour_3d
from repro.patterns.redistribution import (
    BlockCyclic,
    Distribution,
    redistribution_requests,
)

#: Fixed TSCF coefficient-exchange message size (elements).  The paper
#: gives no number, only that it is small and problem-size independent.
TSCF_MESSAGE_SIZE = 8

#: Number of PEs in every application study (the 8x8 torus).
NUM_PES = 64


@dataclass(frozen=True)
class ApplicationPattern:
    """One static pattern of an application (a Table 4 row)."""

    name: str
    kind: str  # 'shared array ref.' | 'explicit send/rec' | 'data distrib.'
    description: str
    problem_size: str
    requests: RequestSet


def gs_pattern(grid: int, *, num_pes: int = NUM_PES) -> ApplicationPattern:
    """GS: linear-array boundary exchange, ``grid``-element messages."""
    if grid % num_pes != 0:
        raise ValueError(f"grid {grid} must divide into {num_pes} row strips")
    requests = []
    for i in range(num_pes - 1):
        requests.append(Request(i, i + 1, size=grid))
        requests.append(Request(i + 1, i, size=grid))
    return ApplicationPattern(
        name="GS",
        kind="shared array ref.",
        description="logical linear array; each PE exchanges a boundary "
        "row with its adjacent PEs",
        problem_size=f"{grid} x {grid}",
        requests=RequestSet(requests, name=f"gs-{grid}"),
    )


def tscf_pattern(particles: int = 5120, *, num_pes: int = NUM_PES) -> ApplicationPattern:
    """TSCF: hypercube exchange with a fixed small message size."""
    requests = hypercube_pattern(num_pes, size=TSCF_MESSAGE_SIZE)
    return ApplicationPattern(
        name="TSCF",
        kind="explicit send/rec",
        description="hypercube pattern (self-consistent field reduction)",
        problem_size=str(particles),
        requests=RequestSet(list(requests), name=f"tscf-{particles}"),
    )


def _p3m_distributions(grid: int) -> dict[str, Distribution]:
    """The three mesh layouts P3M redistributes between."""
    e = (grid, grid, grid)
    return {
        # (:block, :block, :block): 4x4x4 blocks
        "block3": Distribution(e, (
            BlockCyclic(4, grid // 4),
            BlockCyclic(4, grid // 4),
            BlockCyclic(4, grid // 4),
        )),
        # (:, :, :block): z-planes over all 64 PEs
        "zplane": Distribution(e, (
            BlockCyclic(1, 1),
            BlockCyclic(1, 1),
            BlockCyclic(64, max(grid // 64, 1)),
        )),
        # (:block, :block, :): 8x8 xy-pencils
        "pencil": Distribution(e, (
            BlockCyclic(8, grid // 8),
            BlockCyclic(8, grid // 8),
            BlockCyclic(1, 1),
        )),
    }


_P3M_REDIST = {
    # pattern id -> (src layout, dst layout, Table 4 notation)
    1: ("block3", "zplane", "(:block,:block,:block) to (:,:,:block)"),
    2: ("zplane", "pencil", "(:,:,:block) to (:block,:block,:)"),
    3: ("zplane", "pencil", "(:,:,:block) to (:block,:block,:)"),
    4: ("pencil", "zplane", "(:block,:block,:) to (:,:,:block)"),
}


def p3m_pattern(which: int, grid: int) -> ApplicationPattern:
    """P3M pattern 1-5 for a ``grid^3`` mesh (paper uses 32 and 64)."""
    size_label = f"{grid} x {grid} x {grid}"
    if which in _P3M_REDIST:
        src_key, dst_key, notation = _P3M_REDIST[which]
        layouts = _p3m_distributions(grid)
        requests = redistribution_requests(
            layouts[src_key], layouts[dst_key], name=f"p3m{which}-{grid}"
        )
        return ApplicationPattern(
            name=f"P3M {which}",
            kind="data distrib.",
            description=notation,
            problem_size=size_label,
            requests=requests,
        )
    if which == 5:
        # Message-size calibration note: the 26-neighbour pattern forces
        # a multiplexing degree of at least 26 (every PE's injection
        # fiber carries 26 connections), so the paper's P3M 5 times (40
        # and 68 slots for 32^3 and 64^3) imply messages of only a few
        # elements -- boundary particle data, not full ghost-cell
        # volumes.  We use (grid/8, 2, 1) elements for (face, edge,
        # corner) neighbours, which scales mildly with the problem size
        # as the paper's times do.
        requests = nearest_neighbour_3d(
            (4, 4, 4), sizes=(max(grid // 8, 1), 2, 1)
        )
        return ApplicationPattern(
            name="P3M 5",
            kind="shared array ref.",
            description="logical 4x4x4 PE grid; each PE exchanges ghost "
            "cells with its 26 surrounding PEs",
            problem_size=size_label,
            requests=RequestSet(list(requests), name=f"p3m5-{grid}"),
        )
    raise ValueError(f"P3M pattern number must be 1..5, got {which}")


def application_patterns(*, gs_grid: int = 256, p3m_grid: int = 64) -> list[ApplicationPattern]:
    """All Table 4 rows at the given problem sizes."""
    return [
        gs_pattern(gs_grid),
        tscf_pattern(),
        *(p3m_pattern(k, p3m_grid) for k in (1, 2, 3, 4, 5)),
    ]
