"""Frequently used communication patterns (Table 3 workload).

Connection counts on 64 PEs match the paper's Table 3 exactly:

=================  =====  =============================================
pattern            conns  definition
=================  =====  =============================================
ring                 128  i -> i+-1 (mod n), both directions
nearest neighbour    256  torus 4-neighbour stencil
hypercube            384  i -> i XOR 2^k for every bit k
shuffle-exchange     126  i -> rol(i) (62 non-fixed) plus i -> i XOR 1
all-to-all          4032  every ordered pair
=================  =====  =============================================

All generators produce *logical* pairs and accept an embedding
(default: the paper's identity numbering).
"""

from __future__ import annotations

from repro.core.requests import RequestSet
from repro.patterns.embeddings import Embedding, embed_pairs, identity_embedding


def _embedding_or_identity(embedding: Embedding | None, n: int) -> Embedding:
    return embedding if embedding is not None else identity_embedding(n)


def ring_pattern(
    n: int,
    *,
    bidirectional: bool = True,
    size: int = 1,
    embedding: Embedding | None = None,
) -> RequestSet:
    """Bidirectional ring: every PE talks to both logical neighbours.

    2n connections (n if ``bidirectional`` is False).  All conflicts are
    at the PE ports ("switch conflicts"): each source drives two
    connections through its single injection fiber, so the optimal
    multiplexing degree is 2 (paper Table 3).
    """
    pairs = [(i, (i + 1) % n) for i in range(n)]
    if bidirectional:
        pairs += [(i, (i - 1) % n) for i in range(n)]
    emb = _embedding_or_identity(embedding, n)
    return embed_pairs(pairs, emb, size=size, name=f"ring-{n}")


def nearest_neighbour_2d(
    width: int,
    height: int,
    *,
    size: int = 1,
    embedding: Embedding | None = None,
) -> RequestSet:
    """4-neighbour torus stencil: each PE to its N/S/E/W neighbours."""
    n = width * height
    pairs = []
    for pe in range(n):
        x, y = pe % width, pe // width
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nbr = (x + dx) % width + width * ((y + dy) % height)
            pairs.append((pe, nbr))
    emb = _embedding_or_identity(embedding, n)
    return embed_pairs(pairs, emb, size=size, name=f"nn2d-{width}x{height}")


def nearest_neighbour_3d(
    dims: tuple[int, int, int],
    *,
    sizes: tuple[int, int, int] = (1, 1, 1),
    embedding: Embedding | None = None,
) -> RequestSet:
    """26-neighbour periodic stencil on a logical 3-D PE grid (P3M 5).

    ``sizes`` gives the message size for (face, edge, corner)
    neighbours -- for a ghost-cell exchange of an ``B^3`` block these
    are ``(B*B, B, 1)``.
    """
    from repro.core.requests import Request, RequestSet as RS

    dx_, dy_, dz_ = dims
    if min(dims) < 3:
        raise ValueError(
            f"26-neighbour stencil needs every radix >= 3 (got {dims}); "
            "smaller radices make +1 and -1 neighbours coincide"
        )
    n = dx_ * dy_ * dz_
    emb = _embedding_or_identity(embedding, n)
    requests = []
    for pe in range(n):
        x = pe % dx_
        y = (pe // dx_) % dy_
        z = pe // (dx_ * dy_)
        for ox in (-1, 0, 1):
            for oy in (-1, 0, 1):
                for oz in (-1, 0, 1):
                    if ox == oy == oz == 0:
                        continue
                    nbr = (
                        (x + ox) % dx_
                        + dx_ * ((y + oy) % dy_)
                        + dx_ * dy_ * ((z + oz) % dz_)
                    )
                    order = abs(ox) + abs(oy) + abs(oz)  # 1=face 2=edge 3=corner
                    requests.append(
                        Request(emb(pe), emb(nbr), size=sizes[order - 1])
                    )
    return RS(requests, name=f"nn3d-{dx_}x{dy_}x{dz_}")


def hypercube_pattern(
    n: int,
    *,
    size: int = 1,
    embedding: Embedding | None = None,
) -> RequestSet:
    """Hypercube: each PE to every PE differing in one address bit."""
    if n & (n - 1):
        raise ValueError(f"hypercube needs a power-of-two PE count, got {n}")
    bits = n.bit_length() - 1
    pairs = [(i, i ^ (1 << k)) for i in range(n) for k in range(bits)]
    emb = _embedding_or_identity(embedding, n)
    return embed_pairs(pairs, emb, size=size, name=f"hypercube-{n}")


def shuffle_exchange_pattern(
    n: int,
    *,
    size: int = 1,
    embedding: Embedding | None = None,
) -> RequestSet:
    """Shuffle (rotate-left, fixed points dropped) plus exchange (low bit).

    On 64 PEs: 62 shuffle connections (0 and 63 are fixed points of the
    rotation) + 64 exchange connections = the paper's 126.
    """
    if n & (n - 1):
        raise ValueError(f"shuffle-exchange needs a power-of-two PE count, got {n}")
    bits = n.bit_length() - 1
    pairs = []
    for i in range(n):
        shuffled = ((i << 1) | (i >> (bits - 1))) & (n - 1)
        if shuffled != i:
            pairs.append((i, shuffled))
    pairs += [(i, i ^ 1) for i in range(n)]
    emb = _embedding_or_identity(embedding, n)
    return embed_pairs(pairs, emb, size=size, name=f"shuffle-exchange-{n}")


def all_to_all_pattern(
    n: int,
    *,
    size: int = 1,
    embedding: Embedding | None = None,
) -> RequestSet:
    """All-to-all personalized communication: every ordered pair."""
    pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
    emb = _embedding_or_identity(embedding, n)
    return embed_pairs(pairs, emb, size=size, name=f"all-to-all-{n}")


def transpose_pattern(
    width: int,
    *,
    size: int = 1,
    embedding: Embedding | None = None,
) -> RequestSet:
    """Matrix transpose on a square PE grid: (x, y) -> (y, x)."""
    pairs = []
    for y in range(width):
        for x in range(width):
            if x != y:
                pairs.append((x + width * y, y + width * x))
    emb = _embedding_or_identity(embedding, width * width)
    return embed_pairs(pairs, emb, size=size, name=f"transpose-{width}")


def bit_reversal_pattern(
    n: int,
    *,
    size: int = 1,
    embedding: Embedding | None = None,
) -> RequestSet:
    """Bit-reversal permutation (FFT data exchange)."""
    if n & (n - 1):
        raise ValueError(f"bit reversal needs a power-of-two PE count, got {n}")
    bits = n.bit_length() - 1
    pairs = []
    for i in range(n):
        rev = int(f"{i:0{bits}b}"[::-1], 2)
        if rev != i:
            pairs.append((i, rev))
    emb = _embedding_or_identity(embedding, n)
    return embed_pairs(pairs, emb, size=size, name=f"bit-reversal-{n}")
