"""Random communication patterns (Table 1 workload).

The paper: "A random pattern consists of a certain number of random
connection requests.  A connection request is obtained by randomly
generating the source and the destination.  Uniform probability
distribution is used."

Pairs are sampled **without replacement** (all pairs distinct,
``src != dst``).  Two observations pin this down: Table 1 goes up to
4000 connections while 64 PEs admit only 4032 distinct pairs, and the
ordered-AAPC column saturates at the 64-phase AAPC bound for dense
rows -- impossible if duplicate pairs occurred, since a duplicate needs
a second time slot outside its AAPC phase.
"""

from __future__ import annotations

import numpy as np

from repro.core.requests import RequestSet


def random_pattern(
    num_nodes: int,
    num_connections: int,
    *,
    seed: int | np.random.Generator = 0,
    size: int = 1,
) -> RequestSet:
    """``num_connections`` distinct uniform pairs on ``num_nodes`` PEs.

    Parameters
    ----------
    num_nodes:
        Number of PEs (64 for the paper's 8x8 torus).
    num_connections:
        Pattern density; at most ``num_nodes * (num_nodes - 1)``.
    seed:
        Seed or generator; patterns are deterministic given it.
    size:
        Message size attached to every request (irrelevant to the
        schedulers; the simulator benches use it).
    """
    total = num_nodes * (num_nodes - 1)
    if not 0 <= num_connections <= total:
        raise ValueError(
            f"cannot draw {num_connections} distinct pairs from {total}"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    # Enumerate the src != dst pairs as 0..total-1 and sample indices
    # without replacement (vectorised; total is only 4032 on the paper's
    # machine so this is cheap even for dense draws).
    picks = rng.choice(total, size=num_connections, replace=False)
    src = picks // (num_nodes - 1)
    off = picks % (num_nodes - 1)
    dst = np.where(off >= src, off + 1, off)  # skip the diagonal
    pairs = [(int(s), int(d)) for s, d in zip(src, dst)]
    return RequestSet.from_pairs(pairs, size=size, name=f"random-{num_connections}")
