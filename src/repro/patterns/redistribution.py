"""Block-cyclic array redistribution patterns (Table 2 / P3M workloads).

Languages like CRAFT Fortran and HPF let a program redistribute an
array between phases; the induced communication is a static pattern the
compiler can schedule.  The paper studies redistributions of a 3-D
array (64^3 in Table 2; 32^3 and 64^3 for P3M) over 64 PEs, each
dimension distributed ``p:block(s)`` -- block-cyclic over ``p``
processors with block size ``s``.

Ownership is separable per dimension (``owner(i) = (i // s) % p``), so
the (src PE, dst PE) communication pairs -- and the exact element count
of every pair, which the simulator uses as the message size -- are the
per-dimension pair sets combined by a Cartesian product.  That closed
form is what lets the Table 2 bench evaluate 500 random redistributions
in seconds instead of walking 64^3 elements each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.requests import RequestSet


@dataclass(frozen=True)
class BlockCyclic:
    """One dimension's ``p:block(s)`` distribution."""

    procs: int
    block: int

    def __post_init__(self) -> None:
        if self.procs < 1 or self.block < 1:
            raise ValueError(f"bad block-cyclic spec {self}")

    def owners(self, extent: int) -> np.ndarray:
        """Owner coordinate of every index ``0..extent-1``."""
        return (np.arange(extent) // self.block) % self.procs

    def notation(self) -> str:
        """HPF-ish rendering, e.g. ``8:block(4)`` or ``:`` (undistributed)."""
        if self.procs == 1:
            return ":"
        return f"{self.procs}:block({self.block})"


@dataclass(frozen=True)
class Distribution:
    """A multi-dimensional block-cyclic distribution.

    PE coordinates combine to a PE id with dimension 0 fastest,
    mirroring the node numbering of the torus topologies.
    """

    extents: tuple[int, ...]
    dims: tuple[BlockCyclic, ...]

    def __post_init__(self) -> None:
        if len(self.extents) != len(self.dims):
            raise ValueError("one BlockCyclic spec per dimension required")

    @property
    def num_pes(self) -> int:
        return math.prod(d.procs for d in self.dims)

    def pe_id(self, coords: tuple[int, ...]) -> int:
        pe, radix = 0, 1
        for c, d in zip(coords, self.dims):
            pe += c * radix
            radix *= d.procs
        return pe

    def owner(self, index: tuple[int, ...]) -> int:
        """PE id owning array element ``index`` (reference semantics;
        the pair computation uses the vectorised per-dim form)."""
        coords = tuple(
            (i // d.block) % d.procs for i, d in zip(index, self.dims)
        )
        return self.pe_id(coords)

    def notation(self) -> str:
        return "(" + ", ".join(d.notation() for d in self.dims) + ")"


def _dim_pair_counts(extent: int, src: BlockCyclic, dst: BlockCyclic) -> dict[tuple[int, int], int]:
    """Count indices owned by (src owner a, dst owner b) per dimension."""
    a = src.owners(extent)
    b = dst.owners(extent)
    keys = a * dst.procs + b
    uniq, counts = np.unique(keys, return_counts=True)
    return {
        (int(k) // dst.procs, int(k) % dst.procs): int(c)
        for k, c in zip(uniq, counts)
    }


def redistribution_pairs(
    src: Distribution, dst: Distribution
) -> dict[tuple[int, int], int]:
    """Element counts per (src PE, dst PE) pair, self-pairs excluded.

    Self-pairs (data that stays put) move no message; the returned
    counts are exactly the message sizes of the redistribution's
    communication pattern.
    """
    if src.extents != dst.extents:
        raise ValueError(
            f"distributions describe different arrays: {src.extents} vs {dst.extents}"
        )
    per_dim = [
        _dim_pair_counts(e, s, d)
        for e, s, d in zip(src.extents, src.dims, dst.dims)
    ]
    pairs: dict[tuple[int, int], int] = {(0, 0): 1}
    src_radix, dst_radix = 1, 1
    for dim, table in enumerate(per_dim):
        nxt: dict[tuple[int, int], int] = {}
        for (sp, dp), cnt in pairs.items():
            for (a, b), c in table.items():
                key = (sp + a * src_radix, dp + b * dst_radix)
                nxt[key] = nxt.get(key, 0) + cnt * c
        pairs = nxt
        src_radix *= src.dims[dim].procs
        dst_radix *= dst.dims[dim].procs
    return {k: v for k, v in pairs.items() if k[0] != k[1]}


def redistribution_requests(
    src: Distribution, dst: Distribution, *, name: str = ""
) -> RequestSet:
    """The redistribution as a sized request set (sorted for determinism)."""
    counts = redistribution_pairs(src, dst)
    triples = [(s, d, c) for (s, d), c in sorted(counts.items())]
    return RequestSet.from_sized_pairs(
        triples, name=name or f"redist{src.notation()}->{dst.notation()}"
    )


def _ordered_factorizations(total: int, ndims: int) -> list[tuple[int, ...]]:
    """All ordered ``ndims``-tuples of positive ints with the given product."""
    if ndims == 1:
        return [(total,)]
    out = []
    for p in range(1, total + 1):
        if total % p == 0:
            for rest in _ordered_factorizations(total // p, ndims - 1):
                out.append((p, *rest))
    return out


def random_distribution(
    extents: tuple[int, ...],
    total_pes: int,
    *,
    seed: int | np.random.Generator = 0,
) -> Distribution:
    """A random distribution per the paper's Table 2 protocol.

    The PE grid is a uniformly random ordered factorization of
    ``total_pes`` (subject to ``p_d <= extent_d``), and each block size
    is uniform in ``1 .. extent_d // p_d`` so that every PE owns part
    of the array ("precautions are taken to ensure ... each processor
    contains a part of the array").
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    grids = [
        g
        for g in _ordered_factorizations(total_pes, len(extents))
        if all(p <= e for p, e in zip(g, extents))
    ]
    if not grids:
        raise ValueError(
            f"no PE grid of {total_pes} processors fits extents {extents}"
        )
    grid = grids[rng.integers(len(grids))]
    dims = tuple(
        BlockCyclic(p, int(rng.integers(1, max(e // p, 1) + 1)))
        for p, e in zip(grid, extents)
    )
    return Distribution(tuple(extents), dims)
