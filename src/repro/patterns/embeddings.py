"""Logical-PE to physical-node embeddings.

The classic patterns (ring, hypercube, 3-D stencil) are defined over a
*logical* PE numbering; realising them on the physical torus requires an
embedding.  The paper uses the natural numbering throughout (PE i is
node i, the Fig. 1 numbering); we expose alternatives as ablations
because the embedding changes path lengths and therefore the achievable
multiplexing degree:

``identity_embedding``
    PE i -> node i (the paper's choice).

``snake_embedding``
    Boustrophedon row order.  Makes logically-consecutive PEs physically
    adjacent, and (for even heights) closes into a Hamiltonian cycle of
    the torus -- a dilation-1 ring embedding.

``gray_embedding``
    Each coordinate's bit-group is placed with a binary-reflected Gray
    code, the textbook hypercube-in-torus embedding: logical neighbours
    differing in one bit land at ring distance 1 for the Gray-adjacent
    transitions.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.core.requests import Request, RequestSet

#: An embedding maps a logical PE id to a physical node id.
Embedding = Callable[[int], int]


def identity_embedding(n: int) -> Embedding:
    """PE i -> node i (requires only that ids stay in range)."""

    def embed(pe: int) -> int:
        if not 0 <= pe < n:
            raise ValueError(f"logical PE {pe} out of range [0, {n})")
        return pe

    return embed


def snake_embedding(width: int, height: int) -> Embedding:
    """Boustrophedon embedding of ``width*height`` PEs onto a torus.

    Logical PE i sits at row ``i // width``; even rows run left to
    right, odd rows right to left, so PE i and PE i+1 are always
    physically adjacent.
    """

    def embed(pe: int) -> int:
        if not 0 <= pe < width * height:
            raise ValueError(f"logical PE {pe} out of range")
        y, r = divmod(pe, width)
        x = r if y % 2 == 0 else width - 1 - r
        return x + width * y

    return embed


def _gray(i: int) -> int:
    return i ^ (i >> 1)


def gray_embedding(width: int, height: int) -> Embedding:
    """Gray-code placement of bit-partitioned logical ids.

    Logical id bits split into an x-group (low ``log2 width`` bits) and
    a y-group; each group value ``g`` is placed at ring position
    ``gray(g)``, so +1 transitions in a group move one ring step for
    half the values -- the standard hypercube embedding.  Requires
    power-of-two dimensions.
    """
    if width & (width - 1) or height & (height - 1):
        raise ValueError("gray embedding needs power-of-two dimensions")
    xbits = width.bit_length() - 1

    def embed(pe: int) -> int:
        if not 0 <= pe < width * height:
            raise ValueError(f"logical PE {pe} out of range")
        xg, yg = pe & (width - 1), pe >> xbits
        return _gray(xg) + width * _gray(yg)

    return embed


def embed_pairs(
    pairs: Iterable[tuple[int, int]],
    embedding: Embedding,
    *,
    size: int = 1,
    name: str = "",
) -> RequestSet:
    """Apply an embedding to logical pairs, producing physical requests."""
    return RequestSet(
        (Request(embedding(s), embedding(d), size=size) for s, d in pairs),
        name=name,
    )


def embed_requests(requests: Sequence[Request], embedding: Embedding, *, name: str = "") -> RequestSet:
    """Apply an embedding to logical requests, preserving sizes/tags."""
    return RequestSet(
        (
            Request(embedding(r.src), embedding(r.dst), size=r.size, tag=r.tag)
            for r in requests
        ),
        name=name,
    )
