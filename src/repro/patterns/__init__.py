"""Communication pattern generators (the evaluation workloads).

The paper evaluates the schedulers on three families of patterns
(section 3.4) and the simulator on application patterns (section 4.2):

* **random patterns** -- ``n`` distinct uniform (src, dst) pairs
  (:mod:`repro.patterns.random_patterns`, Table 1);
* **random data redistributions** -- block-cyclic redistributions of a
  3-D array over 64 PEs (:mod:`repro.patterns.redistribution`, Table 2);
* **frequently used patterns** -- ring, nearest neighbour, hypercube,
  shuffle-exchange, all-to-all (:mod:`repro.patterns.classic`, Table 3);
* **application patterns** -- the static patterns of the GS, TSCF and
  P3M programs with problem-size-dependent message sizes
  (:mod:`repro.patterns.applications`, Tables 4-5).

Logical patterns are mapped onto physical torus nodes by the embeddings
of :mod:`repro.patterns.embeddings` (identity by default, as in the
paper; snake and Gray-code embeddings are provided for ablations).
"""

from repro.patterns.random_patterns import random_pattern
from repro.patterns.embeddings import (
    Embedding,
    identity_embedding,
    snake_embedding,
    gray_embedding,
)
from repro.patterns.classic import (
    ring_pattern,
    nearest_neighbour_2d,
    nearest_neighbour_3d,
    hypercube_pattern,
    shuffle_exchange_pattern,
    all_to_all_pattern,
    transpose_pattern,
    bit_reversal_pattern,
)
from repro.patterns.redistribution import (
    BlockCyclic,
    Distribution,
    redistribution_pairs,
    redistribution_requests,
    random_distribution,
)
from repro.patterns.applications import (
    ApplicationPattern,
    gs_pattern,
    tscf_pattern,
    p3m_pattern,
    application_patterns,
)

__all__ = [
    "random_pattern",
    "Embedding",
    "identity_embedding",
    "snake_embedding",
    "gray_embedding",
    "ring_pattern",
    "nearest_neighbour_2d",
    "nearest_neighbour_3d",
    "hypercube_pattern",
    "shuffle_exchange_pattern",
    "all_to_all_pattern",
    "transpose_pattern",
    "bit_reversal_pattern",
    "BlockCyclic",
    "Distribution",
    "redistribution_pairs",
    "redistribution_requests",
    "random_distribution",
    "ApplicationPattern",
    "gs_pattern",
    "tscf_pattern",
    "p3m_pattern",
    "application_patterns",
]
