"""Whole application programs as communication-phase sequences.

Table 4's patterns all live "in the main iterations of the programs";
this module assembles them into :class:`~repro.compiler.program.CommPhase`
lists so the compiler stack can treat GS, TSCF and P3M the way the
paper describes them -- iterated multi-phase programs, each phase with
its own multiplexing degree -- rather than as isolated patterns.

The structures below follow the paper's program descriptions:

* **GS** -- one boundary-exchange phase per Gauss-Seidel sweep;
* **TSCF** -- one hypercube coefficient-reduction phase per time step;
* **P3M** -- per time step: scatter the mesh to planes (pattern 1),
  forward FFT pencils (2), inverse FFT pencils (3), gather back (4),
  and the particle ghost exchange (5).
"""

from __future__ import annotations

from repro.compiler.program import CommPhase
from repro.patterns.applications import gs_pattern, p3m_pattern, tscf_pattern


def gs_program(grid: int, *, iterations: int = 1) -> list[CommPhase]:
    """The GS solver: boundary exchange each sweep."""
    return [
        CommPhase(
            name="gs-boundary",
            requests=gs_pattern(grid).requests,
            repetitions=iterations,
        )
    ]


def tscf_program(*, timesteps: int = 1) -> list[CommPhase]:
    """TSCF: hypercube coefficient reduction each time step."""
    return [
        CommPhase(
            name="tscf-reduce",
            requests=tscf_pattern().requests,
            repetitions=timesteps,
        )
    ]


def p3m_program(grid: int, *, timesteps: int = 1) -> list[CommPhase]:
    """P3M: the five static patterns of one time step, in order."""
    return [
        CommPhase(
            name=f"p3m-{which}",
            requests=p3m_pattern(which, grid).requests,
            repetitions=timesteps,
        )
        for which in (1, 2, 3, 4, 5)
    ]


def application_programs(
    *, gs_grid: int = 256, p3m_grid: int = 64, iterations: int = 1
) -> dict[str, list[CommPhase]]:
    """All three programs, keyed by name."""
    return {
        "GS": gs_program(gs_grid, iterations=iterations),
        "TSCF": tscf_program(timesteps=iterations),
        "P3M": p3m_program(p3m_grid, timesteps=iterations),
    }
