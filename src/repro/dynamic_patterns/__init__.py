"""Handling communication patterns unknown at compile time -- extension.

The paper's section 3 sketches (and its conclusion names as ongoing
work) two ways a compiled-communication system can serve *dynamic*
patterns without a run-time control plane, both built on statically
determined multiplexed sequences:

**standing all-to-all** (:mod:`repro.dynamic_patterns.standing`)
    Keep the AAPC configuration set cycling permanently.  Every ordered
    pair owns one phase of the frame, so any message can be sent with
    zero setup -- at the cost of a 64-slot frame on the 8x8 torus
    ("establishing paths for all-to-all communication can be
    prohibitively expensive for a large system").

**multihop emulation** (:mod:`repro.dynamic_patterns.multihop`)
    Embed a low-degree logical topology (e.g. a hypercube: 7-8 slots
    instead of 64) with compiled TDM, and forward dynamic messages
    store-and-forward over the established logical channels -- trading
    per-hop buffering (electronic, at the PEs, not in the optical
    switches) for a much shorter frame.

:mod:`repro.dynamic_patterns.workload` generates online traffic, and
``benchmarks/bench_extensions.py`` compares both mechanisms against the
full run-time reservation protocol of section 4.1.
"""

from repro.dynamic_patterns.workload import OnlineRequest, random_online_workload
from repro.dynamic_patterns.standing import StandingAllToAll
from repro.dynamic_patterns.multihop import MultihopEmulation

__all__ = [
    "OnlineRequest",
    "random_online_workload",
    "StandingAllToAll",
    "MultihopEmulation",
]
