"""Standing all-to-all service for dynamic messages.

The network permanently cycles through a phased AAPC configuration set:
every ordered pair ``(s, d)`` owns exactly one phase, so a dynamically
issued message simply waits for its phase to come around and streams
``slot_payload`` elements each revolution -- zero setup latency, no
control traffic, no buffering inside the optical switches.

The price is the frame length ``P`` (64 on the paper's 8x8 torus): a
``z``-element message takes about ``P * ceil(z / slot_payload)`` slots,
and messages between the *same* pair queue behind each other.  The
bench compares this against multihop emulation and full run-time
reservation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.aapc.phases import aapc_decomposition
from repro.dynamic_patterns.workload import OnlineRequest
from repro.simulator.messages import Message
from repro.simulator.params import SimParams
from repro.topology.base import Topology


@dataclass
class OnlineResult:
    """Outcome of serving an online workload."""

    completion_time: int
    frame_length: int
    messages: list[Message]
    mechanism: str


class StandingAllToAll:
    """Serve dynamic traffic over the standing AAPC frame."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        decomposition = aapc_decomposition(topology)
        self.phase_of = decomposition.phase_of
        self.frame_length = decomposition.num_phases

    def simulate(
        self,
        workload: list[OnlineRequest],
        params: SimParams = SimParams(),
    ) -> OnlineResult:
        """Slot-stepped service of ``workload`` (arrival order FIFO per pair)."""
        messages = [
            Message(mid=i, src=r.src, dst=r.dst, size=r.size)
            for i, r in enumerate(workload)
        ]
        for m, r in zip(messages, workload):
            m.first_attempt = r.arrival
            m.established = r.arrival  # the channel pre-exists
        # Pending queue per pair, filled as messages arrive; pairs with
        # backlog are indexed by their phase so each slot only touches
        # the pairs it can actually serve.
        by_arrival = sorted(range(len(workload)), key=lambda i: workload[i].arrival)
        queues: dict[tuple[int, int], deque[int]] = {}
        busy_pairs: list[set[tuple[int, int]]] = [set() for _ in range(self.frame_length)]
        remaining = {i: workload[i].size for i in range(len(workload))}
        next_arrival = 0
        undelivered = len(workload)
        t = 0
        completion = 0
        while undelivered:
            if t > params.max_slots:
                raise RuntimeError("standing-AAPC service exceeded max_slots")
            while (
                next_arrival < len(by_arrival)
                and workload[by_arrival[next_arrival]].arrival <= t
            ):
                i = by_arrival[next_arrival]
                pair = (workload[i].src, workload[i].dst)
                queues.setdefault(pair, deque()).append(i)
                busy_pairs[self.phase_of[pair]].add(pair)
                next_arrival += 1
            phase = t % self.frame_length
            served = busy_pairs[phase]
            for pair in list(served):
                queue = queues[pair]
                head = queue[0]
                remaining[head] -= params.slot_payload
                if remaining[head] <= 0:
                    queue.popleft()
                    messages[head].delivered = t + 1
                    completion = max(completion, t + 1)
                    undelivered -= 1
                    if not queue:
                        served.discard(pair)
            t += 1
        return OnlineResult(
            completion_time=completion,
            frame_length=self.frame_length,
            messages=messages,
            mechanism="standing-aapc",
        )
