"""Online (run-time-only) traffic workloads.

A dynamic pattern is a stream of messages whose endpoints are unknown
until they are issued.  :func:`random_online_workload` generates such a
stream: uniform random endpoints, configurable size, and arrivals from
a seeded geometric process (a discrete-time Poisson stand-in), so every
mechanism comparison sees the identical stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OnlineRequest:
    """One dynamically issued message."""

    src: int
    dst: int
    size: int
    arrival: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("online request must cross the network")
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if self.arrival < 0:
            raise ValueError("arrival must be >= 0")


def random_online_workload(
    num_nodes: int,
    num_messages: int,
    *,
    mean_gap: float = 2.0,
    size: int = 4,
    seed: int | np.random.Generator = 0,
) -> list[OnlineRequest]:
    """A stream of uniform random messages with geometric inter-arrivals.

    Parameters
    ----------
    mean_gap:
        Mean slots between consecutive message arrivals (system-wide).
        Smaller = heavier load.
    size:
        Elements per message (dynamic traffic is typically fine-grained,
        per the paper's discussion of shared-array references).
    """
    if num_messages < 1:
        raise ValueError("need at least one message")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    p = min(1.0, 1.0 / max(mean_gap, 1e-9))
    gaps = rng.geometric(p, size=num_messages) - 1
    arrivals = np.cumsum(gaps)
    out = []
    for t in arrivals:
        s = int(rng.integers(num_nodes))
        d = int(rng.integers(num_nodes - 1))
        if d >= s:
            d += 1
        out.append(OnlineRequest(src=s, dst=d, size=size, arrival=int(t)))
    return out
