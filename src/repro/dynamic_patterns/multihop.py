"""Multihop emulation over a compiled logical topology.

The second of the paper's mechanisms for dynamic patterns: statically
embed a *logical* low-degree topology with compiled TDM -- here a
hypercube, whose 384 connections need only ~8 slots on the 8x8 torus
versus 64 for standing all-to-all -- and forward dynamic messages hop
by hop over the established logical channels.  Intermediate buffering
happens in the PEs' electronic memory (store-and-forward), never inside
the all-optical switches, so the optical constraints are respected.

Routing over the logical hypercube is e-cube (correct address bits from
least significant up), deadlock-free with per-channel FIFO queues.  A
``z``-element message crossing ``h`` logical hops costs roughly
``h * P * ceil(z / slot_payload)`` slots uncontended (``P`` = the
logical pattern's multiplexing degree), so the mechanism wins over
standing all-to-all exactly when ``h * P < 64`` -- the trade the bench
measures.
"""

from __future__ import annotations

from collections import deque

from repro.core.paths import route_requests
from repro.core.registry import get_scheduler
from repro.dynamic_patterns.standing import OnlineResult
from repro.dynamic_patterns.workload import OnlineRequest
from repro.patterns.classic import hypercube_pattern
from repro.simulator.messages import Message
from repro.simulator.params import SimParams
from repro.topology.base import Topology


class MultihopEmulation:
    """Dynamic-message service over a compiled logical hypercube."""

    def __init__(self, topology: Topology, *, scheduler: str = "combined") -> None:
        n = topology.num_nodes
        if n & (n - 1):
            raise ValueError("hypercube emulation needs a power-of-two node count")
        self.topology = topology
        self.bits = n.bit_length() - 1
        pattern = hypercube_pattern(n)
        connections = route_requests(topology, pattern)
        schedule = get_scheduler(scheduler)(connections, topology)
        schedule.validate(connections)
        self.frame_length = schedule.degree
        #: logical channel (u, v) -> its slot in the compiled frame.
        self.slot_of: dict[tuple[int, int], int] = {
            connections[i].pair: slot for i, slot in schedule.slot_map().items()
        }

    def next_hop(self, at: int, dst: int) -> int:
        """E-cube routing: flip the lowest differing address bit."""
        diff = at ^ dst
        lowest = diff & -diff
        return at ^ lowest

    def hops(self, src: int, dst: int) -> int:
        """Logical path length (Hamming distance)."""
        return (src ^ dst).bit_count()

    def simulate(
        self,
        workload: list[OnlineRequest],
        params: SimParams = SimParams(),
    ) -> OnlineResult:
        """Slot-stepped store-and-forward service of ``workload``."""
        messages = [
            Message(mid=i, src=r.src, dst=r.dst, size=r.size)
            for i, r in enumerate(workload)
        ]
        for m, r in zip(messages, workload):
            m.first_attempt = r.arrival
            m.established = r.arrival
        by_arrival = sorted(range(len(workload)), key=lambda i: workload[i].arrival)
        next_arrival = 0
        # Per logical channel: FIFO of (mid, remaining elements).
        channel_q: dict[tuple[int, int], deque[list[int]]] = {}
        # Channels with backlog, indexed by their frame slot.
        busy: list[set[tuple[int, int]]] = [set() for _ in range(self.frame_length)]
        undelivered = len(workload)
        t = 0
        completion = 0

        def enqueue(mid: int, at: int, when_dst: int) -> None:
            channel = (at, self.next_hop(at, when_dst))
            channel_q.setdefault(channel, deque()).append([mid, workload[mid].size])
            busy[self.slot_of[channel]].add(channel)

        while undelivered:
            if t > params.max_slots:
                raise RuntimeError("multihop emulation exceeded max_slots")
            while (
                next_arrival < len(by_arrival)
                and workload[by_arrival[next_arrival]].arrival <= t
            ):
                i = by_arrival[next_arrival]
                enqueue(i, workload[i].src, workload[i].dst)
                next_arrival += 1
            slot = t % self.frame_length
            for channel in list(busy[slot]):
                queue = channel_q[channel]
                head = queue[0]
                head[1] -= params.slot_payload
                if head[1] <= 0:
                    queue.popleft()
                    if not queue:
                        busy[slot].discard(channel)
                    mid = head[0]
                    _, arrived_at = channel
                    if arrived_at == workload[mid].dst:
                        messages[mid].delivered = t + 1
                        completion = max(completion, t + 1)
                        undelivered -= 1
                    else:
                        # Store-and-forward: next hop from t+1 onward.
                        enqueue(mid, arrived_at, workload[mid].dst)
            t += 1
        return OnlineResult(
            completion_time=completion,
            frame_length=self.frame_length,
            messages=messages,
            mechanism="multihop-hypercube",
        )
