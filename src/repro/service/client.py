"""Clients for the JSON-lines compile server.

:class:`AsyncCompileClient` speaks the protocol over an asyncio stream;
:class:`CompileClient` is a blocking wrapper over a plain socket for
scripts, the CLI and CI.  Both support TCP (``host``/``port``) and unix
sockets (``socket_path``) and can be used as context managers::

    with CompileClient(socket_path="/tmp/repro.sock") as c:
        reply = c.compile({"kind": "torus", "width": 8},
                          pattern={"pattern": "all-to-all", "nodes": 64})
        assert reply["ok"] and reply["cache"] in ("hit", "miss")

Failures are **typed** (:mod:`repro.service.errors`): an ``ok: false``
reply raises the exception its ``error_type`` names
(:class:`ServerError`, :class:`ProtocolError`, :class:`Overloaded`,
:class:`ServiceTimeout`), and transport faults -- resets, refusals,
socket timeouts -- are wrapped in :class:`TransportError` /
:class:`ServiceTimeout` instead of leaking raw ``OSError``.

Both clients share the resilience machinery of
:mod:`repro.service.policy`:

* **retries** -- transient failures (transport, timeout, overloaded)
  of *idempotent* verbs are retried under a
  :class:`~repro.service.policy.RetryPolicy`: exponential backoff with
  full jitter, a wall-clock retry budget, and the server's
  ``retry_after`` hint honoured as a floor.  Compile retries are
  idempotent-safe by construction -- the request is content-addressed,
  so a replay lands on the same digest (sent as the ``idem`` field) and
  is answered from cache or coalesced in-flight, never compiled into a
  different artifact.  ``shutdown`` is never retried.
* **circuit breaker** -- after ``failure_threshold`` consecutive
  transient failures the breaker opens and requests fast-fail with
  :class:`CircuitOpen` (no socket I/O) until the reset timer half-opens
  it for a probe.  Pass one :class:`CircuitBreaker` instance to several
  clients to pool their view of server health.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Any

from repro.compiler.serialize import artifact_digest

from repro.core import perf
from repro.service.errors import (
    CircuitOpen,
    Overloaded,
    ProtocolError,
    ServerError,
    ServiceError,
    ServiceTimeout,
    TransportError,
    reply_error,
)
from repro.service.policy import (
    MAX_LINE_BYTES,
    CircuitBreaker,
    RetryPolicy,
    request_digest,
)

__all__ = [
    "AsyncCompileClient",
    "CompileClient",
    "MAX_LINE_BYTES",
    "ServerError",
    "ServiceError",
    "request_digest",
]

#: Verbs safe to replay: read-only, or content-addressed (``compile``),
#: or convergent (``repair`` -- an anti-entropy sweep run twice settles
#: on the same replica set; ``digests`` is a read-only inventory).
#: ``amend`` is deliberately absent -- replaying an epoch update would
#: apply it twice; the server's epoch check turns a blind replay into a
#: typed :class:`~repro.service.errors.EpochConflict` instead.
IDEMPOTENT_OPS = frozenset(
    {"ping", "stats", "health", "ready", "compile", "shardmap",
     "digests", "repair"}
)


def _amend_request(
    topology: dict[str, Any] | None,
    *,
    pattern: dict[str, Any] | None,
    pairs: list | None,
    scheduler: str | None,
    root: str | None,
    epoch: int | None,
    add: list | None,
    remove: list | None,
    request_id: int,
    deadline: float | None = None,
) -> dict[str, Any]:
    req: dict[str, Any] = {"op": "amend", "id": request_id}
    if topology is not None:
        req["topology"] = topology
    if pattern is not None:
        req["pattern"] = pattern
    if pairs is not None:
        req["pairs"] = [list(p) for p in pairs]
    if scheduler is not None:
        req["scheduler"] = scheduler
    if root is not None:
        req["root"] = root
        req["epoch"] = epoch
    if add is not None:
        req["add"] = [list(r) for r in add]
    if remove is not None:
        req["remove"] = [list(r) for r in remove]
    if deadline is not None:
        req["deadline"] = deadline
    return req


def _compile_request(
    topology: dict[str, Any],
    *,
    pattern: dict[str, Any] | None,
    pairs: list | None,
    scheduler: str | None,
    registers: bool,
    request_id: int,
    deadline: float | None = None,
) -> dict[str, Any]:
    req: dict[str, Any] = {"op": "compile", "id": request_id, "topology": topology}
    if pattern is not None:
        req["pattern"] = pattern
    if pairs is not None:
        req["pairs"] = [list(p) for p in pairs]
    if scheduler is not None:
        req["scheduler"] = scheduler
    if registers:
        req["registers"] = True
    if deadline is not None:
        req["deadline"] = deadline
    return req


def _parse_reply(line: bytes, req: dict[str, Any]) -> dict[str, Any]:
    try:
        reply = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed reply frame: {exc}") from None
    if not isinstance(reply, dict):
        raise ProtocolError(f"malformed reply: {reply!r}")
    if not reply.get("ok"):
        raise reply_error(reply)
    _verify_reply(req, reply)
    return reply


def _verify_reply(req: dict[str, Any], reply: dict[str, Any]) -> None:
    """End-to-end integrity past TCP's checksum (chaos-grade links).

    A reply that *parses* can still lie: the ``idem`` echo proves the
    server answered the request we sent (not a garbled variant of it),
    and ``payload_sha256`` proves the artifact content crossed the wire
    intact.  Mismatches raise :class:`TransportError` -- retryable,
    because a replay re-reads the same cached artifact.
    """
    if "idem" in req and reply.get("idem") not in (None, req["idem"]):
        raise TransportError(
            "request integrity mismatch: server answered a different "
            f"request ({reply.get('idem')!r} != {req['idem']!r})"
        )
    if "payload_sha256" in reply and "schedule" in reply:
        doc = {"schedule": reply["schedule"]}
        if "registers" in reply:
            doc["registers"] = reply["registers"]
        try:
            actual = artifact_digest(doc)
        except Exception as exc:
            raise TransportError(f"reply payload unhashable: {exc}") from None
        if actual != reply["payload_sha256"]:
            raise TransportError("reply payload integrity check failed")


class _ResilientBase:
    """Retry/breaker bookkeeping shared by both client flavours."""

    def __init__(
        self,
        retry: RetryPolicy | None,
        breaker: CircuitBreaker | None,
    ) -> None:
        self.retry = retry
        self.breaker = breaker
        #: lifetime retries this client performed.
        self.retries = 0
        #: lifetime endpoint rotations (router HA failovers).
        self.failovers = 0

    def _init_endpoints(
        self,
        host: str,
        port: int,
        endpoints: list[tuple[str, int]] | None,
    ) -> None:
        """Fix the endpoint rotation: ``endpoints`` (a router HA list)
        wins over the single ``host``/``port`` pair."""
        self.endpoints: list[tuple[str, int]] = [
            (str(h), int(p)) for h, p in (endpoints or [(host, port)])
        ]
        self._endpoint_index = 0
        self.host, self.port = self.endpoints[0]

    def _rotate_endpoint(self) -> None:
        """Aim the next connect at the next endpoint in the list.

        Called on every transport/timeout failure: an idempotent retry
        lands on the survivor immediately; a non-retryable op (amend)
        still surfaces its typed error, but the *next* request fails
        over instead of hammering the dead endpoint.
        """
        if len(self.endpoints) <= 1:
            return
        self._endpoint_index = (self._endpoint_index + 1) % len(self.endpoints)
        self.host, self.port = self.endpoints[self._endpoint_index]
        self.failovers += 1

    def _admit(self) -> None:
        """Breaker gate; counts fast-fails into the perf counters."""
        if self.breaker is None:
            return
        try:
            self.breaker.check()
        except CircuitOpen:
            perf.COUNTERS.client_breaker_rejections += 1
            raise

    def _record(self, exc: BaseException | None) -> None:
        """Feed one attempt's outcome to the breaker.

        Only *transient* failures (transport, timeout, overloaded)
        count against server health; a deterministic ``ok: false``
        answer proves the server is up and resets the streak.
        """
        if self.breaker is None:
            return
        if exc is None or not (isinstance(exc, ServiceError) and exc.retryable):
            self.breaker.record_success()
        else:
            trips = self.breaker.trips
            self.breaker.record_failure()
            perf.COUNTERS.client_breaker_trips += self.breaker.trips - trips

    def _plan_retry(
        self, req: dict[str, Any], exc: ServiceError, attempt: int, slept: float
    ) -> float | None:
        """Backoff before retry number ``attempt``, or ``None`` = raise."""
        if self.retry is None or req.get("op", "compile") not in IDEMPOTENT_OPS:
            return None
        return self.retry.plan(exc, attempt, slept)


class AsyncCompileClient(_ResilientBase):
    """One connection to a compile server, asyncio flavour."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        socket_path: str | None = None,
        timeout: float | None = None,
        retry: RetryPolicy | None = RetryPolicy(),
        breaker: CircuitBreaker | None = None,
        endpoints: list[tuple[str, int]] | None = None,
    ) -> None:
        super().__init__(retry, breaker)
        self._init_endpoints(host, port, endpoints)
        self.socket_path = socket_path
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def connect(self) -> "AsyncCompileClient":
        last: TransportError | None = None
        for _ in range(len(self.endpoints)):
            try:
                if self.socket_path is not None:
                    self._reader, self._writer = (
                        await asyncio.open_unix_connection(
                            self.socket_path, limit=MAX_LINE_BYTES
                        )
                    )
                else:
                    self._reader, self._writer = await asyncio.open_connection(
                        self.host, self.port, limit=MAX_LINE_BYTES
                    )
                return self
            except OSError as exc:
                last = TransportError(f"connect failed: {exc}")
                last.__cause__ = exc
                self._rotate_endpoint()
        assert last is not None
        raise last

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncCompileClient":
        return await self.connect()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def _request_once(self, req: dict[str, Any]) -> dict[str, Any]:
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        try:
            self._writer.write(json.dumps(req).encode() + b"\n")
            await self._writer.drain()
            line = await asyncio.wait_for(
                self._reader.readline(), timeout=self.timeout
            )
        except (asyncio.TimeoutError, TimeoutError) as exc:
            raise ServiceTimeout(
                f"no reply within {self.timeout}s"
            ) from exc
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise TransportError(f"connection failed mid-request: {exc}") from exc
        except ValueError as exc:
            # asyncio raises ValueError past the stream limit.
            raise ProtocolError(f"reply frame too large: {exc}") from None
        if not line:
            raise TransportError("server closed the connection")
        if not line.endswith(b"\n"):
            raise TransportError("connection cut mid-reply (truncated frame)")
        return _parse_reply(line, req)

    async def request(self, req: dict[str, Any]) -> dict[str, Any]:
        """Send one request object; retry transient failures per policy."""
        if self.retry is not None and req.get("op", "compile") in IDEMPOTENT_OPS:
            req.setdefault("idem", request_digest(req))
        attempt, slept = 0, 0.0
        while True:
            self._admit()
            try:
                reply = await self._request_once(req)
            except ServiceError as exc:
                self._record(exc)
                if isinstance(exc, (TransportError, ServiceTimeout)):
                    await self.close()
                    self._rotate_endpoint()
                pause = self._plan_retry(req, exc, attempt, slept)
                if pause is None:
                    raise
                await self.close()
                await asyncio.sleep(pause)
                attempt, slept = attempt + 1, slept + pause
                self.retries += 1
                perf.COUNTERS.client_retries += 1
                continue
            self._record(None)
            return reply

    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def stats(self) -> dict[str, Any]:
        return await self.request({"op": "stats"})

    async def health(self) -> dict[str, Any]:
        return await self.request({"op": "health"})

    async def ready(self) -> bool:
        return bool((await self.request({"op": "ready"}))["ready"])

    async def shutdown(self) -> dict[str, Any]:
        return await self.request({"op": "shutdown"})

    async def compile(
        self,
        topology: dict[str, Any],
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        registers: bool = False,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        self._next_id += 1
        return await self.request(
            _compile_request(
                topology,
                pattern=pattern,
                pairs=pairs,
                scheduler=scheduler,
                registers=registers,
                request_id=self._next_id,
                deadline=deadline,
            )
        )

    async def amend(
        self,
        topology: dict[str, Any] | None = None,
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        root: str | None = None,
        epoch: int | None = None,
        add: list | None = None,
        remove: list | None = None,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        """Open an amend stream (``topology`` + pattern) or push one
        epoch update (``root`` + ``epoch`` + ``add``/``remove`` rows).

        Raises :class:`~repro.service.errors.EpochConflict` when the
        epoch is stale; never retried automatically (not idempotent).
        """
        self._next_id += 1
        return await self.request(
            _amend_request(
                topology,
                pattern=pattern, pairs=pairs, scheduler=scheduler,
                root=root, epoch=epoch, add=add, remove=remove,
                request_id=self._next_id, deadline=deadline,
            )
        )


class CompileClient(_ResilientBase):
    """Blocking client over a plain socket (CLI / CI / scripts)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        socket_path: str | None = None,
        timeout: float | None = 60.0,
        retry: RetryPolicy | None = RetryPolicy(),
        breaker: CircuitBreaker | None = None,
        endpoints: list[tuple[str, int]] | None = None,
    ) -> None:
        super().__init__(retry, breaker)
        self._init_endpoints(host, port, endpoints)
        self.socket_path = socket_path
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    def connect(self) -> "CompileClient":
        last: ServiceError | None = None
        for _ in range(len(self.endpoints)):
            try:
                if self.socket_path is not None:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(self.socket_path)
                else:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout
                    )
            except socket.timeout as exc:
                last = ServiceTimeout(f"connect timed out: {exc}")
                last.__cause__ = exc
                self._rotate_endpoint()
                continue
            except OSError as exc:
                last = TransportError(f"connect failed: {exc}")
                last.__cause__ = exc
                self._rotate_endpoint()
                continue
            self._sock = sock
            self._file = sock.makefile("rb")
            return self
        assert last is not None
        raise last

    def wait_until_ready(self, deadline: float = 10.0, interval: float = 0.05) -> "CompileClient":
        """Connect, retrying until the server is accepting or ``deadline``.

        Lets callers start a server process and a client back-to-back
        without racing the bind.
        """
        end = time.monotonic() + deadline
        while True:
            try:
                return self.connect()
            except ServiceError:
                if time.monotonic() >= end:
                    raise
                time.sleep(interval)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "CompileClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _request_once(self, req: dict[str, Any]) -> dict[str, Any]:
        if self._sock is None:
            self.connect()
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(json.dumps(req).encode() + b"\n")
            line = self._file.readline(MAX_LINE_BYTES + 1)
        except socket.timeout as exc:
            raise ServiceTimeout(
                f"no reply within {self.timeout}s"
            ) from exc
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise TransportError(f"connection failed mid-request: {exc}") from exc
        if not line:
            raise TransportError("server closed the connection")
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("reply frame too large")
        if not line.endswith(b"\n"):
            raise TransportError("connection cut mid-reply (truncated frame)")
        return _parse_reply(line, req)

    def request(self, req: dict[str, Any]) -> dict[str, Any]:
        """Send one request object; retry transient failures per policy."""
        if self.retry is not None and req.get("op", "compile") in IDEMPOTENT_OPS:
            req.setdefault("idem", request_digest(req))
        attempt, slept = 0, 0.0
        while True:
            self._admit()
            try:
                reply = self._request_once(req)
            except ServiceError as exc:
                self._record(exc)
                if isinstance(exc, (TransportError, ServiceTimeout)):
                    self.close()
                    self._rotate_endpoint()
                pause = self._plan_retry(req, exc, attempt, slept)
                if pause is None:
                    raise
                self.close()
                time.sleep(pause)
                attempt, slept = attempt + 1, slept + pause
                self.retries += 1
                perf.COUNTERS.client_retries += 1
                continue
            self._record(None)
            return reply

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def health(self) -> dict[str, Any]:
        return self.request({"op": "health"})

    def ready(self) -> bool:
        return bool(self.request({"op": "ready"})["ready"])

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def compile(
        self,
        topology: dict[str, Any],
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        registers: bool = False,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        self._next_id += 1
        return self.request(
            _compile_request(
                topology,
                pattern=pattern,
                pairs=pairs,
                scheduler=scheduler,
                registers=registers,
                request_id=self._next_id,
                deadline=deadline,
            )
        )

    def amend(
        self,
        topology: dict[str, Any] | None = None,
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        root: str | None = None,
        epoch: int | None = None,
        add: list | None = None,
        remove: list | None = None,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        """Blocking twin of :meth:`AsyncCompileClient.amend`."""
        self._next_id += 1
        return self.request(
            _amend_request(
                topology,
                pattern=pattern, pairs=pairs, scheduler=scheduler,
                root=root, epoch=epoch, add=add, remove=remove,
                request_id=self._next_id, deadline=deadline,
            )
        )
