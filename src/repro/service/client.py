"""Clients for the JSON-lines compile server.

:class:`AsyncCompileClient` speaks the protocol over an asyncio stream;
:class:`CompileClient` is a blocking wrapper over a plain socket for
scripts, the CLI and CI.  Both support TCP (``host``/``port``) and unix
sockets (``socket_path``) and can be used as context managers::

    with CompileClient(socket_path="/tmp/repro.sock") as c:
        reply = c.compile({"kind": "torus", "width": 8},
                          pattern={"pattern": "all-to-all", "nodes": 64})
        assert reply["ok"] and reply["cache"] in ("hit", "miss")

Server-side failures come back as ``{"ok": false, "error": ...}``; the
helpers raise :class:`ServerError` for those so callers don't have to
check two channels.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from typing import Any


#: Stream line-length ceiling, both directions.  A serialized 8x8
#: all-to-all schedule with registers is a few hundred KiB on one line,
#: well past asyncio's 64 KiB default.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ServerError(RuntimeError):
    """The server answered ``ok: false``."""


def _check(reply: dict[str, Any]) -> dict[str, Any]:
    if not isinstance(reply, dict):
        raise ServerError(f"malformed reply: {reply!r}")
    if not reply.get("ok"):
        raise ServerError(reply.get("error", "unknown server error"))
    return reply


def _compile_request(
    topology: dict[str, Any],
    *,
    pattern: dict[str, Any] | None,
    pairs: list | None,
    scheduler: str | None,
    registers: bool,
    request_id: int,
) -> dict[str, Any]:
    req: dict[str, Any] = {"op": "compile", "id": request_id, "topology": topology}
    if pattern is not None:
        req["pattern"] = pattern
    if pairs is not None:
        req["pairs"] = [list(p) for p in pairs]
    if scheduler is not None:
        req["scheduler"] = scheduler
    if registers:
        req["registers"] = True
    return req


class AsyncCompileClient:
    """One connection to a compile server, asyncio flavour."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        socket_path: str | None = None,
    ) -> None:
        self.host, self.port, self.socket_path = host, port, socket_path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def connect(self) -> "AsyncCompileClient":
        if self.socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.socket_path, limit=MAX_LINE_BYTES
            )
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE_BYTES
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncCompileClient":
        return await self.connect()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def request(self, req: dict[str, Any]) -> dict[str, Any]:
        """Send one raw request object, await its reply line."""
        assert self._reader is not None and self._writer is not None, "not connected"
        self._writer.write(json.dumps(req).encode() + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServerError("server closed the connection")
        return _check(json.loads(line))

    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def stats(self) -> dict[str, Any]:
        return await self.request({"op": "stats"})

    async def shutdown(self) -> dict[str, Any]:
        return await self.request({"op": "shutdown"})

    async def compile(
        self,
        topology: dict[str, Any],
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        registers: bool = False,
    ) -> dict[str, Any]:
        self._next_id += 1
        return await self.request(
            _compile_request(
                topology,
                pattern=pattern,
                pairs=pairs,
                scheduler=scheduler,
                registers=registers,
                request_id=self._next_id,
            )
        )


class CompileClient:
    """Blocking client over a plain socket (CLI / CI / scripts)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        socket_path: str | None = None,
        timeout: float | None = 60.0,
    ) -> None:
        self.host, self.port, self.socket_path = host, port, socket_path
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    def connect(self) -> "CompileClient":
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        self._file = sock.makefile("rb")
        return self

    def wait_until_ready(self, deadline: float = 10.0, interval: float = 0.05) -> "CompileClient":
        """Connect, retrying until the server is accepting or ``deadline``.

        Lets callers start a server process and a client back-to-back
        without racing the bind.
        """
        end = time.monotonic() + deadline
        while True:
            try:
                return self.connect()
            except OSError:
                if time.monotonic() >= end:
                    raise
                time.sleep(interval)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "CompileClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def request(self, req: dict[str, Any]) -> dict[str, Any]:
        assert self._sock is not None and self._file is not None, "not connected"
        self._sock.sendall(json.dumps(req).encode() + b"\n")
        line = self._file.readline()
        if not line:
            raise ServerError("server closed the connection")
        return _check(json.loads(line))

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict[str, Any]:
        return self.request({"op": "shutdown"})

    def compile(
        self,
        topology: dict[str, Any],
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        registers: bool = False,
    ) -> dict[str, Any]:
        self._next_id += 1
        return self.request(
            _compile_request(
                topology,
                pattern=pattern,
                pairs=pairs,
                scheduler=scheduler,
                registers=registers,
                request_id=self._next_id,
            )
        )
