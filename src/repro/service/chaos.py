"""Chaos harness: fault-injecting proxy + crash tests for the service.

Production circuit-switched systems treat partial failure as the
common case; this module makes the compile stack prove it.  Three
pieces:

* :class:`ChaosProxy` -- a frame-aware TCP proxy between client and
  server that **drops** frames (connection cut), **delays** them,
  **truncates** them mid-byte (torn frame, then cut), and **garbles**
  payload bytes, each with an independent seeded probability, in both
  directions;
* :func:`kill_mid_write` -- spawns a subprocess that SIGKILLs *itself*
  between the cache's temp-file write and the atomic rename, staging
  exactly the torn state the write-ahead journal exists for (plus a
  torn-shard variant written directly), then verifies the reopened
  cache's recovery scan quarantines everything suspect;
* :func:`run_chaos_campaign` -- the end-to-end invariant check: N
  requests through the proxy against a clean-run baseline, asserting
  **every request either completes byte-identical to the clean run or
  fails with a typed** :class:`~repro.service.errors.ServiceError`,
  and that a final :meth:`~repro.service.cache.ArtifactCache.verify_scan`
  finds zero quarantined-but-served entries.

Everything is deterministic under ``seed`` so a CI gate on the report's
``ok`` flag cannot flake.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.compiler.serialize import canonical_dumps
from repro.service.cache import ArtifactCache, JOURNAL_DIR
from repro.service.client import AsyncCompileClient
from repro.service.errors import ServiceError
from repro.service.policy import CircuitBreaker, RetryPolicy, ServerPolicy
from repro.service.server import CompileServer


@dataclass(frozen=True)
class ChaosConfig:
    """Per-frame fault probabilities of one :class:`ChaosProxy`."""

    #: swallow the frame and cut the connection (packet-loss analogue).
    drop_rate: float = 0.0
    #: hold the frame for up to ``delay_seconds`` before forwarding.
    delay_rate: float = 0.0
    delay_seconds: float = 0.05
    #: forward a strict prefix of the frame, then cut the connection.
    truncate_rate: float = 0.0
    #: flip payload bytes (frame still delivered, content lies).
    garble_rate: float = 0.0
    seed: int = 0

    @property
    def active(self) -> bool:
        return any(
            r > 0 for r in (self.drop_rate, self.delay_rate,
                            self.truncate_rate, self.garble_rate)
        )


@dataclass
class ChaosStats:
    """What the proxy actually did (for the campaign report)."""

    frames: int = 0
    dropped: int = 0
    delayed: int = 0
    truncated: int = 0
    garbled: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class _Cut(Exception):
    """Internal: this connection was chosen to die."""


class ChaosProxy:
    """Frame-aware fault-injecting proxy in front of a compile server.

    Listens on its own ephemeral TCP endpoint; every accepted client
    gets a fresh upstream connection.  Faults are decided per *frame*
    (newline-terminated JSON line) independently in each direction, by
    a single seeded RNG, so a campaign is reproducible.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        config: ChaosConfig,
        *,
        host: str = "127.0.0.1",
        limit: int = 64 * 1024 * 1024,
    ) -> None:
        self.upstream = upstream
        self.config = config
        self.host = host
        self.limit = limit
        self.stats = ChaosStats()
        self._rng = random.Random(config.seed)
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.Task] = set()

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "proxy not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=0, limit=self.limit
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns):
            conn.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
            self._conns.clear()

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(asyncio.current_task())
        try:
            await self._proxy_one(reader, writer)
        except asyncio.CancelledError:
            # Teardown: exit cleanly so the streams connection-task
            # callback never sees a cancelled handler.
            pass
        finally:
            self._conns.discard(asyncio.current_task())

    async def _proxy_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self.upstream, limit=self.limit
            )
        except OSError:
            writer.close()
            return
        pumps = [
            asyncio.ensure_future(self._pump(reader, up_writer)),
            asyncio.ensure_future(self._pump(up_reader, writer)),
        ]
        try:
            # Either side dying (EOF or injected cut) tears down both,
            # so a dropped frame surfaces to the client as a dead
            # connection -- the same thing a cut fiber looks like.
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
            for w in (writer, up_writer):
                w.close()
                try:
                    await w.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    async def _pump(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await reader.readline()
                if not frame:
                    return
                try:
                    frame = await self._maul(frame, writer)
                except _Cut:
                    return
                writer.write(frame)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return

    async def _maul(self, frame: bytes, writer: asyncio.StreamWriter) -> bytes:
        """Apply at most one fault to ``frame`` (rates are per-frame)."""
        cfg, rng = self.config, self._rng
        self.stats.frames += 1
        roll = rng.random()
        if roll < cfg.drop_rate:
            self.stats.dropped += 1
            raise _Cut
        roll -= cfg.drop_rate
        if roll < cfg.truncate_rate and len(frame) > 2:
            self.stats.truncated += 1
            cut = rng.randrange(1, len(frame) - 1)
            writer.write(frame[:cut])
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            raise _Cut
        roll -= cfg.truncate_rate
        if roll < cfg.garble_rate and len(frame) > 2:
            self.stats.garbled += 1
            body = bytearray(frame)
            for _ in range(max(1, len(body) // 256)):
                # Never touch the terminator: a garbled frame is still
                # a frame, just a lying one.
                body[rng.randrange(0, len(body) - 1)] = rng.randrange(256)
            frame = bytes(body)
        roll -= cfg.garble_rate
        if roll < cfg.delay_rate:
            self.stats.delayed += 1
            await asyncio.sleep(rng.uniform(0.0, cfg.delay_seconds))
        return frame


# ----------------------------------------------------------------------
# kill-mid-write crash staging
# ----------------------------------------------------------------------

#: Runs in a subprocess: replaces the commit rename with SIGKILL, so the
#: cache dies with a journaled intent and a torn temp file on disk.
_CRASH_WRITER = """
import os, signal, sys
from repro.service.cache import ArtifactCache

root, digest = sys.argv[1], sys.argv[2]
cache = ArtifactCache(root)

def _die(src, dst):
    os.kill(os.getpid(), signal.SIGKILL)

os.replace = _die
cache.put(digest, {"schedule": {"version": 1, "scheduler": "crash-test",
                                "degree": 1, "slots": []}})
"""


def kill_mid_write(cache_dir: str | Path) -> dict[str, Any]:
    """Crash a real cache writer mid-commit; verify recovery cleans up.

    Stages two torn states under ``cache_dir``:

    1. a subprocess SIGKILLed between temp-file write and rename
       (leftover intent + ``.tmp-*`` file);
    2. a shard torn *in place* (truncated JSON at the final path, with
       its intent still journaled) -- what a non-atomic filesystem or a
       power cut can leave.

    Then reopens the cache (recovery scan runs) and returns the
    recovery + verify reports.  Raises ``AssertionError`` if the crash
    did not stage what it should have -- the harness must not silently
    test nothing.
    """
    cache_dir = Path(cache_dir)
    digest_kill = "ee" + "0" * 62
    digest_torn = "ef" + "1" * 62

    pkg_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(pkg_root), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CRASH_WRITER, str(cache_dir), digest_kill],
        env=env, capture_output=True, text=True, timeout=60,
    )
    if proc.returncode != -signal.SIGKILL:
        raise AssertionError(
            f"crash writer exited {proc.returncode}, wanted SIGKILL: "
            f"{proc.stderr}"
        )
    intent = cache_dir / JOURNAL_DIR / f"{digest_kill}.intent"
    assert intent.is_file(), "kill-mid-write left no journaled intent"
    assert list(cache_dir.glob("??/.tmp-*")), "kill-mid-write left no temp file"

    # Torn-in-place shard: valid intent, garbage artifact bytes.
    shard = cache_dir / digest_torn[:2] / f"{digest_torn}.json"
    shard.parent.mkdir(parents=True, exist_ok=True)
    shard.write_text('{"artifact": {"schedule": {"version"')
    (cache_dir / JOURNAL_DIR / f"{digest_torn}.intent").write_text(
        json.dumps({"digest": digest_torn})
    )

    cache = ArtifactCache(cache_dir)  # recovery scan runs on open
    recovery = cache.recover()  # idempotent second pass must find nothing
    assert recovery["intents"] == 0, "recovery scan is not idempotent"
    verify = cache.verify_scan()
    return {
        "crash_exit": proc.returncode,
        "stats": {
            "recovered": cache.stats.recovered,
            "quarantined": cache.stats.quarantined,
        },
        "torn_digest_served": cache.get(digest_torn) is not None,
        "verify_scan": verify,
    }


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------

#: Request mix: distinct (topology, pattern) compile problems.  Small
#: shapes keep a 200-request campaign in CI time; the mix still crosses
#: torus/ring/mesh routing, schedule-only vs register artifacts, and
#: spec vs explicit-pairs requests.
CAMPAIGN_REQUESTS: list[dict[str, Any]] = [
    {"topology": {"kind": "torus", "width": 4},
     "pattern": {"pattern": "transpose", "width": 4}},
    {"topology": {"kind": "torus", "width": 4},
     "pattern": {"pattern": "ring", "nodes": 16}, "registers": True},
    {"topology": {"kind": "torus", "width": 4},
     "pattern": {"pattern": "hypercube", "nodes": 16}},
    {"topology": {"kind": "ring", "nodes": 8},
     "pattern": {"pattern": "ring", "nodes": 8}},
    {"topology": {"kind": "mesh", "width": 4},
     "pairs": [[0, 5], [5, 10], [10, 15], [15, 0]]},
    {"topology": {"kind": "torus", "width": 4},
     "pairs": [[1, 2, 4], [3, 0, 2, 7], [12, 9]], "registers": True},
]


def _reply_bytes(reply: dict[str, Any]) -> str:
    """Canonical bytes of the *artifact content* of one reply."""
    doc = {"schedule": reply["schedule"]}
    if "registers" in reply:
        doc["registers"] = reply["registers"]
    return canonical_dumps(doc)


async def _run_campaign_async(
    requests: int,
    config: ChaosConfig,
    cache_dir: str | Path,
    *,
    kill_writer: bool,
    seed: int,
    deadline: float,
) -> dict[str, Any]:
    server = CompileServer(
        cache=ArtifactCache(cache_dir),
        workers=0,
        policy=ServerPolicy(request_deadline=deadline, max_pending=32,
                            retry_after=0.05),
    )
    await server.start()
    proxy = ChaosProxy(server.address, config)
    await proxy.start()
    report: dict[str, Any] = {
        "requests": requests,
        "completed": 0,
        "typed_failures": {},
        "corrupted": [],
        "untyped_failures": [],
    }
    try:
        # Clean-run baseline, straight at the server (no proxy, no
        # faults): the byte-identity reference for every request kind.
        baseline: list[str] = []
        async with AsyncCompileClient(*server.address, retry=None) as clean:
            for combo in CAMPAIGN_REQUESTS:
                reply = await clean.request({"op": "compile", **combo})
                baseline.append(_reply_bytes(reply))

        if kill_writer:
            # Crash a writer against the same directory the server is
            # serving from, mid-campaign-setup: recovery must quarantine
            # the torn state without disturbing live entries.
            report["kill_mid_write"] = await asyncio.get_running_loop() \
                .run_in_executor(None, kill_mid_write, Path(cache_dir))

        rng = random.Random(seed)
        retry = RetryPolicy(attempts=6, base_delay=0.01, max_delay=0.2,
                            budget_seconds=10.0)
        breaker = CircuitBreaker(failure_threshold=50, reset_timeout=0.1)
        client = AsyncCompileClient(
            *proxy.address, timeout=max(1.0, 20 * config.delay_seconds),
            retry=retry, breaker=breaker,
        )
        for _ in range(requests):
            which = rng.randrange(len(CAMPAIGN_REQUESTS))
            combo = CAMPAIGN_REQUESTS[which]
            try:
                reply = await client.request({"op": "compile", **combo})
            except ServiceError as exc:
                key = exc.code
                report["typed_failures"][key] = (
                    report["typed_failures"].get(key, 0) + 1
                )
                await client.close()
                continue
            except Exception as exc:  # noqa: BLE001 - the invariant itself
                report["untyped_failures"].append(repr(exc))
                await client.close()
                continue
            if _reply_bytes(reply) == baseline[which]:
                report["completed"] += 1
            else:
                report["corrupted"].append(
                    {"request": which, "digest": reply.get("digest")}
                )
        report["client_retries"] = client.retries
        report["breaker"] = breaker.as_dict()
        await client.close()
    finally:
        await proxy.stop()
        await server.shutdown()

    report["proxy"] = proxy.stats.as_dict()
    report["server"] = {
        "shed": server.shed,
        "deadline_cancels": server.deadline_cancels,
        "worker_restarts": server.worker_restarts,
        "requests": server.requests_served,
    }
    # Post-mortem integrity: the surviving cache must be fully servable.
    final = ArtifactCache(cache_dir)
    report["verify_scan"] = final.verify_scan()
    report["ok"] = (
        not report["corrupted"]
        and not report["untyped_failures"]
        and not report["verify_scan"]["quarantined"]
        and (not kill_writer
             or not report["kill_mid_write"]["torn_digest_served"])
    )
    return report


def run_chaos_campaign(
    requests: int = 200,
    *,
    config: ChaosConfig | None = None,
    cache_dir: str | Path,
    kill_writer: bool = True,
    seed: int = 0,
    deadline: float = 30.0,
) -> dict[str, Any]:
    """Drive the full stack through the fault proxy; report the invariant.

    The returned report's ``ok`` is True iff every one of ``requests``
    requests either completed byte-identical to the clean-run baseline
    or failed with a typed :class:`ServiceError`, the kill-mid-write
    crash (when enabled) was fully recovered with the torn entry never
    served, and the final cache verify scan is clean.
    """
    return asyncio.run(_run_campaign_async(
        requests,
        config if config is not None else ChaosConfig(),
        cache_dir,
        kill_writer=kill_writer,
        seed=seed,
        deadline=deadline,
    ))


# ----------------------------------------------------------------------
# the node-level campaign (farm chaos)
# ----------------------------------------------------------------------

def _farm_extra_combos(seed: int, count: int = 8) -> list[dict[str, Any]]:
    """Seeded unique pair patterns: cold traffic that keeps arriving
    after the kill, so failover is exercised on *compiles*, not just
    warm reads."""
    rng = random.Random(seed ^ 0x5AFE)
    combos = []
    for _ in range(count):
        pairs = []
        for _ in range(rng.randrange(3, 7)):
            src = rng.randrange(16)
            dst = rng.randrange(16)
            while dst == src:
                dst = rng.randrange(16)
            pairs.append([src, dst])
        combos.append({"topology": {"kind": "torus", "width": 4},
                       "pairs": pairs})
    return combos


async def _run_farm_campaign_async(
    requests: int,
    *,
    nodes: int,
    replication: int,
    kill_after: float,
    seed: int,
    cache_dir: str | Path | None,
) -> dict[str, Any]:
    from repro.service.farm import Farm

    combos = CAMPAIGN_REQUESTS + _farm_extra_combos(seed)
    report: dict[str, Any] = {
        "requests": requests,
        "nodes": nodes,
        "replication": replication,
        "completed": 0,
        "typed_failures": {},
        "corrupted": [],
        "untyped_failures": [],
    }

    # Independent baseline: one plain single-box server.  Compiles are
    # deterministic, so every farm reply -- before the kill, after the
    # kill, served by any replica -- must be byte-identical to it.
    baseline: list[str] = []
    single = CompileServer(workers=0)
    await single.start()
    try:
        async with AsyncCompileClient(*single.address, retry=None) as clean:
            for combo in combos:
                reply = await clean.request({"op": "compile", **combo})
                baseline.append(_reply_bytes(reply))
    finally:
        await single.shutdown()

    farm = Farm(
        nodes, replication=replication, workers=0, cache_dir=cache_dir,
        policy=ServerPolicy(max_pending=64, retry_after=0.05),
    )
    await farm.start()
    client = farm.client()
    rng = random.Random(seed)
    kill_at = max(1, int(requests * kill_after))
    try:
        await client.connect()
        # The victim is the primary owner of combo 0: after the kill a
        # router-path probe of that combo *must* trigger a demote, so
        # rebalance verification cannot depend on random routing luck.
        from repro.service.farm import route_digest

        probe_digest = route_digest(dict({"op": "compile", **combos[0]}))
        victim = farm.router.shard_map.owners(probe_digest)[0]

        for i in range(requests):
            if i == kill_at:
                await farm.kill_node(victim)
                report["killed_at"] = i
                async with AsyncCompileClient(*farm.router_address) as probe:
                    reply = await probe.request({"op": "compile", **combos[0]})
                    if _reply_bytes(reply) != baseline[0]:
                        report["corrupted"].append(
                            {"request": "post-kill-probe",
                             "digest": reply.get("digest")}
                        )
            which = rng.randrange(len(combos))
            try:
                reply = await client.request({"op": "compile", **combos[which]})
            except ServiceError as exc:
                key = exc.code
                report["typed_failures"][key] = (
                    report["typed_failures"].get(key, 0) + 1
                )
                continue
            except Exception as exc:  # noqa: BLE001 - the invariant itself
                report["untyped_failures"].append(repr(exc))
                continue
            if _reply_bytes(reply) == baseline[which]:
                report["completed"] += 1
            else:
                report["corrupted"].append(
                    {"request": which, "digest": reply.get("digest")}
                )

        router = farm.router
        survivors_adopted = all(
            node.shard_map.version == router.shard_map.version
            for node in farm.nodes.values()
        )
        report["client"] = {
            "direct": client.direct,
            "via_router": client.via_router,
            "map_refreshes": client.map_refreshes,
        }
        report["rebalance"] = {
            "killed": victim,
            "failovers": router.failovers,
            "map_version": router.shard_map.version,
            "live_nodes": len(router.shard_map.nodes),
            "victim_removed": victim not in router.shard_map.nodes,
            "survivors_adopted": survivors_adopted,
        }
        report["farm"] = {
            "wrong_shard": sum(n.wrong_shard for n in farm.nodes.values()),
            "replicas_pushed": sum(
                n.replicas_pushed for n in farm.nodes.values()
            ),
            "read_repairs": sum(n.read_repairs for n in farm.nodes.values()),
        }
    finally:
        await client.close()
        await farm.shutdown()

    report["ok"] = (
        not report["corrupted"]
        and not report["untyped_failures"]
        and report["rebalance"]["victim_removed"]
        and report["rebalance"]["survivors_adopted"]
        and report["rebalance"]["failovers"] >= 1
    )
    return report


def run_farm_chaos_campaign(
    requests: int = 100,
    *,
    nodes: int = 3,
    replication: int = 2,
    kill_after: float = 0.5,
    seed: int = 0,
    cache_dir: str | Path | None = None,
) -> dict[str, Any]:
    """Node-level chaos: kill a shard mid-campaign, verify rebalance.

    Runs a mixed cold/warm compile campaign against an in-process farm
    and abruptly kills the primary owner of a known digest partway
    through.  The returned report's ``ok`` is True iff **every**
    request either completed byte-identical to an independent
    single-server baseline or failed with a typed
    :class:`ServiceError` (the farm extension of the byte-identical-
    or-typed-error invariant), the dead node was demoted from the
    shard map, and every survivor adopted the rebalanced map.
    """
    return asyncio.run(_run_farm_campaign_async(
        requests,
        nodes=nodes,
        replication=replication,
        kill_after=kill_after,
        seed=seed,
        cache_dir=cache_dir,
    ))


# ----------------------------------------------------------------------
# the high-availability campaign (self-healing farm)
# ----------------------------------------------------------------------

def _under_replicated(farm: Any, digests: Any) -> list[dict[str, Any]]:
    """Tracked digests currently below replication factor.

    Audits the *live* map: every node the current map assigns a digest
    to must actually hold it.  Dead nodes are expected misses and do
    not count -- the invariant is about the replicas the farm claims
    to have, not the ones it lost.
    """
    under = []
    for digest in sorted(set(digests)):
        owners = farm.router.shard_map.owners(digest)
        have = sum(
            1 for name in owners
            if name in farm.nodes
            and digest in farm.nodes[name].cache.digests()
        )
        if have < len(owners):
            under.append({"digest": digest, "have": have, "want": len(owners)})
    return under


async def _repair_all(farm: Any) -> None:
    """One farm-wide anti-entropy round via the ``repair`` verb."""
    for node in list(farm.nodes.values()):
        host, port = node.address
        async with AsyncCompileClient(host, port, retry=None) as repairer:
            await repairer.request({"op": "repair"})


async def _restore_replication(
    farm: Any, digests: Any, max_sweeps: int
) -> tuple[int, list[dict[str, Any]]]:
    """Sweep until the tracked set is fully replicated (or budget spent)."""
    sweeps = 0
    under = _under_replicated(farm, digests)
    while under and sweeps < max_sweeps:
        sweeps += 1
        await _repair_all(farm)
        under = _under_replicated(farm, digests)
    return sweeps, under


async def _run_router_ha_phases(
    report: dict[str, Any],
    gates: dict[str, bool],
    baseline: list[str],
    all_combos: list[dict[str, Any]],
    *,
    nodes: int,
    replication: int,
    seed: int,
) -> None:
    """Phases F and G: router HA pair promotion + graceful drain.

    Runs against a fresh two-router farm (lease-arbitrated leadership)
    so the earlier single-router phases keep their exact semantics.
    Phase F kills the *leader* router mid-campaign: the standby must
    promote within the lease timeout, bump the map epoch, and keep the
    endpoint-list clients serving byte-identical replies; the deposed
    leader's late (higher-version, lower-epoch) map push must be
    refused with a typed ``stale_epoch`` by both a node and the
    promoted standby.  Phase G drains the primary of a live amend
    stream that also uniquely owns artifacts: concurrent warm readers
    must see zero typed errors, the stream must continue on the new
    owner through proactive adoption (``amend_takeovers`` unchanged),
    and every uniquely-owned artifact must land on all successor
    owners.
    """
    from repro.service.amend import amend_epoch_digest, parse_rows
    from repro.service.errors import StaleEpoch, WrongShard
    from repro.service.farm import AsyncFarmClient, Farm, ShardMap

    ha = Farm(
        nodes, replication=replication, workers=0,
        policy=ServerPolicy(max_pending=64, retry_after=0.05),
        routers=2, lease_ttl=0.6, lease_interval=0.15,
        chaos_seed=seed ^ 0x51AB,
    )
    await ha.start()
    endpoints = ha.router_addresses
    client = ha.client()
    tracked: dict[int, str] = {}

    async def drive(cl: AsyncFarmClient, which: int) -> bool:
        report["attempted"] += 1
        try:
            reply = await cl.request({"op": "compile", **all_combos[which]})
        except ServiceError as exc:
            report["typed_failures"][exc.code] = (
                report["typed_failures"].get(exc.code, 0) + 1
            )
            return False
        except Exception as exc:  # noqa: BLE001 - the invariant itself
            report["untyped_failures"].append(repr(exc))
            return False
        if _reply_bytes(reply) == baseline[which]:
            report["completed"] += 1
            tracked[which] = str(reply["digest"])
            return True
        report["corrupted"].append(
            {"request": f"ha-{which}", "digest": reply.get("digest")}
        )
        return False

    async def settle_pushes() -> None:
        for node in list(ha.nodes.values()):
            if node._repl_tasks:
                await asyncio.gather(
                    *node._repl_tasks, return_exceptions=True
                )

    try:
        await client.connect()

        # -- phase F: kill the *leader* router mid-campaign ------------
        # Warm-up traffic with every replica push silently dropped, so
        # each artifact stays uniquely owned by the node that compiled
        # it -- the inventory phase G's drain re-replication must save.
        for node in ha.nodes.values():
            node.drop_replica_push_rate = 1.0
        for which in range(6):
            await drive(client, which)
        for node in ha.nodes.values():
            node.drop_replica_push_rate = 0.0

        leader = ha.leader
        assert leader is not None
        standby = next(r for r in ha.routers.values() if r is not leader)
        deposed_map = leader.shard_map
        t0 = time.monotonic()
        await ha.kill_router()  # SIGKILL-equivalent: no goodbye, no handoff
        deadline = t0 + 10 * ha.lease_ttl
        while not standby.is_leader and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        promote_seconds = time.monotonic() - t0
        promoted = (
            standby.is_leader
            and standby.shard_map.epoch == deposed_map.epoch + 1
        )

        # Mid-promotion traffic from a *fresh* client handed the full
        # endpoint list: its first connect hits the dead leader and
        # must rotate to the survivor transparently.
        served = True
        fresh = AsyncFarmClient(endpoints, default_scheduler=ha.scheduler)
        try:
            await fresh.connect()
            for which in range(6, 10):
                served = await drive(fresh, which) and served
        finally:
            await fresh.close()

        # The deposed leader's late map push: higher version, lower
        # epoch.  Both a node and the promoted standby must answer
        # with the typed stale_epoch -- version count buys it nothing.
        stale = ShardMap.from_dict({
            **deposed_map.as_dict(),
            "version": standby.shard_map.version + 10,
        })
        node0 = next(iter(ha.nodes.values()))
        fenced_by_node = fenced_by_standby = False
        report["attempted"] += 1
        try:
            host, port = node0.address
            async with AsyncCompileClient(host, port, retry=None) as direct:
                await direct.request(
                    {"op": "reshard", "shard_map": stale.as_dict()}
                )
        except StaleEpoch as exc:
            fenced_by_node = exc.current_epoch == standby.shard_map.epoch
            report["completed"] += 1  # the typed refusal is the contract
        except ServiceError as exc:
            report["typed_failures"][exc.code] = (
                report["typed_failures"].get(exc.code, 0) + 1
            )
        dead_leader = ha.dead_routers[leader.name]
        dead_leader.shard_map = stale
        report["attempted"] += 1
        try:
            await dead_leader.push_map_peer(*standby.address)
        except StaleEpoch:
            fenced_by_standby = True
            report["completed"] += 1
        except ServiceError as exc:
            report["typed_failures"][exc.code] = (
                report["typed_failures"].get(exc.code, 0) + 1
            )
        report["phases"]["promote"] = {
            "killed_router": leader.name,
            "promoted_router": standby.name,
            "promote_seconds": round(promote_seconds, 3),
            "epoch": standby.shard_map.epoch,
            "promotions": standby.promotions,
            "node_stale_epoch_rejections": sum(
                n.stale_epoch_rejections for n in ha.nodes.values()
            ),
        }
        report["promote_seconds"] = round(promote_seconds, 3)
        gates["standby_promoted"] = promoted
        gates["promote_within_lease"] = promote_seconds <= 5 * ha.lease_ttl
        gates["deposed_push_fenced"] = fenced_by_node and fenced_by_standby
        gates["router_failover_served"] = served

        # -- phase G: graceful drain under load ------------------------
        torus = {"kind": "torus", "width": 4}
        open_pairs = [[i, (i + 3) % 16] for i in range(8)]
        report["attempted"] += 1
        reply = await client.amend(torus, pairs=open_pairs)
        report["completed"] += 1
        root = str(reply["root"])
        chain = str(reply["digest"])
        epoch = int(reply["epoch"])
        lineage_ok = chain == root

        async def step(e: int) -> bool:
            """One epoch update checked against the client-side chain."""
            nonlocal chain, epoch, lineage_ok
            add = [[e % 16, (e + 7) % 16, 1, 2]]
            report["attempted"] += 1
            try:
                reply = await client.amend(root=root, epoch=epoch, add=add)
            except ServiceError as exc:
                report["typed_failures"][exc.code] = (
                    report["typed_failures"].get(exc.code, 0) + 1
                )
                return False
            expect = amend_epoch_digest(
                chain, parse_rows(add, what="add"), []
            )
            if str(reply["digest"]) != expect:
                lineage_ok = False
                report["corrupted"].append(
                    {"request": f"ha-amend-{e}",
                     "digest": reply.get("digest")}
                )
            else:
                report["completed"] += 1
            chain = str(reply["digest"])
            epoch = int(reply["epoch"])
            return True

        for e in range(4):
            await step(e)
        await settle_pushes()  # epoch artifacts + resume heads must land

        assert ha.leader is not None
        target = ha.leader.shard_map.owners(root)[0]
        target_node = ha.nodes[target]
        live_streams = len(target_node.amends.live_roots())

        def uniquely_owned() -> list[str]:
            return [
                d for d in set(tracked.values())
                if d in target_node.cache.digests()
                and not any(
                    d in other.cache.digests()
                    for name, other in ha.nodes.items() if name != target
                )
            ]

        # The drain target must uniquely own at least one artifact; if
        # the warm-up spread missed it, compile extra seeded patterns
        # directly against it (pushes still dropped = unique by
        # construction).  Setup traffic, not scored.
        unique = uniquely_owned()
        if not unique:
            target_node.drop_replica_push_rate = 1.0
            host, port = target_node.address
            async with AsyncCompileClient(host, port, retry=None) as direct:
                for combo in _farm_extra_combos(seed ^ 0xD0A1, count=10):
                    try:
                        reply = await direct.request(
                            {"op": "compile", **combo}
                        )
                    except WrongShard:
                        continue  # not this node's shard: try the next
                    tracked[len(all_combos) + len(tracked)] = str(
                        reply["digest"]
                    )
                    break
            target_node.drop_replica_push_rate = 0.0
            unique = uniquely_owned()
        target_held = sorted(
            set(tracked.values()) & set(target_node.cache.digests())
        )
        takeovers_before = sum(
            n.amend_takeovers for n in ha.nodes.values()
        )

        # Concurrent warm readers on their own connections: zero typed
        # errors allowed anywhere in the drain window.
        warm_whiches = sorted(tracked)[:4]
        warm_errors: list[str] = []
        warm_stop = asyncio.Event()

        async def warm_reader() -> None:
            warm = ha.client()
            try:
                await warm.connect()
                i = 0
                while not warm_stop.is_set():
                    which = warm_whiches[i % len(warm_whiches)]
                    i += 1
                    if which >= len(all_combos):
                        continue  # setup-only digest: no scored combo
                    report["attempted"] += 1
                    try:
                        reply = await warm.request(
                            {"op": "compile", **all_combos[which]}
                        )
                    except ServiceError as exc:
                        warm_errors.append(exc.code)
                        report["typed_failures"][exc.code] = (
                            report["typed_failures"].get(exc.code, 0) + 1
                        )
                        continue
                    if _reply_bytes(reply) == baseline[which]:
                        report["completed"] += 1
                    else:
                        report["corrupted"].append(
                            {"request": f"warm-{which}",
                             "digest": reply.get("digest")}
                        )
                    await asyncio.sleep(0)
            finally:
                await warm.close()

        reader = asyncio.create_task(warm_reader())
        await asyncio.sleep(0.02)
        drain_task = asyncio.create_task(ha.drain_node(target))
        await asyncio.sleep(0.01)
        # An amend racing the drain: it parks on the draining primary
        # until the handoff lands, then follows the typed redirect to
        # the *already adopted* stream -- no epoch lost, no takeover.
        racing_ok = await step(4)
        await drain_task
        warm_stop.set()
        await reader

        post_drain_ok = await step(5)  # first clean post-drain amend
        for e in range(6, 8):
            await step(e)
        takeovers_after = sum(
            n.amend_takeovers for n in ha.nodes.values()
        )
        adoptions = sum(n.drain_adoptions for n in ha.nodes.values())
        smap = ha.leader.shard_map
        under_drain = [
            d for d in target_held
            if any(
                d not in ha.nodes[o].cache.digests()
                for o in smap.owners(d)
            )
        ]
        drained_node = ha.drained[target]
        report["phases"]["drain"] = {
            "node": target,
            "live_streams": live_streams,
            "unique_artifacts": len(unique),
            "streams_handed_off": drained_node.drain_handoffs,
            "adoptions": adoptions,
            "replicas_repushed": drained_node.drain_repushes,
            "repush_retries": ha.leader.drain_repush_retries,
            "warm_typed_errors": warm_errors,
            "under_replicated": under_drain,
        }
        gates["drain_scenario_armed"] = live_streams >= 1 and len(unique) >= 1
        gates["drain_zero_typed_errors"] = not warm_errors
        gates["drain_stream_adopted"] = (
            racing_ok and post_drain_ok and adoptions >= 1
            and takeovers_after == takeovers_before
        )
        gates["drain_replication_closed"] = not under_drain
        gates["drain_lineage_unbroken"] = lineage_ok

        report["replication_stats"]["drain_handoffs"] = (
            drained_node.drain_handoffs
        )
        report["replication_stats"]["drain_adoptions"] = adoptions
        report["replication_stats"]["drain_repush_retries"] = (
            ha.leader.drain_repush_retries
        )
    finally:
        await client.close()
        await ha.shutdown()


async def _run_farm_ha_campaign_async(
    requests: int,
    *,
    nodes: int,
    replication: int,
    seed: int,
    cache_dir: str | Path | None,
    drop_rate: float,
    max_restore_sweeps: int,
    amend_steps: int,
) -> dict[str, Any]:
    from repro.service.amend import amend_epoch_digest, parse_rows
    from repro.service.errors import EpochConflict
    from repro.service.farm import Farm

    combos = CAMPAIGN_REQUESTS + _farm_extra_combos(seed)
    part_combos = _farm_extra_combos(seed ^ 0x9A11, count=6)
    all_combos = combos + part_combos

    # Independent baseline: compiles are deterministic, so every farm
    # reply in every phase must be byte-identical to one plain server.
    baseline: list[str] = []
    single = CompileServer(workers=0)
    await single.start()
    try:
        async with AsyncCompileClient(*single.address, retry=None) as clean:
            for combo in all_combos:
                reply = await clean.request({"op": "compile", **combo})
                baseline.append(_reply_bytes(reply))
    finally:
        await single.shutdown()

    report: dict[str, Any] = {
        "requests": requests,
        "nodes": nodes,
        "replication": replication,
        "attempted": 0,
        "completed": 0,
        "typed_failures": {},
        "corrupted": [],
        "untyped_failures": [],
        "phases": {},
    }
    gates: dict[str, bool] = {}
    tracked: dict[int, str] = {}  # combo index -> compile digest

    farm = Farm(
        nodes, replication=replication, workers=0, cache_dir=cache_dir,
        policy=ServerPolicy(max_pending=64, retry_after=0.05),
        chaos_seed=seed,
    )
    await farm.start()
    client = farm.client()
    rng = random.Random(seed)

    async def drive(which: int) -> None:
        """One scored compile request through the farm client."""
        report["attempted"] += 1
        try:
            reply = await client.request(
                {"op": "compile", **all_combos[which]}
            )
        except ServiceError as exc:
            report["typed_failures"][exc.code] = (
                report["typed_failures"].get(exc.code, 0) + 1
            )
            return
        except Exception as exc:  # noqa: BLE001 - the invariant itself
            report["untyped_failures"].append(repr(exc))
            return
        if _reply_bytes(reply) == baseline[which]:
            report["completed"] += 1
            tracked[which] = str(reply["digest"])
        else:
            report["corrupted"].append(
                {"request": which, "digest": reply.get("digest")}
            )

    async def drain_pushes() -> None:
        """Let in-flight replica pushes land before an audit."""
        for node in list(farm.nodes.values()):
            if node._repl_tasks:
                await asyncio.gather(
                    *node._repl_tasks, return_exceptions=True
                )

    try:
        await client.connect()

        # -- phase A: silent replica loss ------------------------------
        # Every node drops a seeded fraction of its outbound replica
        # pushes; replies must stay byte-identical regardless, and the
        # anti-entropy sweeps must restore replication factor R within
        # the configured budget.
        for node in farm.nodes.values():
            node.drop_replica_push_rate = drop_rate
        for _ in range(requests):
            await drive(rng.randrange(len(combos)))
        for node in farm.nodes.values():
            node.drop_replica_push_rate = 0.0
        await drain_pushes()
        sweeps_a, under_a = await _restore_replication(
            farm, tracked.values(), max_restore_sweeps
        )
        report["phases"]["drop"] = {
            "pushes_dropped": sum(
                n.replica_pushes_dropped for n in farm.nodes.values()
            ),
            "restore_sweeps": sweeps_a,
            "under_replicated": under_a,
        }
        gates["drops_restored"] = not under_a

        # -- phase B: one-way partition --------------------------------
        # Peer traffic src->dst is blocked; client traffic is not, so
        # availability must hold while replication silently degrades.
        # Healing plus sweeps must close the gap.
        names = sorted(farm.nodes)
        src, dst = names[0], names[1]
        farm.partition(src, dst)
        for j in range(len(part_combos)):
            await drive(len(combos) + j)
        farm.heal(src, dst)
        await drain_pushes()
        sweeps_b, under_b = await _restore_replication(
            farm, tracked.values(), max_restore_sweeps
        )
        report["phases"]["partition"] = {
            "pair": [src, dst],
            "restore_sweeps": sweeps_b,
            "under_replicated": under_b,
        }
        gates["partition_restored"] = not under_b

        # -- phase C: kill the primary mid-amend-stream ----------------
        torus = {"kind": "torus", "width": 4}
        open_pairs = [[i, (i + 1) % 16] for i in range(8)]
        report["attempted"] += 1
        reply = await client.amend(torus, pairs=open_pairs)
        report["completed"] += 1
        root = str(reply["root"])
        chain = str(reply["digest"])
        epoch = int(reply["epoch"])
        lineage_ok = chain == root  # epoch 0 digest *is* the root

        def rows(e: int) -> list[list[int]]:
            return [[e % 16, (e + 5) % 16, 1, 3]]

        async def step(e: int) -> bool:
            """One epoch update, checked against the client-side chain."""
            nonlocal chain, epoch, lineage_ok
            add = rows(e)
            report["attempted"] += 1
            try:
                reply = await client.amend(root=root, epoch=epoch, add=add)
            except ServiceError as exc:
                report["typed_failures"][exc.code] = (
                    report["typed_failures"].get(exc.code, 0) + 1
                )
                return False
            expect = amend_epoch_digest(
                chain, parse_rows(add, what="add"), []
            )
            if str(reply["digest"]) != expect:
                lineage_ok = False
                report["corrupted"].append(
                    {"request": f"amend-epoch-{e}",
                     "digest": reply.get("digest")}
                )
            else:
                report["completed"] += 1
            chain = str(reply["digest"])
            epoch = int(reply["epoch"])
            return True

        for e in range(amend_steps):
            await step(e)
        primary = farm.router.shard_map.owners(root)[0]
        await drain_pushes()  # epoch artifacts + resume heads must land
        await farm.kill_node(primary)
        # Deterministic demote: drive the probe state machine by hand
        # (suspect -> dead takes `suspect_after` consecutive failures).
        for _ in range(farm.suspect_after):
            await farm.router.probe_round()
        demoted = primary not in farm.router.shard_map.nodes
        stale_epoch = epoch
        continued = await step(amend_steps)  # lands on the new owner
        takeovers = sum(n.amend_takeovers for n in farm.nodes.values())
        # Stale racer: replays the epoch the winner just consumed.  It
        # must get a typed EpochConflict naming the winner's head --
        # proof the stream did not fork or silently reset.
        stale_typed = no_fork = False
        report["attempted"] += 1
        try:
            await client.amend(root=root, epoch=stale_epoch, add=rows(99))
        except EpochConflict as exc:
            stale_typed = True
            no_fork = (
                exc.current_epoch == epoch and exc.current_digest == chain
            )
            report["completed"] += 1  # a typed refusal is the correct reply
        except ServiceError as exc:
            report["typed_failures"][exc.code] = (
                report["typed_failures"].get(exc.code, 0) + 1
            )
        for e in range(amend_steps + 1, amend_steps + 3):
            await step(e)
        report["phases"]["amend_failover"] = {
            "root": root,
            "killed": primary,
            "epoch": epoch,
            "takeovers": takeovers,
        }
        gates["amend_primary_demoted"] = demoted
        gates["amend_takeover"] = continued and takeovers >= 1
        gates["amend_lineage_unbroken"] = lineage_ok
        gates["stale_racer_typed"] = stale_typed
        gates["no_fork"] = no_fork

        # -- phase D: the dead node comes back -------------------------
        # Fresh process on the original endpoint with an empty (or
        # recovered) cache and a stale map: one probe round must
        # rejoin it, and the targeted repair must leave it able to
        # serve its owned digests without a router hop.
        await farm.restart_node(primary)
        await farm.router.probe_round()
        rejoined = (
            primary in farm.router.shard_map.nodes
            and farm.router.rejoins >= 1
        )
        owned = [
            (which, digest) for which, digest in sorted(tracked.items())
            if primary in farm.router.shard_map.owners(digest)
        ]
        sweeps_d = 0
        missing = [
            d for _, d in owned
            if d not in farm.nodes[primary].cache.digests()
        ]
        while missing and sweeps_d < max_restore_sweeps:
            sweeps_d += 1
            await _repair_all(farm)
            missing = [
                d for _, d in owned
                if d not in farm.nodes[primary].cache.digests()
            ]
        direct_ok = False
        if owned and not missing:
            which = owned[0][0]
            host, port = farm.nodes[primary].address
            async with AsyncCompileClient(host, port, retry=None) as direct:
                reply = await direct.request(
                    {"op": "compile", **all_combos[which]}
                )
                direct_ok = (
                    reply.get("cache") == "hit"
                    and _reply_bytes(reply) == baseline[which]
                )
        report["phases"]["rejoin"] = {
            "node": primary,
            "owned_digests": len(owned),
            "restore_sweeps": sweeps_d,
            "missing_after": len(missing),
        }
        gates["rejoined"] = rejoined
        gates["rejoin_direct_serve"] = direct_ok

        # -- phase E: the router itself dies ---------------------------
        # The router is stateless: a replacement on the same port,
        # seeded with the stale v1 map, must converge through the skew
        # machinery on the first request.  Snapshot the dying router's
        # counters first -- the replacement starts from zero.
        report["router"] = {
            "failovers": farm.router.failovers,
            "rejoins": farm.router.rejoins,
            "probe_rounds": farm.router.probe_rounds,
            "probe_demotions": farm.router.probe_demotions,
            "map_version": farm.router.shard_map.version,
        }
        await farm.kill_router()
        await farm.restart_router()
        report["attempted"] += 1
        router_ok = False
        try:
            async with AsyncCompileClient(
                *farm.router_address, retry=None
            ) as fresh:
                reply = await fresh.request({"op": "compile", **combos[0]})
            router_ok = _reply_bytes(reply) == baseline[0]
            if router_ok:
                report["completed"] += 1
            else:
                report["corrupted"].append(
                    {"request": "router-restart",
                     "digest": reply.get("digest")}
                )
        except ServiceError as exc:
            report["typed_failures"][exc.code] = (
                report["typed_failures"].get(exc.code, 0) + 1
            )
        gates["router_restart"] = router_ok

        report["replication_stats"] = {
            "pushed": sum(n.replicas_pushed for n in farm.nodes.values()),
            "dropped": sum(
                n.replica_pushes_dropped for n in farm.nodes.values()
            ),
            "retries": sum(
                n.replica_push_retries for n in farm.nodes.values()
            ),
            "repaired": sum(
                n.replicas_repaired for n in farm.nodes.values()
            ),
            "anti_entropy_rounds": sum(
                n.anti_entropy_rounds for n in farm.nodes.values()
            ),
            "amend_takeovers": sum(
                n.amend_takeovers for n in farm.nodes.values()
            ),
        }
        report["router"]["restarted_map_version"] = (
            farm.router.shard_map.version
        )
    finally:
        await client.close()
        await farm.shutdown()

    # -- phases F + G: router HA pair + graceful drain -----------------
    # A fresh two-router farm (short lease so promotion is observable
    # in test time): leader kill -> standby promotion under epoch
    # fencing, then a graceful drain of a loaded primary.
    await _run_router_ha_phases(
        report, gates, baseline, all_combos,
        nodes=nodes, replication=replication, seed=seed,
    )

    gates["no_corruption"] = not report["corrupted"]
    gates["no_untyped_failures"] = not report["untyped_failures"]
    report["availability"] = (
        report["completed"] / report["attempted"] if report["attempted"]
        else 0.0
    )
    report["restore_sweeps"] = max(sweeps_a, sweeps_b, sweeps_d)
    report["gates"] = gates
    report["ok"] = all(gates.values())
    return report


def run_farm_ha_campaign(
    requests: int = 60,
    *,
    nodes: int = 3,
    replication: int = 2,
    seed: int = 0,
    cache_dir: str | Path | None = None,
    drop_rate: float = 0.5,
    max_restore_sweeps: int = 3,
    amend_steps: int = 6,
) -> dict[str, Any]:
    """High-availability chaos: the farm must heal everything it loses.

    Seven scripted phases -- silent replica-push loss, a one-way peer
    partition, kill-the-primary mid-amend-stream, restart-and-rejoin
    of the dead node, and a router kill/restart against an in-process
    farm, then a leader-router kill and a graceful drain against a
    two-router HA farm -- each gated on the byte-identical-or-typed-
    error invariant plus its own recovery criterion: replication
    factor R restored within ``max_restore_sweeps`` anti-entropy
    sweeps, the amend stream continued on the new owner with an
    unbroken client-verified epoch digest chain (a stale racer gets a
    typed :class:`~repro.service.errors.EpochConflict` naming the
    winning head, never a fork), the rejoined node serving its owned
    digests without a router hop, the replacement router converging
    from a stale map, the standby promoting within the lease timeout
    with the deposed leader's late map push fenced by a typed
    :class:`~repro.service.errors.StaleEpoch`, and a loaded node
    draining with zero typed errors for warm readers, its amend
    streams proactively adopted, and its uniquely-owned artifacts
    re-replicated.  ``ok`` is the conjunction of every gate; the
    report's ``availability`` is the fraction of scored requests that
    completed (a typed refusal of a stale amend counts as correct
    service) and ``promote_seconds`` is the measured leader-failover
    time.
    """
    return asyncio.run(_run_farm_ha_campaign_async(
        requests,
        nodes=nodes,
        replication=replication,
        seed=seed,
        cache_dir=cache_dir,
        drop_rate=drop_rate,
        max_restore_sweeps=max_restore_sweeps,
        amend_steps=amend_steps,
    ))
