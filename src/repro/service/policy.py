"""Resilience policies shared by the compile clients and server.

Three small, independently testable pieces:

* :class:`RetryPolicy` -- exponential backoff with **full jitter**
  (delay drawn uniformly from ``[0, min(cap, base * 2**attempt)]``,
  the AWS-architecture-blog variant that decorrelates retry storms),
  bounded both by an attempt count and a wall-clock budget, honouring
  the server's ``retry_after`` hint as a floor;
* :class:`CircuitBreaker` -- the classic closed / open / half-open
  state machine: N consecutive failures open it, opens fast-fail
  without touching the socket, and after ``reset_timeout`` seconds one
  probe request is let through (half-open) to decide whether to close;
* :class:`ServerPolicy` -- the server's knobs: per-request deadline,
  admission high-water mark, shed hint, and the maximum frame size.

Everything takes an injectable clock / RNG so the tests are
deterministic and instant.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable

from repro.service.errors import CircuitOpen, Overloaded, ServiceError

#: Stream line-length ceiling, both directions.  A serialized 8x8
#: all-to-all schedule with registers is a few hundred KiB on one line,
#: well past asyncio's 64 KiB default.
MAX_LINE_BYTES = 64 * 1024 * 1024


def request_digest(req: dict[str, Any]) -> str:
    """Content key of a request (``id``/``idem`` excluded).

    The client sends it as the ``idem`` field and the server echoes its
    *own* recomputation over the bytes it received -- a mismatch proves
    the request was altered in flight, so a resilient client treats it
    as a transport fault and retries.  Two requests with the same
    digest are interchangeable (the server answers both from the same
    artifact), which is what makes blind retries of half-delivered
    requests idempotent-safe.
    """
    body = {k: v for k, v in req.items() if k not in ("id", "idem")}
    encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter plus a retry budget."""

    #: total tries (first attempt included); ``1`` disables retries.
    attempts: int = 4
    #: backoff base in seconds (attempt ``k`` caps at ``base * 2**k``).
    base_delay: float = 0.05
    #: per-delay ceiling in seconds.
    max_delay: float = 2.0
    #: total seconds of *sleeping* the whole retry loop may spend.
    budget_seconds: float = 30.0

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth retrying (transient, idempotent-safe)."""
        return isinstance(exc, ServiceError) and exc.retryable

    def delay(
        self,
        attempt: int,
        *,
        retry_after: float = 0.0,
        rng: Callable[[], float] = random.random,
    ) -> float:
        """Sleep before retry number ``attempt`` (0-based).

        Full jitter over the exponential cap, floored at the server's
        ``retry_after`` hint so a shed request never comes back early.
        """
        cap = min(self.max_delay, self.base_delay * (2 ** attempt))
        return max(float(retry_after), rng() * cap)

    def plan(self, exc: BaseException, attempt: int, slept: float,
             rng: Callable[[], float] = random.random) -> float | None:
        """One retry decision: seconds to sleep, or ``None`` = give up.

        ``attempt`` is the 0-based index of the attempt that just
        failed with ``exc``; ``slept`` is the total back-off already
        spent for this request (the budget).
        """
        if attempt + 1 >= self.attempts or not self.retryable(exc):
            return None
        retry_after = exc.retry_after if isinstance(exc, Overloaded) else 0.0
        pause = self.delay(attempt, retry_after=retry_after, rng=rng)
        if slept + pause > self.budget_seconds:
            return None
        return pause


#: Breaker states (plain strings; they travel into stats dicts).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


@dataclass
class CircuitBreaker:
    """Fast-fail after consecutive failures; half-open on a timer.

    Not thread-safe by design: each blocking client owns one, and the
    async client mutates it only from the event loop.  A breaker may be
    *shared* between clients in one thread/loop to pool their view of
    server health.
    """

    #: consecutive failures that trip the breaker open.
    failure_threshold: int = 5
    #: seconds the breaker stays open before allowing one probe.
    reset_timeout: float = 5.0
    clock: Callable[[], float] = monotonic

    state: str = field(default=CLOSED, init=False)
    failures: int = field(default=0, init=False)
    opened_at: float = field(default=0.0, init=False)
    #: lifetime count of requests fast-failed while open.
    rejected: int = field(default=0, init=False)
    #: lifetime count of closed->open transitions.
    trips: int = field(default=0, init=False)

    def check(self) -> None:
        """Gate one request: raise :class:`CircuitOpen` or let it pass.

        An open breaker whose reset timer has expired moves to
        half-open and lets exactly this request through as the probe.
        """
        if self.state == OPEN:
            if self.clock() - self.opened_at >= self.reset_timeout:
                self.state = HALF_OPEN
                return
            self.rejected += 1
            raise CircuitOpen(
                f"circuit open after {self.failures} consecutive failures"
            )

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at = self.clock()

    def as_dict(self) -> dict[str, float | str]:
        return {
            "state": self.state,
            "failures": self.failures,
            "rejected": self.rejected,
            "trips": self.trips,
        }


@dataclass(frozen=True)
class ServerPolicy:
    """Admission and deadline knobs of one :class:`CompileServer`.

    ``max_pending`` bounds the number of compile requests allowed in
    the house at once (queued on the pool, running, or following an
    in-flight leader); past it the server sheds with an ``overloaded``
    reply carrying ``retry_after``.  ``request_deadline`` is the
    per-request wall-clock budget: a compile that exceeds it is
    cancelled (hung pool workers are killed and the pool restarted) and
    answered with a ``timeout`` error.
    """

    #: seconds one compile request may spend server-side; ``None`` = no limit.
    request_deadline: float | None = 60.0
    #: compile requests admitted concurrently before shedding starts.
    max_pending: int = 64
    #: back-off hint sent with ``overloaded`` replies.
    retry_after: float = 0.25
    #: hard per-line ceiling on request frames.
    max_frame_bytes: int = MAX_LINE_BYTES
    #: floor on cold-compile service seconds (0 = off).  The worker pads
    #: short compiles up to this wall-clock cost, off the event loop.
    #: Capacity benchmarks use it to emulate heavier compile workloads
    #: than the harness host's core count can express; it never reduces
    #: the cost of a compile, only raises it to the floor.
    simulated_cost: float = 0.0
