"""Content-addressed artifact store for compiled schedules.

Two tiers:

* an **in-process LRU** of parsed documents (``memory_entries`` deep),
  so a hot pattern costs a dict lookup;
* an **on-disk store** under ``root/<digest[:2]>/<digest>.json`` that
  survives processes and is shared between them.

Disk writes are atomic (temp file + ``os.replace`` in the same
directory) and **journaled**: before touching the shard the writer
records an intent under ``root/journal/<digest>.intent``, and removes
it only after the rename has landed.  A crash mid-write therefore
leaves evidence -- a leftover intent and possibly a torn temp or shard
file -- and the **startup recovery scan** (:meth:`ArtifactCache.recover`,
run on open) uses it: shards named by a leftover intent are re-verified
against their embedded ``payload_sha256`` and *quarantined* (moved to
``root/quarantine/``) when torn, stray ``.tmp-*`` files are swept, and
clean shards simply have their intent retired.  The read path applies
the same payload-hash check on every disk load, and callers can pass a
``verifier`` (semantic conflict re-check against the topology,
:func:`repro.service.compile.verify_artifact`) for defense-in-depth
beyond the hash; any failure quarantines the entry and reads as a
miss, because the compiler can always regenerate it.

Hit/miss/store/quarantine/recovery counts feed both a per-cache
:class:`CacheStats` and the process-global perf counters
(:mod:`repro.core.perf`), so ``repro-tdm perf``-style reporting sees
cache behaviour alongside kernel and route-cache activity.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable

from repro.compiler.serialize import artifact_digest
from repro.core import perf

#: Default depth of the in-process LRU tier.
DEFAULT_MEMORY_ENTRIES = 64

#: Subdirectories reserved by the store (never shard prefixes: shard
#: dirs are two hex chars).
JOURNAL_DIR = "journal"
QUARANTINE_DIR = "quarantine"


@dataclass
class CacheStats:
    """Counters for one :class:`ArtifactCache` instance."""

    #: lookups answered from either tier.
    hits: int = 0
    #: of those, answered by the in-process LRU.
    memory_hits: int = 0
    #: of those, answered by a disk read.
    disk_hits: int = 0
    #: lookups that found nothing.
    misses: int = 0
    #: artifacts written.
    stores: int = 0
    #: memory-tier entries dropped by the LRU policy.
    evictions: int = 0
    #: disk entries that failed their integrity check and were removed.
    corrupt: int = 0
    #: disk entries moved to the quarantine directory.
    quarantined: int = 0
    #: torn writes detected and cleaned by the startup recovery scan.
    recovered: int = 0
    #: served artifacts rejected by a semantic verifier.
    verify_failures: int = 0

    def as_dict(self) -> dict[str, float]:
        out: dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        looked_up = self.hits + self.misses
        out["hit_rate"] = self.hits / looked_up if looked_up else 0.0
        return out


class ArtifactCache:
    """Two-tier content-addressed store of compiled-schedule documents.

    Parameters
    ----------
    root:
        Directory of the disk tier; created on first store.  ``None``
        disables the disk tier (in-process LRU only).
    memory_entries:
        LRU depth of the in-process tier; ``0`` disables it.
    recover:
        Run the crash-recovery scan on open (default).  Only tests
        that stage torn state *after* opening turn this off.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        recover: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.memory_entries = int(memory_entries)
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.stats = CacheStats()
        if recover and self.root is not None and self.root.is_dir():
            self.recover()

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(
        self,
        digest: str,
        *,
        verifier: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any] | None:
        """The cached document for ``digest``, or ``None``.

        Promotes disk hits into the memory tier.  ``verifier`` (raise
        to reject) runs on documents crossing the disk -> process
        boundary -- the untrusted one; memory-tier entries already
        passed it, or were produced by a validated compile in-process.
        A rejected document is quarantined and the lookup is a miss.
        """
        doc = self._memory.get(digest)
        if doc is not None:
            self._memory.move_to_end(digest)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            perf.COUNTERS.artifact_cache_hits += 1
            return doc
        doc = self._disk_read(digest)
        if doc is not None and verifier is not None:
            try:
                verifier(doc)
            except Exception:
                self.stats.verify_failures += 1
                perf.COUNTERS.artifact_verify_failures += 1
                self._quarantine(self._path(digest))
                doc = None
        if doc is not None:
            self._memory_put(digest, doc)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            perf.COUNTERS.artifact_cache_hits += 1
            return doc
        self.stats.misses += 1
        perf.COUNTERS.artifact_cache_misses += 1
        return None

    def put(self, digest: str, doc: dict[str, Any]) -> None:
        """Store ``doc`` under ``digest`` in both tiers (atomic on disk)."""
        self._memory_put(digest, doc)
        if self.root is not None:
            self._disk_write(digest, doc)
        self.stats.stores += 1
        perf.COUNTERS.artifact_cache_stores += 1

    def __contains__(self, digest: str) -> bool:
        return digest in self._memory or self._path(digest).is_file()

    def __len__(self) -> int:
        """Number of distinct artifacts reachable from this cache."""
        return len(self.digests())

    def digests(self) -> set[str]:
        """Every digest reachable from either tier (union of both)."""
        on_disk = (
            {p.stem for p in self.root.glob("??/*.json")}
            if self.root is not None and self.root.is_dir()
            else set()
        )
        return on_disk | set(self._memory)

    def peek(self, digest: str) -> dict[str, Any] | None:
        """Read without touching hit/miss stats or the LRU order.

        For inventory-style scans (anti-entropy digest exchange): the
        disk read still payload-hash checks (and quarantines a corrupt
        entry), but a peek never promotes, never counts as a hit, and
        never reorders the memory tier.
        """
        doc = self._memory.get(digest)
        if doc is not None:
            return doc
        return self._disk_read(digest)

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def _memory_put(self, digest: str, doc: dict[str, Any]) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[digest] = doc
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            perf.COUNTERS.artifact_cache_evictions += 1

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        if self.root is None:
            return Path(os.devnull)
        return self.root / digest[:2] / f"{digest}.json"

    def _intent_path(self, digest: str) -> Path:
        assert self.root is not None
        return self.root / JOURNAL_DIR / f"{digest}.intent"

    def _quarantine(self, path: Path) -> None:
        """Move a suspect file out of the serving tree (never serve it).

        Falls back to unlinking when the move itself fails; either way
        the path stops being servable.
        """
        if self.root is None or not path.exists():
            return
        qdir = self.root / QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:  # pragma: no cover - racing quarantiners
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.quarantined += 1
        perf.COUNTERS.artifact_cache_quarantined += 1

    def _disk_read(self, digest: str) -> dict[str, Any] | None:
        if self.root is None:
            return None
        path = self._path(digest)
        try:
            wrapped = json.loads(path.read_text())
            doc = wrapped["artifact"]
            if artifact_digest(doc) != wrapped["payload_sha256"]:
                raise ValueError("payload digest mismatch")
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt / truncated / tampered: quarantine and recompile.
            self.stats.corrupt += 1
            self._quarantine(path)
            return None
        return doc

    def _disk_write(self, digest: str, doc: dict[str, Any]) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        wrapped = {"artifact": doc, "payload_sha256": artifact_digest(doc)}
        intent = self._write_intent(digest)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(wrapped, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        finally:
            # The shard either landed atomically or was cleaned up:
            # either way the intent is settled.
            try:
                intent.unlink()
            except OSError:  # pragma: no cover - racing writers
                pass

    def _write_intent(self, digest: str) -> Path:
        """Journal the upcoming shard write (crash evidence)."""
        intent = self._intent_path(digest)
        intent.parent.mkdir(parents=True, exist_ok=True)
        intent.write_text(json.dumps({"digest": digest}))
        return intent

    # ------------------------------------------------------------------
    # crash recovery / verification
    # ------------------------------------------------------------------
    def recover(self) -> dict[str, Any]:
        """Scan the journal for torn writes; quarantine, sweep, retire.

        Runs on open.  For every leftover intent the named shard is
        re-read under the payload-hash check: a clean shard means the
        rename landed before the crash (intent retired), a torn one is
        quarantined, a missing one means the crash hit before the
        rename (nothing to clean but the temp sweep).  Stray ``.tmp-*``
        files are always quarantined -- their write never committed.
        """
        report: dict[str, Any] = {"intents": 0, "quarantined": [], "swept": 0}
        if self.root is None or not self.root.is_dir():
            return report
        journal = self.root / JOURNAL_DIR
        for intent in sorted(journal.glob("*.intent")) if journal.is_dir() else []:
            report["intents"] += 1
            digest = intent.stem
            path = self._path(digest)
            if path.is_file():
                before = self.stats.corrupt
                # _disk_read quarantines on failure and counts corrupt.
                if self._disk_read(digest) is None and self.stats.corrupt > before:
                    report["quarantined"].append(digest)
            self.stats.recovered += 1
            perf.COUNTERS.artifact_cache_recovered += 1
            try:
                intent.unlink()
            except OSError:  # pragma: no cover - racing recoverers
                pass
        for tmp in sorted(self.root.glob("??/.tmp-*")):
            self._quarantine(tmp)
            report["swept"] += 1
        return report

    def verify_scan(
        self,
        *,
        verifier: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """Full integrity pass over the disk tier.

        Every shard is payload-hash checked (and, with ``verifier``,
        semantically re-checked); failures are quarantined.  Returns
        ``{"checked": n, "ok": n, "quarantined": [digests]}`` -- a
        clean cache reports ``checked == ok``.
        """
        report: dict[str, Any] = {"checked": 0, "ok": 0, "quarantined": []}
        if self.root is None or not self.root.is_dir():
            return report
        for shard in sorted(self.root.glob("??/*.json")):
            digest = shard.stem
            report["checked"] += 1
            doc = self._disk_read(digest)
            if doc is not None and verifier is not None:
                try:
                    verifier(doc)
                except Exception:
                    self.stats.verify_failures += 1
                    perf.COUNTERS.artifact_verify_failures += 1
                    self._quarantine(shard)
                    doc = None
            if doc is None:
                report["quarantined"].append(digest)
            else:
                report["ok"] += 1
        return report
