"""Content-addressed artifact store for compiled schedules.

Two tiers:

* an **in-process LRU** of parsed documents (``memory_entries`` deep),
  so a hot pattern costs a dict lookup;
* an **on-disk store** under ``root/<digest[:2]>/<digest>.json`` that
  survives processes and is shared between them.

Disk writes are atomic (temp file + ``os.replace`` in the same
directory), so concurrent writers -- several compile servers, the CLI
and a fault campaign all pointed at one directory -- can never expose a
half-written artifact; the worst case is both doing the same work and
one rename winning.  Each file carries a ``payload_sha256`` over its
canonical encoding; a corrupted or truncated entry fails that check on
read, is quarantined (unlinked) and treated as a miss, because the
compiler can always regenerate it.

Hit/miss/store/eviction counts feed both a per-cache
:class:`CacheStats` and the process-global perf counters
(:mod:`repro.core.perf`), so ``repro-tdm perf``-style reporting sees
cache behaviour alongside kernel and route-cache activity.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from repro.compiler.serialize import artifact_digest
from repro.core import perf

#: Default depth of the in-process LRU tier.
DEFAULT_MEMORY_ENTRIES = 64


@dataclass
class CacheStats:
    """Counters for one :class:`ArtifactCache` instance."""

    #: lookups answered from either tier.
    hits: int = 0
    #: of those, answered by the in-process LRU.
    memory_hits: int = 0
    #: of those, answered by a disk read.
    disk_hits: int = 0
    #: lookups that found nothing.
    misses: int = 0
    #: artifacts written.
    stores: int = 0
    #: memory-tier entries dropped by the LRU policy.
    evictions: int = 0
    #: disk entries that failed their integrity check and were removed.
    corrupt: int = 0

    def as_dict(self) -> dict[str, float]:
        out: dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        looked_up = self.hits + self.misses
        out["hit_rate"] = self.hits / looked_up if looked_up else 0.0
        return out


class ArtifactCache:
    """Two-tier content-addressed store of compiled-schedule documents.

    Parameters
    ----------
    root:
        Directory of the disk tier; created on first store.  ``None``
        disables the disk tier (in-process LRU only).
    memory_entries:
        LRU depth of the in-process tier; ``0`` disables it.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.memory_entries = int(memory_entries)
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(self, digest: str) -> dict[str, Any] | None:
        """The cached document for ``digest``, or ``None``.

        Promotes disk hits into the memory tier.
        """
        doc = self._memory.get(digest)
        if doc is not None:
            self._memory.move_to_end(digest)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            perf.COUNTERS.artifact_cache_hits += 1
            return doc
        doc = self._disk_read(digest)
        if doc is not None:
            self._memory_put(digest, doc)
            self.stats.hits += 1
            self.stats.disk_hits += 1
            perf.COUNTERS.artifact_cache_hits += 1
            return doc
        self.stats.misses += 1
        perf.COUNTERS.artifact_cache_misses += 1
        return None

    def put(self, digest: str, doc: dict[str, Any]) -> None:
        """Store ``doc`` under ``digest`` in both tiers (atomic on disk)."""
        self._memory_put(digest, doc)
        if self.root is not None:
            self._disk_write(digest, doc)
        self.stats.stores += 1
        perf.COUNTERS.artifact_cache_stores += 1

    def __contains__(self, digest: str) -> bool:
        return digest in self._memory or self._path(digest).is_file()

    def __len__(self) -> int:
        """Number of distinct artifacts reachable from this cache."""
        on_disk = (
            {p.stem for p in self.root.glob("??/*.json")}
            if self.root is not None and self.root.is_dir()
            else set()
        )
        return len(on_disk | set(self._memory))

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def _memory_put(self, digest: str, doc: dict[str, Any]) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[digest] = doc
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            perf.COUNTERS.artifact_cache_evictions += 1

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        if self.root is None:
            return Path(os.devnull)
        return self.root / digest[:2] / f"{digest}.json"

    def _disk_read(self, digest: str) -> dict[str, Any] | None:
        if self.root is None:
            return None
        path = self._path(digest)
        try:
            wrapped = json.loads(path.read_text())
            doc = wrapped["artifact"]
            if artifact_digest(doc) != wrapped["payload_sha256"]:
                raise ValueError("payload digest mismatch")
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt / truncated / tampered: quarantine and recompile.
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlinkers
                pass
            return None
        return doc

    def _disk_write(self, digest: str, doc: dict[str, Any]) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        wrapped = {"artifact": doc, "payload_sha256": artifact_digest(doc)}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(wrapped, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
