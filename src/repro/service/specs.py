"""JSON topology specs -- how compile requests name a topology.

A spec is a plain dict, e.g.::

    {"kind": "torus", "width": 8, "height": 8}
    {"kind": "ring", "nodes": 16, "tie_break": "positive"}
    {"kind": "kary", "dims": [4, 4, 4]}
    {"kind": "faulty", "base": {"kind": "torus", "width": 8}, "failed": [130]}

:func:`topology_from_spec` builds the topology; :func:`topology_to_spec`
is its inverse for the concrete classes the service knows about.  The
*digest* key of a cached artifact uses ``topology.signature`` (which
already encodes every routing-relevant parameter), so specs only need
to be faithful, not canonical.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.topology.base import Topology
from repro.topology.faults import FaultyTopology
from repro.topology.kary_ncube import KAryNCube, TieBreak
from repro.topology.linear import LinearArray
from repro.topology.mesh import Mesh2D
from repro.topology.omega import OmegaNetwork
from repro.topology.ring import Ring
from repro.topology.torus import Torus2D


class TopologySpecError(ValueError):
    """A malformed or unrecognised topology spec."""


def _tie_break(spec: Mapping) -> TieBreak:
    name = spec.get("tie_break", TieBreak.BALANCED.value)
    try:
        return TieBreak(name)
    except ValueError:
        raise TopologySpecError(
            f"unknown tie_break {name!r}; choose one of "
            f"{[t.value for t in TieBreak]}"
        ) from None


def topology_from_spec(spec: Mapping) -> Topology:
    """Build a topology from its JSON spec.

    Raises :class:`TopologySpecError` for unknown kinds or missing
    fields.
    """
    if not isinstance(spec, Mapping) or "kind" not in spec:
        raise TopologySpecError(f"topology spec needs a 'kind' key: {spec!r}")
    kind = spec["kind"]
    try:
        if kind == "torus":
            width = int(spec["width"])
            return Torus2D(width, int(spec.get("height", width)),
                           tie_break=_tie_break(spec))
        if kind == "mesh":
            width = int(spec["width"])
            return Mesh2D(width, int(spec.get("height", width)))
        if kind == "ring":
            return Ring(int(spec["nodes"]), tie_break=_tie_break(spec))
        if kind == "linear":
            return LinearArray(int(spec["nodes"]))
        if kind == "omega":
            return OmegaNetwork(int(spec["nodes"]))
        if kind == "kary":
            return KAryNCube([int(k) for k in spec["dims"]],
                             tie_break=_tie_break(spec))
        if kind == "faulty":
            base = topology_from_spec(spec["base"])
            return FaultyTopology(base, [int(l) for l in spec.get("failed", ())])
    except KeyError as exc:
        raise TopologySpecError(
            f"topology spec {kind!r} is missing key {exc.args[0]!r}"
        ) from None
    raise TopologySpecError(f"unknown topology kind {kind!r}")


def topology_to_spec(topology: Topology) -> dict[str, Any]:
    """Inverse of :func:`topology_from_spec` for known classes."""
    if isinstance(topology, FaultyTopology):
        return {
            "kind": "faulty",
            "base": topology_to_spec(topology.base),
            "failed": sorted(topology.failed_links),
        }
    if isinstance(topology, Torus2D):
        return {"kind": "torus", "width": topology.width,
                "height": topology.height,
                "tie_break": topology.tie_break.value}
    if isinstance(topology, Ring):
        return {"kind": "ring", "nodes": topology.num_nodes,
                "tie_break": topology.tie_break.value}
    if isinstance(topology, KAryNCube):
        return {"kind": "kary", "dims": list(topology.dims),
                "tie_break": topology.tie_break.value}
    if isinstance(topology, Mesh2D):
        return {"kind": "mesh", "width": topology.width,
                "height": topology.height}
    if isinstance(topology, LinearArray):
        return {"kind": "linear", "nodes": topology.num_nodes}
    if isinstance(topology, OmegaNetwork):
        return {"kind": "omega", "nodes": topology.num_nodes}
    raise TopologySpecError(
        f"no spec form for topology class {type(topology).__name__}"
    )
