"""The synchronous compile core: canonicalize -> cache -> scheduler.

Every compile -- whether issued by the CLI, the asyncio server, or the
fault-recovery path of the compiled simulator -- goes through
:func:`compile_pattern`:

1. the pattern is canonicalized (:mod:`repro.service.canonical`), so
   any translated/reordered instance maps to one digest;
2. the digest keys the artifact cache; a hit skips the scheduler
   entirely;
3. a miss routes and schedules the *canonical* pattern, validates the
   result, serialises it (schedule, and optionally the register image)
   and stores it under the digest;
4. either way, the canonical artifact is translated back through the
   inverse node permutation before being returned, so the caller sees
   its own node ids.

Because both the cold and the warm path serve the stored canonical
document through the same translation, a cache hit is byte-identical
(post-serialization) to the cold compile that populated it -- asserted
by the test suite.

Determinism note: the service always schedules the canonical request
*order* (sorted), so order-sensitive schedulers (the paper's greedy)
see one fixed order per equivalence class.  That is the price of
collapsing relabelled instances; the paper's production schedulers are
priority-driven and unaffected.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.compiler.serialize import (
    ArtifactError,
    FORMAT_VERSION,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core import perf
from repro.core.linkmask import resolve_kernel
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler
from repro.service.cache import ArtifactCache
from repro.service.canonical import (
    CanonicalPattern,
    canonicalize,
    permute_registers_dict,
    permute_schedule_dict,
)
from repro.topology.base import Topology


def compile_digest(
    topology: Topology,
    canonical: CanonicalPattern,
    scheduler: str,
    kernel: str | None,
) -> str:
    """Stable content address of one compilation problem.

    Keyed by (artifact format version, topology signature -- which
    already encodes every routing-relevant parameter, scheduler name,
    placement kernel, canonical pattern bytes).  Anything that can
    change the produced schedule must appear here; bumping
    ``FORMAT_VERSION`` retires every old entry at once.
    """
    h = hashlib.sha256()
    header = (
        f"repro-artifact/v{FORMAT_VERSION}\0{topology.signature}\0"
        f"{scheduler}\0{resolve_kernel(kernel)}\0"
    )
    h.update(header.encode("ascii"))
    h.update(canonical.key_bytes)
    return h.hexdigest()


def verify_artifact(topology: Topology, doc: dict[str, Any]) -> None:
    """Semantic re-check of a cached artifact before it is served.

    Defense-in-depth past the payload-hash check: the schedule is
    re-routed on ``topology`` and every configuration re-validated
    conflict-free (:func:`schedule_from_dict` raises on the first
    switch/link conflict, degree lie, or version mismatch).  A
    hash-clean artifact whose *content* would program a conflicting
    switch state -- a poisoned store, a digest collision, a serializer
    bug -- is rejected here and never leaves the cache.
    """
    signature = doc.get("topology")
    if signature is not None and signature != topology.signature:
        raise ArtifactError(
            f"artifact built for {signature!r}, "
            f"serving topology is {topology.signature!r}"
        )
    schedule_from_dict(topology, doc["schedule"])


def artifact_verifier(topology: Topology):
    """:func:`verify_artifact` curried for :meth:`ArtifactCache.get`."""
    return lambda doc: verify_artifact(topology, doc)


@dataclass
class CompileResult:
    """Outcome of one service compile.

    ``schedule_doc`` (and ``registers_doc`` when requested) are in the
    *caller's* node ids; feed them to
    :func:`repro.compiler.serialize.schedule_from_dict` /
    ``registers_from_dict``, which re-validate on load.
    """

    digest: str
    #: ``"hit"`` or ``"miss"`` (the server adds ``"inflight"``).
    cache: str
    degree: int
    schedule_doc: dict[str, Any]
    registers_doc: dict[str, Any] | None
    #: wall-clock seconds this compile spent in the service.
    seconds: float
    #: canonicalizing translation applied (``()``/all-zero = identity).
    translation: tuple[int, ...]


def build_canonical_artifact(
    topology: Topology,
    canonical_requests: Sequence[tuple[int, int, int, int]],
    scheduler: str = "combined",
    *,
    include_registers: bool = True,
) -> dict[str, Any]:
    """Cold-compile a canonical pattern into a cacheable document.

    Pure function of its arguments (runs the scheduler; no cache
    access), so it can execute in a worker process.  The schedule is
    validated before serialisation -- an illegal schedule can never
    enter a cache.
    """
    from repro.core.requests import Request, RequestSet

    requests = RequestSet(
        (Request(s, d, size=size, tag=tag)
         for s, d, size, tag in canonical_requests),
        allow_duplicates=True,
        name="canonical",
    )
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    schedule.validate(connections)
    doc: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "topology": topology.signature,
        "scheduler": scheduler,
        "schedule": schedule_to_dict(schedule),
    }
    if include_registers:
        from repro.compiler.codegen import generate_registers
        from repro.compiler.serialize import registers_to_dict

        doc["registers"] = registers_to_dict(
            generate_registers(topology, schedule)
        )
    return doc


def compile_pattern(
    topology: Topology,
    requests: Sequence,
    *,
    cache: ArtifactCache | None = None,
    scheduler: str = "combined",
    kernel: str | None = None,
    include_registers: bool = False,
) -> CompileResult:
    """Compile ``requests`` on ``topology`` through the artifact cache.

    With ``cache=None`` the compile still runs (cold) but nothing is
    stored.  ``include_registers`` additionally returns (and caches)
    the switch register image.
    """
    t0 = perf.perf_timer()
    canonical = canonicalize(topology, requests)
    digest = compile_digest(topology, canonical, scheduler, kernel)

    doc = (
        cache.get(digest, verifier=artifact_verifier(topology))
        if cache is not None
        else None
    )
    outcome = "hit"
    if doc is not None and include_registers and "registers" not in doc:
        # Cached by a schedule-only compile; upgrade the entry in place.
        doc = None
    if doc is None:
        outcome = "miss"
        if cache is None:
            perf.COUNTERS.artifact_cache_misses += 1
        doc = build_canonical_artifact(
            topology, canonical.requests, scheduler,
            include_registers=include_registers,
        )
        if cache is not None:
            cache.put(digest, doc)

    schedule_doc = doc["schedule"]
    registers_doc = doc.get("registers") if include_registers else None
    if not canonical.is_identity:
        schedule_doc = permute_schedule_dict(schedule_doc, canonical.sigma_inv)
        if registers_doc is not None:
            registers_doc = permute_registers_dict(
                topology, registers_doc, canonical.sigma_inv
            )
    return CompileResult(
        digest=digest,
        cache=outcome,
        degree=int(schedule_doc["degree"]),
        schedule_doc=schedule_doc,
        registers_doc=registers_doc,
        seconds=perf.perf_timer() - t0,
        translation=canonical.translation,
    )


class CompileService:
    """A cache-bound compile front-end (what the server wraps).

    Keeps per-outcome latency accumulators so a long-running server can
    report cold vs warm service times.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        *,
        scheduler: str = "combined",
        kernel: str | None = None,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        self.default_scheduler = scheduler
        self.default_kernel = kernel
        self.latency: dict[str, dict[str, float]] = {
            "miss": {"count": 0, "seconds": 0.0},
            "hit": {"count": 0, "seconds": 0.0},
        }

    def compile(
        self,
        topology: Topology,
        requests: Sequence,
        *,
        scheduler: str | None = None,
        kernel: str | None = None,
        include_registers: bool = False,
    ) -> CompileResult:
        result = compile_pattern(
            topology,
            requests,
            cache=self.cache,
            scheduler=scheduler or self.default_scheduler,
            kernel=kernel if kernel is not None else self.default_kernel,
            include_registers=include_registers,
        )
        bucket = self.latency[result.cache]
        bucket["count"] += 1
        bucket["seconds"] += result.seconds
        return result

    def stats(self) -> dict[str, Any]:
        """Cache counters plus mean service latency per outcome."""
        out: dict[str, Any] = {"cache": self.cache.stats.as_dict()}
        latency = {}
        for outcome, bucket in self.latency.items():
            n = int(bucket["count"])
            latency[outcome] = {
                "count": n,
                "seconds": bucket["seconds"],
                "mean_seconds": bucket["seconds"] / n if n else 0.0,
            }
        out["latency"] = latency
        return out
