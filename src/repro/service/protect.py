"""Protection artifacts: serialisation, canonicalization, caching.

A :class:`~repro.core.protection.ProtectedSchedule` is a compile-time
product just like a schedule, so it travels through the same service
machinery: a schema-versioned JSON document, content-addressed by a
digest that covers everything able to change the plans, stored in the
:class:`~repro.service.cache.ArtifactCache` (payload-hash wrapped,
crash-safe, chaos-harness covered), and canonicalized under torus
translation symmetry so every translated instance of a pattern shares
one protection entry.

One wrinkle distinguishes protection from plain schedules: detour
routes must be **stored**, not recomputed on load.  The BFS fallback
of :class:`~repro.topology.faults.FaultyTopology` breaks ties by node
id, which is *not* translation-equivariant -- recomputing a detour
after detranslation could legally pick a different path and silently
diverge from the placements the artifact promised were conflict-free.
Storing the paths and carrying each link through
:func:`~repro.service.canonical.translate_link` keeps a cache hit
byte-for-byte consistent with the cold build that populated it
(translations map link-disjoint sets to link-disjoint sets, so
validity is preserved exactly).

Loading re-validates: the base schedule is re-routed and re-checked by
:func:`~repro.compiler.serialize.schedule_from_dict`, and every stored
detour is structurally audited (a contiguous light path of the claimed
endpoints that avoids the scenario's failed fiber).  The deep
per-scenario conflict check runs once on the cold path before the
artifact may enter a cache, and on demand via ``repro-tdm protect
--verify``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.compiler.serialize import (
    ArtifactError,
    FORMAT_VERSION,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core import perf
from repro.core.linkmask import resolve_kernel
from repro.core.paths import route_requests
from repro.core.protection import (
    PLAN_KINDS,
    ProtectedSchedule,
    ScenarioPlan,
    build_protection,
)
from repro.core.registry import get_scheduler
from repro.service.cache import ArtifactCache
from repro.service.canonical import (
    CanonicalPattern,
    canonicalize,
    permute_schedule_dict,
    translate_link,
)
from repro.topology.base import Topology
from repro.topology.links import LinkKind

#: Bump to retire every cached protection artifact at once (the plan
#: algorithm, document schema, or detour policy changed).
PROTECTION_VERSION = 1


def protect_digest(
    topology: Topology,
    canonical: CanonicalPattern,
    scheduler: str,
    kernel: str | None,
) -> str:
    """Content address of one protection problem.

    Same keying discipline as
    :func:`repro.service.compile.compile_digest`, under a distinct
    header so a protection document can never collide with (or be
    served as) a plain schedule artifact, plus the protection schema
    version.
    """
    h = hashlib.sha256()
    header = (
        f"repro-protect/v{FORMAT_VERSION}.{PROTECTION_VERSION}\0"
        f"{topology.signature}\0{scheduler}\0{resolve_kernel(kernel)}\0"
    )
    h.update(header.encode("ascii"))
    h.update(canonical.key_bytes)
    return h.hexdigest()


# ----------------------------------------------------------------------
# document codec
# ----------------------------------------------------------------------

def protection_to_dict(protected: ProtectedSchedule) -> dict[str, Any]:
    """Serialise a protected schedule (digest-stable).

    Connection indices in the document are **slot-order positions** of
    the base schedule -- the numbering
    :func:`~repro.compiler.serialize.schedule_from_dict` recreates on
    load -- so the original in-memory indices are remapped here.
    """
    pos = {
        c.index: p
        for p, c in enumerate(
            c for cfg in protected.schedule for c in cfg
        )
    }
    scenarios = []
    for link in protected.scenarios:
        plan = protected.plans[link]
        entry: dict[str, Any] = {
            "link": int(link),
            "kind": plan.kind,
            "affected": sorted(pos[i] for i in plan.affected),
            "delta_k": int(plan.delta_k),
        }
        if plan.detours:
            entry["detours"] = {
                str(pos[i]): [int(l) for l in path]
                for i, path in plan.detours.items()
            }
            entry["placements"] = {
                str(pos[i]): int(s) for i, s in plan.placements.items()
            }
        if plan.reason:
            entry["reason"] = str(plan.reason)
        scenarios.append(entry)
    return {
        "version": FORMAT_VERSION,
        "protection": PROTECTION_VERSION,
        "topology": protected.topology.signature,
        "schedule": schedule_to_dict(protected.schedule),
        "scenarios": scenarios,
    }


def _check_detour(
    topology: Topology, conn, banned: int, path: Sequence[int]
) -> None:
    """Audit one stored detour: a contiguous light path of the
    connection's endpoints that avoids the scenario's failed fiber."""
    if banned in path:
        raise ArtifactError(
            f"detour for connection {conn.index} crosses the failed "
            f"fiber {banned}"
        )
    infos = [topology.link_info(l) for l in path]
    src, dst = conn.pair
    if infos[0].kind is not LinkKind.INJECT or infos[0].src != src:
        raise ArtifactError(
            f"detour for connection {conn.index} does not start at the "
            f"injection fiber of node {src}"
        )
    if infos[-1].kind is not LinkKind.EJECT or infos[-1].dst != dst:
        raise ArtifactError(
            f"detour for connection {conn.index} does not end at the "
            f"ejection fiber of node {dst}"
        )
    for a, b in zip(infos, infos[1:]):
        if a.dst != b.src:
            raise ArtifactError(
                f"detour for connection {conn.index} is not contiguous "
                f"(link into {a.dst} followed by link out of {b.src})"
            )


def protection_from_dict(
    topology: Topology, doc: dict[str, Any]
) -> ProtectedSchedule:
    """Rebuild (and audit) a protection document on ``topology``.

    The base schedule is re-routed and re-validated; every scenario is
    structurally checked (valid transit link, known kind, detour paths
    contiguous / endpoint-correct / avoiding the failed fiber,
    placements in range and covering exactly the affected set).  The
    per-scenario conflict re-check is deliberately not run here -- see
    the module docstring; :meth:`ProtectedSchedule.validate` provides
    it.
    """
    if doc.get("version") != FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {doc.get('version')!r}"
        )
    if doc.get("protection") != PROTECTION_VERSION:
        raise ArtifactError(
            f"unsupported protection version {doc.get('protection')!r}"
        )
    signature = doc.get("topology")
    if signature is not None and signature != topology.signature:
        raise ArtifactError(
            f"protection built for {signature!r}, "
            f"serving topology is {topology.signature!r}"
        )
    schedule, connections = schedule_from_dict(topology, doc["schedule"])
    degree = schedule.degree
    plans: dict[int, ScenarioPlan] = {}
    for entry in doc["scenarios"]:
        link = int(entry["link"])
        if topology.link_info(link).kind is not LinkKind.TRANSIT:
            raise ArtifactError(f"scenario link {link} is not a transit fiber")
        kind = entry["kind"]
        if kind not in PLAN_KINDS:
            raise ArtifactError(f"unknown scenario kind {kind!r}")
        affected = tuple(int(i) for i in entry.get("affected", ()))
        if any(i < 0 or i >= len(connections) for i in affected):
            raise ArtifactError(
                f"scenario {link} names a connection index out of range"
            )
        detours = {
            int(i): tuple(int(l) for l in path)
            for i, path in entry.get("detours", {}).items()
        }
        placements = {
            int(i): int(s) for i, s in entry.get("placements", {}).items()
        }
        delta_k = int(entry.get("delta_k", 0))
        if kind in ("repacked", "augmented"):
            if set(detours) != set(affected) or set(placements) != set(affected):
                raise ArtifactError(
                    f"scenario {link}: detours/placements do not cover "
                    "the affected set"
                )
            for i, path in detours.items():
                _check_detour(topology, connections[i], link, path)
            for i, s in placements.items():
                if not 0 <= s < degree + delta_k:
                    raise ArtifactError(
                        f"scenario {link}: placement slot {s} outside "
                        f"the {degree}+{delta_k} backup frame"
                    )
        plans[link] = ScenarioPlan(
            link=link,
            kind=kind,
            affected=affected,
            detours=detours,
            placements=placements,
            delta_k=delta_k,
            reason=entry.get("reason"),
        )
    return ProtectedSchedule(topology, connections, schedule, plans)


def verify_protection(topology: Topology, doc: dict[str, Any]) -> None:
    """Structural audit of a cached protection document (see
    :func:`protection_from_dict`); raises on the first violation."""
    protection_from_dict(topology, doc)


def protection_verifier(topology: Topology):
    """:func:`verify_protection` curried for :meth:`ArtifactCache.get`."""
    return lambda doc: verify_protection(topology, doc)


def permute_protection_dict(
    topology: Topology, doc: dict[str, Any], sigma: Sequence[int]
) -> dict[str, Any]:
    """A protection document with every node and link carried through
    ``sigma`` (scenario fibers and stored detour paths included).

    Connection indices are untouched:
    :func:`~repro.service.canonical.permute_schedule_dict` preserves
    slot structure and entry order, so slot-order positions are
    translation-invariant.
    """
    return {
        **doc,
        "schedule": permute_schedule_dict(doc["schedule"], sigma),
        "scenarios": [
            {
                **entry,
                "link": translate_link(topology, entry["link"], sigma),
                **(
                    {
                        "detours": {
                            i: [translate_link(topology, l, sigma) for l in path]
                            for i, path in entry["detours"].items()
                        }
                    }
                    if "detours" in entry
                    else {}
                ),
            }
            for entry in doc["scenarios"]
        ],
    }


# ----------------------------------------------------------------------
# the compile-and-protect front-end
# ----------------------------------------------------------------------

def build_canonical_protection(
    topology: Topology,
    canonical_requests: Sequence[tuple[int, int, int, int]],
    scheduler: str = "combined",
) -> dict[str, Any]:
    """Cold-build a canonical pattern's protection document.

    Routes and schedules the pattern, plans every single-fiber
    scenario, deep-validates each covered backup schedule, and
    serialises.  An invalid protection can never enter a cache.
    """
    from repro.core.requests import Request, RequestSet

    requests = RequestSet(
        (Request(s, d, size=size, tag=tag)
         for s, d, size, tag in canonical_requests),
        allow_duplicates=True,
        name="canonical",
    )
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    schedule.validate(connections)
    protected = build_protection(topology, connections, schedule)
    protected.validate()
    return protection_to_dict(protected)


@dataclass
class ProtectResult:
    """Outcome of one protection compile.

    ``protected`` (and ``doc``) are in the *caller's* node ids; the
    connection tags submitted with the pattern survive untouched, which
    is how the fault simulator maps plans back to messages.
    """

    digest: str
    #: ``"hit"`` or ``"miss"``.
    cache: str
    protected: ProtectedSchedule
    doc: dict[str, Any]
    #: wall-clock seconds this call spent in the service.
    seconds: float
    #: canonicalizing translation applied (``()``/all-zero = identity).
    translation: tuple[int, ...]


def protect_pattern(
    topology: Topology,
    requests: Sequence,
    *,
    cache: ArtifactCache | None = None,
    scheduler: str = "combined",
    kernel: str | None = None,
) -> ProtectResult:
    """Compile ``requests`` and plan its single-fault protection,
    through the artifact cache.

    The protection mirror of
    :func:`repro.service.compile.compile_pattern`: canonicalize ->
    digest -> cache -> (miss: build + store) -> detranslate.  With
    ``cache=None`` the build still runs (cold) but nothing is stored.
    """
    t0 = perf.perf_timer()
    canonical = canonicalize(topology, requests)
    digest = protect_digest(topology, canonical, scheduler, kernel)

    doc = (
        cache.get(digest, verifier=protection_verifier(topology))
        if cache is not None
        else None
    )
    outcome = "hit"
    if doc is None:
        outcome = "miss"
        if cache is None:
            perf.COUNTERS.artifact_cache_misses += 1
        doc = build_canonical_protection(
            topology, canonical.requests, scheduler
        )
        if cache is not None:
            cache.put(digest, doc)

    if not canonical.is_identity:
        doc = permute_protection_dict(topology, doc, canonical.sigma_inv)
    protected = protection_from_dict(topology, doc)
    return ProtectResult(
        digest=digest,
        cache=outcome,
        protected=protected,
        doc=doc,
        seconds=perf.perf_timer() - t0,
        translation=canonical.translation,
    )
