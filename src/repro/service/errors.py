"""Typed error taxonomy for the compile service.

Every failure a caller can see -- on either side of the wire -- maps to
one class in this hierarchy, and every class carries a stable ``code``
string (what travels in the ``error_type`` field of an ``ok: false``
reply) and a conventional ``exit_code`` (what ``repro-tdm`` exits with
when the error escapes a CLI verb):

========================  ==============  =========
class                     code            exit code
========================  ==============  =========
:class:`ServiceError`     service_error   69
:class:`ServerError`      server_error    69
:class:`ProtocolError`    protocol        65
:class:`ServiceTimeout`   timeout         124
:class:`Overloaded`       overloaded      75
:class:`TransportError`   transport       69
:class:`CircuitOpen`      circuit_open    75
:class:`EpochConflict`    epoch_conflict  75
:class:`WrongShard`       wrong_shard     75
:class:`StaleEpoch`       stale_epoch     75
========================  ==============  =========

:class:`ServiceTimeout` also subclasses the builtin ``TimeoutError``
and :class:`ProtocolError` subclasses ``ValueError``, so existing
``except TimeoutError`` / ``except ValueError`` call sites keep
working.  :func:`error_fields` (server side) and :func:`reply_error`
(client side) convert between exceptions and reply fields.
"""

from __future__ import annotations

from typing import Any

#: EX_DATAERR / EX_UNAVAILABLE / EX_TEMPFAIL from sysexits.h plus the
#: shell convention for timeouts; reused so scripts can branch on them.
EX_DATAERR = 65
EX_UNAVAILABLE = 69
EX_TEMPFAIL = 75
EX_TIMEOUT = 124


class ServiceError(RuntimeError):
    """Base of every typed compile-service failure."""

    code = "service_error"
    exit_code = EX_UNAVAILABLE
    #: whether a retry of the same (idempotent) request can succeed.
    retryable = False


class ServerError(ServiceError):
    """The server answered ``ok: false`` with a non-specific error.

    Deterministic server-side failures (a scheduler bug, an unknown
    pattern) land here; retrying the same request would fail the same
    way, so it is not retryable.
    """

    code = "server_error"


class ProtocolError(ServerError, ValueError):
    """A request or reply that violates the wire protocol.

    Covers malformed JSON, oversized frames, unknown ops and bad
    field shapes -- on either side.  Subclasses :class:`ServerError`
    (a typed ``ok: false`` reply is still a server answer) *and*
    ``ValueError`` (pre-existing parse-error call sites).
    """

    code = "protocol"
    exit_code = EX_DATAERR


class ServiceTimeout(ServiceError, TimeoutError):
    """A deadline expired (client socket timeout or server budget)."""

    code = "timeout"
    exit_code = EX_TIMEOUT
    retryable = True


class Overloaded(ServiceError):
    """The server shed this request; retry after ``retry_after`` seconds."""

    code = "overloaded"
    exit_code = EX_TEMPFAIL
    retryable = True

    def __init__(self, message: str = "overloaded", *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class TransportError(ServiceError, ConnectionError):
    """The connection died mid-request (reset, broken pipe, refusal)."""

    code = "transport"
    retryable = True


class EpochConflict(ServiceError):
    """An amend targeted a stale epoch (optimistic concurrency failure).

    The reply carries ``current_epoch`` and ``current_digest`` (the
    digest the stream is actually at); the caller must rebase its
    update onto the current schedule and resend against that epoch.
    ``current_digest`` lets a caller racing a failover distinguish "I
    lost the race" (the digest extends the chain it knows) from a fork
    (it does not) without another round trip.
    Not retryable as-is -- replaying the identical request loses again.
    """

    code = "epoch_conflict"
    exit_code = EX_TEMPFAIL

    def __init__(
        self,
        message: str = "amend epoch conflict",
        *,
        current_epoch: int = 0,
        current_digest: str = "",
    ):
        super().__init__(message)
        self.current_epoch = int(current_epoch)
        self.current_digest = str(current_digest)


class WrongShard(ServiceError):
    """A farm node refused a request it does not own (shard redirect).

    The reply carries the node's current ``shard_map`` document and the
    ``owners`` it computed for the request's digest, so the caller can
    adopt the newer map and resend to the right node.  Not blindly
    retryable -- replaying against the same node loses again; the farm
    client handles it as a redirect instead.
    """

    code = "wrong_shard"
    exit_code = EX_TEMPFAIL

    def __init__(
        self,
        message: str = "request routed to a non-owning shard",
        *,
        shard_map: dict[str, Any] | None = None,
        owners: list[str] | None = None,
    ):
        super().__init__(message)
        self.shard_map = shard_map
        self.owners = list(owners) if owners is not None else []


class StaleEpoch(ServiceError):
    """A map push (or drain) carried a deposed leader's epoch.

    The shard map's fencing token is ``(epoch, version)`` -- the leader
    incarnation epoch dominates the version -- so a deposed leader that
    keeps bumping its own map version can never overwrite the map a
    promoted standby published under a higher epoch.  The reply carries
    the receiver's ``current_epoch``/``current_version`` so the sender
    can prove to itself it was deposed.  Not retryable: replaying the
    same stale map loses again, by design.
    """

    code = "stale_epoch"
    exit_code = EX_TEMPFAIL

    def __init__(
        self,
        message: str = "shard map epoch is stale (deposed leader)",
        *,
        current_epoch: int = 0,
        current_version: int = 0,
    ):
        super().__init__(message)
        self.current_epoch = int(current_epoch)
        self.current_version = int(current_version)


class CircuitOpen(ServiceError):
    """The client's circuit breaker is open: fast-fail without I/O."""

    code = "circuit_open"
    exit_code = EX_TEMPFAIL


#: ``error_type`` string -> exception class, for the client side.
CODE_TO_ERROR: dict[str, type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError, ServerError, ProtocolError, ServiceTimeout,
        Overloaded, TransportError, CircuitOpen, EpochConflict,
        WrongShard, StaleEpoch,
    )
}


def error_fields(exc: BaseException) -> dict[str, Any]:
    """Reply fields (``error``/``error_type``/...) for an exception.

    Server side: anything outside the hierarchy is reported as the
    generic ``server_error`` so a buggy scheduler can never crash the
    reply path; :class:`Overloaded` additionally carries its
    ``retry_after`` hint.
    """
    if isinstance(exc, Overloaded):
        return {
            "error": str(exc) or exc.code,
            "error_type": exc.code,
            "retry_after": exc.retry_after,
        }
    if isinstance(exc, EpochConflict):
        out = {
            "error": str(exc) or exc.code,
            "error_type": exc.code,
            "current_epoch": exc.current_epoch,
        }
        if exc.current_digest:
            out["current_digest"] = exc.current_digest
        return out
    if isinstance(exc, StaleEpoch):
        return {
            "error": str(exc) or exc.code,
            "error_type": exc.code,
            "current_epoch": exc.current_epoch,
            "current_version": exc.current_version,
        }
    if isinstance(exc, WrongShard):
        out: dict[str, Any] = {
            "error": str(exc) or exc.code,
            "error_type": exc.code,
            "owners": exc.owners,
        }
        if exc.shard_map is not None:
            out["shard_map"] = exc.shard_map
        return out
    if isinstance(exc, ServiceError):
        return {"error": f"{type(exc).__name__}: {exc}", "error_type": exc.code}
    if isinstance(exc, ValueError):
        # Bad request data (unknown spec, malformed fields): the
        # caller's fault, typed as a protocol error.
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "error_type": ProtocolError.code,
        }
    return {
        "error": f"{type(exc).__name__}: {exc}",
        "error_type": ServerError.code,
    }


def reply_error(reply: dict[str, Any]) -> ServiceError:
    """The typed exception encoded by an ``ok: false`` reply line."""
    cls = CODE_TO_ERROR.get(reply.get("error_type", ""), ServerError)
    message = str(reply.get("error", "unknown server error"))
    if cls is Overloaded:
        return Overloaded(message, retry_after=float(reply.get("retry_after", 0.0)))
    if cls is EpochConflict:
        return EpochConflict(
            message,
            current_epoch=int(reply.get("current_epoch", 0)),
            current_digest=str(reply.get("current_digest", "")),
        )
    if cls is StaleEpoch:
        return StaleEpoch(
            message,
            current_epoch=int(reply.get("current_epoch", 0)),
            current_version=int(reply.get("current_version", 0)),
        )
    if cls is WrongShard:
        return WrongShard(
            message,
            shard_map=reply.get("shard_map"),
            owners=list(reply.get("owners", [])),
        )
    return cls(message)
