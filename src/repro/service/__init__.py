"""Schedule compilation service -- the run-time face of compiled
communication.

The paper's premise is that connection scheduling happens **once**,
off-line, and is reused at run time.  This package turns the compiler
into exactly that: a service whose compiled schedules are
content-addressed, persistent, servable artifacts.

* :mod:`repro.service.canonical` -- pattern canonicalization under
  torus translation symmetry, so shifted/relabelled instances of the
  same pattern collapse to one cache entry;
* :mod:`repro.service.cache` -- a two-tier (in-process LRU + on-disk)
  content-addressed artifact store with atomic writes;
* :mod:`repro.service.compile` -- the synchronous compile core gluing
  canonicalization, the scheduler registry and the cache together;
* :mod:`repro.service.server` / :mod:`repro.service.client` -- an
  asyncio JSON-lines batch compile server with in-flight request
  deduplication, plus async and blocking clients;
* :mod:`repro.service.specs` -- JSON topology specs (the wire format
  naming a topology in a compile request);
* :mod:`repro.service.errors` -- the typed failure taxonomy every
  caller sees (``error_type`` on the wire, exit codes in the CLI);
* :mod:`repro.service.policy` -- retry/backoff, circuit-breaker and
  server admission/deadline policies;
* :mod:`repro.service.chaos` -- the fault-injecting proxy and
  kill-mid-write crash harness (``repro-tdm chaos``);
* :mod:`repro.service.protect` -- single-fault protection artifacts
  (precomputed backup configuration sets), cached and canonicalized
  like schedules (``repro-tdm protect``);
* :mod:`repro.service.amend` -- epoch-numbered incremental compilation
  (the ``amend`` verb): open a stream, push add/remove updates, each
  epoch's schedule stored as a first-class cache entry with digest
  lineage back to its root (``repro-tdm amend``);
* :mod:`repro.service.farm` -- the distributed compile farm: N nodes
  behind a shard router, artifacts routed by canonical pattern digest
  over a consistent-hash ring, replicated with read repair, and
  rebalanced onto survivors when a node dies (``repro-tdm farm``).
"""

from repro.service.amend import (
    AmendRegistry,
    AmendStream,
    amend_epoch_digest,
    amend_root_digest,
)
from repro.service.cache import ArtifactCache, CacheStats
from repro.service.canonical import (
    CanonicalPattern,
    canonicalize,
    translation_group,
)
from repro.service.compile import (
    CompileResult,
    CompileService,
    compile_pattern,
    verify_artifact,
)
from repro.service.client import AsyncCompileClient, CompileClient
from repro.service.errors import (
    CircuitOpen,
    EpochConflict,
    Overloaded,
    ProtocolError,
    ServerError,
    ServiceError,
    ServiceTimeout,
    TransportError,
    WrongShard,
)
from repro.service.farm import (
    AsyncFarmClient,
    Farm,
    FarmNodeServer,
    HashRing,
    ShardMap,
    ShardRouter,
)
from repro.service.protect import (
    ProtectResult,
    protect_pattern,
    verify_protection,
)
from repro.service.policy import (
    CircuitBreaker,
    RetryPolicy,
    ServerPolicy,
    request_digest,
)
from repro.service.server import CompileServer
from repro.service.specs import topology_from_spec, topology_to_spec

__all__ = [
    "AmendRegistry",
    "AmendStream",
    "ArtifactCache",
    "AsyncCompileClient",
    "AsyncFarmClient",
    "CacheStats",
    "CanonicalPattern",
    "CircuitBreaker",
    "CircuitOpen",
    "CompileClient",
    "CompileResult",
    "CompileServer",
    "CompileService",
    "EpochConflict",
    "Farm",
    "FarmNodeServer",
    "HashRing",
    "Overloaded",
    "ProtectResult",
    "ProtocolError",
    "RetryPolicy",
    "ServerError",
    "ServerPolicy",
    "ServiceError",
    "ServiceTimeout",
    "ShardMap",
    "ShardRouter",
    "TransportError",
    "WrongShard",
    "amend_epoch_digest",
    "amend_root_digest",
    "canonicalize",
    "compile_pattern",
    "protect_pattern",
    "request_digest",
    "verify_protection",
    "topology_from_spec",
    "topology_to_spec",
    "translation_group",
    "verify_artifact",
]
