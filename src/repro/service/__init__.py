"""Schedule compilation service -- the run-time face of compiled
communication.

The paper's premise is that connection scheduling happens **once**,
off-line, and is reused at run time.  This package turns the compiler
into exactly that: a service whose compiled schedules are
content-addressed, persistent, servable artifacts.

* :mod:`repro.service.canonical` -- pattern canonicalization under
  torus translation symmetry, so shifted/relabelled instances of the
  same pattern collapse to one cache entry;
* :mod:`repro.service.cache` -- a two-tier (in-process LRU + on-disk)
  content-addressed artifact store with atomic writes;
* :mod:`repro.service.compile` -- the synchronous compile core gluing
  canonicalization, the scheduler registry and the cache together;
* :mod:`repro.service.server` / :mod:`repro.service.client` -- an
  asyncio JSON-lines batch compile server with in-flight request
  deduplication, plus async and blocking clients;
* :mod:`repro.service.specs` -- JSON topology specs (the wire format
  naming a topology in a compile request).
"""

from repro.service.cache import ArtifactCache, CacheStats
from repro.service.canonical import (
    CanonicalPattern,
    canonicalize,
    translation_group,
)
from repro.service.compile import CompileResult, CompileService, compile_pattern
from repro.service.client import AsyncCompileClient, CompileClient
from repro.service.server import CompileServer
from repro.service.specs import topology_from_spec, topology_to_spec

__all__ = [
    "ArtifactCache",
    "AsyncCompileClient",
    "CacheStats",
    "CanonicalPattern",
    "CompileClient",
    "CompileResult",
    "CompileServer",
    "CompileService",
    "canonicalize",
    "compile_pattern",
    "topology_from_spec",
    "topology_to_spec",
    "translation_group",
]
