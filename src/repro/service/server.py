"""Asyncio JSON-lines compile server.

Protocol: one JSON object per line, one response line per request.

Verbs::

    {"op": "ping"}
    {"op": "compile", "id": 7, "topology": {"kind": "torus", "width": 8},
     "pattern": {"pattern": "all-to-all", "nodes": 64},
     "scheduler": "combined", "registers": false}
    {"op": "stats"}
    {"op": "health"}     # queue depth, breaker-relevant state, cache
    {"op": "ready"}      # {"ready": true|false} readiness probe
    {"op": "amend", "topology": {...}, "pairs": [[0, 1], ...]}  # open (epoch 0)
    {"op": "amend", "root": "...", "epoch": 0,
     "add": [[2, 3]], "remove": [[0, 1]]}                       # epoch 0 -> 1
    {"op": "shutdown"}

``pattern`` is a declarative spec (:mod:`repro.compiler.recognition`);
``pairs`` -- a list of ``[src, dst]``/``[src, dst, size]``/``[src, dst,
size, tag]`` rows -- is accepted instead.  Responses echo ``id`` and
carry ``ok``; a compile response adds ``digest``, ``cache``
(``hit``/``miss``/``inflight``), ``degree``, ``seconds`` and the
serialized ``schedule`` (plus ``registers`` when requested).  Failures
reply ``ok: false`` with ``error`` and a typed ``error_type``
(:mod:`repro.service.errors`); shed requests additionally carry
``retry_after``.

Execution model
---------------
The event loop only parses requests, canonicalizes patterns and serves
cache hits; scheduler runs are fanned out to a worker pool.  Identical
in-flight requests (same digest) are **deduplicated**: followers await
the leader's future and are answered from the same artifact with
``cache: "inflight"`` -- N concurrent identical requests trigger
exactly one scheduler run.  Distinct requests batch naturally across
the pool (``workers`` processes, reusing the perf-counter shipping of
:mod:`repro.analysis.parallel`); ``workers=0`` runs compiles on a
single worker thread instead, which tests use to keep everything
monkeypatchable in one process.

Robustness (:class:`repro.service.policy.ServerPolicy`):

* **admission control** -- at most ``max_pending`` compile requests in
  the house; past the high-water mark requests are shed immediately
  with ``{"error": "overloaded", "retry_after": ...}``;
* **deadlines** -- each compile gets a wall-clock budget
  (``request_deadline``, tightened by a per-request ``deadline``
  field).  A blown budget answers ``error_type: "timeout"``; a hung
  *leader* additionally has its pool workers killed and the pool
  restarted so one wedged scheduler pass cannot poison the queue;
* **frame limits** -- request lines past ``max_frame_bytes`` get a
  typed ``protocol`` error and the connection is closed (the stream
  cannot be resynchronized mid-frame); mid-frame disconnects and
  invalid bytes are absorbed per-connection, never crashing the
  accept loop.

Shutdown drains: the listener closes *before* the shutdown verb is
acked (no connection can be accepted-then-dropped), in-flight compiles
finish and are answered, then the pool is torn down.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.analysis.parallel import _run_isolated, resolve_workers
from repro.core import perf
from repro.service.amend import AmendRegistry, parse_rows
from repro.service.cache import ArtifactCache
from repro.service.compile import CompileService, artifact_verifier, compile_digest
from repro.service.canonical import (
    canonicalize,
    permute_registers_dict,
    permute_schedule_dict,
)
from repro.service import compile as _compile_mod
from repro.service.errors import (
    Overloaded,
    ProtocolError,
    ServiceTimeout,
    error_fields,
)
from repro.service.policy import ServerPolicy, request_digest
from repro.service.specs import topology_from_spec
from repro.compiler.serialize import artifact_digest


def _worker_compile(task: dict[str, Any]) -> dict[str, Any]:
    """Top-level (picklable) worker: cold-compile a canonical pattern."""
    floor = float(task.get("simulated_cost") or 0.0)
    t0 = time.perf_counter() if floor else 0.0
    topology = topology_from_spec(task["topology_spec"])
    doc = _compile_mod.build_canonical_artifact(
        topology,
        [tuple(r) for r in task["requests"]],
        task["scheduler"],
        include_registers=task["include_registers"],
    )
    if floor:
        # Pad to the policy's service-time floor in the worker, where
        # the wait occupies a pool slot but not the event loop.
        remaining = floor - (time.perf_counter() - t0)
        if remaining > 0:
            time.sleep(remaining)
    return doc


def _parse_pattern(req: dict[str, Any]) -> list[tuple[int, int, int, int]]:
    """Request tuples from either a ``pattern`` spec or a ``pairs`` list."""
    if "pattern" in req:
        from repro.compiler.recognition import recognize

        return [(r.src, r.dst, r.size, r.tag) for r in recognize(req["pattern"])]
    if "pairs" in req:
        out = []
        for row in req["pairs"]:
            if not 2 <= len(row) <= 4:
                raise ProtocolError(f"bad pair row {row!r}")
            s, d, *rest = row
            size = int(rest[0]) if rest else 1
            tag = int(rest[1]) if len(rest) > 1 else 0
            out.append((int(s), int(d), size, tag))
        return out
    raise ProtocolError("compile request needs 'pattern' or 'pairs'")


class CompileServer:
    """The batch compile server.

    Parameters
    ----------
    cache:
        Shared :class:`ArtifactCache` (or a directory path for its disk
        tier; ``None`` = memory-only).
    workers:
        Worker processes for cold compiles (int or ``"auto"``);
        ``0`` uses one worker *thread* (single-process mode for tests).
    host, port:
        TCP endpoint (``port=0`` binds an ephemeral port, read it back
        from :attr:`address`).  Mutually exclusive with ``socket_path``.
    socket_path:
        Unix-domain socket endpoint (preferred for local tooling/CI).
    policy:
        Admission/deadline knobs (:class:`ServerPolicy`).
    """

    def __init__(
        self,
        cache: ArtifactCache | str | None = None,
        *,
        workers: int | str | None = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        scheduler: str = "combined",
        policy: ServerPolicy | None = None,
        amend_streams: int | None = None,
    ) -> None:
        if isinstance(cache, ArtifactCache):
            self.cache = cache
        else:
            self.cache = ArtifactCache(cache)
        self.service = CompileService(self.cache, scheduler=scheduler)
        self.amends = AmendRegistry(self.cache, max_streams=amend_streams)
        self.workers = 0 if workers == 0 else (resolve_workers(workers) or 1)
        self.host, self.port, self.socket_path = host, port, socket_path
        self.policy = policy if policy is not None else ServerPolicy()
        self._server: asyncio.AbstractServer | None = None
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending: set[asyncio.Future] = set()
        self._shutdown = asyncio.Event()
        self._shutdown_task: asyncio.Task | None = None
        self._started_at: float | None = None
        self._active = 0
        self.requests_served = 0
        self.inflight_coalesced = 0
        self.shed = 0
        self.deadline_cancels = 0
        self.worker_restarts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int] | str:
        """Bound endpoint: ``(host, port)`` or the unix socket path."""
        if self.socket_path is not None:
            return self.socket_path
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    def _make_executor(self) -> ProcessPoolExecutor | ThreadPoolExecutor:
        if self.workers == 0:
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-compile"
            )
        return ProcessPoolExecutor(max_workers=self.workers)

    async def start(self) -> "CompileServer":
        """Bind the endpoint and start accepting connections."""
        self._executor = self._make_executor()
        limit = self.policy.max_frame_bytes
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path, limit=limit
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port,
                limit=limit,
            )
        self._started_at = time.monotonic()
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or the ``shutdown`` verb).

        If the verb-triggered drain task failed, its exception is
        re-raised here instead of being swallowed.
        """
        assert self._server is not None, "call start() first"
        await self._shutdown.wait()
        if self._shutdown_task is not None:
            await self._shutdown_task

    async def shutdown(self) -> None:
        """Drain cleanly: stop accepting, finish in-flight work, stop.

        The shutdown event is set even when the drain fails part-way:
        :meth:`serve_forever` must wake up to *report* the failure, not
        hang on a latch nobody will ever set.
        """
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            if self._pending:
                await asyncio.gather(*self._pending, return_exceptions=True)
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
        finally:
            self._shutdown.set()

    async def kill(self) -> None:
        """Crash, don't drain: stop listening, cut every connection.

        The chaos-harness faithful version of a process loss -- clients
        and peers see resets and half-finished frames, never a goodbye.
        In-flight work is abandoned, the worker pool is killed.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conns):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._shutdown.set()

    async def _restart_workers(self) -> None:
        """Replace a pool with a hung worker (deadline enforcement).

        Process workers are killed outright; a hung worker *thread*
        cannot be killed, so its pool is abandoned (the thread finishes
        into the void) and a fresh one takes over either way.
        """
        old, self._executor = self._executor, self._make_executor()
        self.worker_restarts += 1
        if isinstance(old, ProcessPoolExecutor):
            for proc in list(getattr(old, "_processes", {}).values()):
                proc.kill()
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _read_frame(self, reader: asyncio.StreamReader) -> bytes | None:
        """One request line; ``None`` = connection is done (EOF / torn).

        Raises :class:`ProtocolError` for frames past the size limit --
        the stream cannot be resynchronized mid-frame, so the caller
        replies once and closes.
        """
        try:
            return await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            # EOF: clean between frames (empty partial) or mid-frame
            # (torn request -- nobody left to answer).  Either way the
            # connection is over and the accept loop is untouched.
            return exc.partial or None
        except asyncio.LimitOverrunError:
            raise ProtocolError(
                f"frame exceeds {self.policy.max_frame_bytes} bytes"
            ) from None

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Track live connections so kill() can cut them abruptly -- a
        # crashed server does not drain.
        self._conns.add(writer)
        try:
            while True:
                try:
                    line = await self._read_frame(reader)
                except ProtocolError as exc:
                    writer.write(json.dumps(
                        {"id": None, "ok": False, **error_fields(exc)}
                    ).encode() + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                if response.get("op") == "shutdown":
                    # Refuse new connections *before* acking, so no
                    # client can connect into a closing server and be
                    # dropped without a reply.
                    if self._server is not None:
                        self._server.close()
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown":
                    # Drain in the background so the client is not held
                    # hostage to slow stragglers; serve_forever() keeps
                    # the task reference and re-raises its failures.
                    self._shutdown_task = asyncio.ensure_future(self.shutdown())
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Loop teardown while this connection idled: close and exit
            # cleanly (a cancelled handler task trips asyncio's stream
            # callback into callback-exception noise).
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # wait_closed itself may be cancelled by loop teardown;
                # the transport is already closing, nothing to salvage.
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        req: Any = {}
        try:
            try:
                req = json.loads(line)
            except (ValueError, UnicodeDecodeError) as exc:
                raise ProtocolError(f"bad JSON frame: {exc}") from None
            if not isinstance(req, dict):
                raise ProtocolError("request must be a JSON object")
            op = req.get("op", "compile")
            self.requests_served += 1
            return await self._handle_op(op, req)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            req = req if isinstance(req, dict) else {}
            return {"id": req.get("id"), "ok": False, **error_fields(exc)}

    async def _handle_op(self, op: str, req: dict[str, Any]) -> dict[str, Any]:
        """Route one parsed request to its verb handler.

        Subclasses (the farm node) extend the verb set by overriding
        this and delegating unknown ops to ``super()``.
        """
        if op == "ping":
            return self._reply(req, op="ping")
        if op == "stats":
            return self._reply(req, op="stats", **self._stats())
        if op == "health":
            return self._reply(req, op="health", **self._health())
        if op == "ready":
            return self._reply(req, op="ready", ready=self._ready())
        if op == "shutdown":
            return self._reply(req, op="shutdown")
        if op == "compile":
            return await self._compile(req)
        if op == "amend":
            return await self._amend(req)
        raise ProtocolError(f"unknown op {op!r}")

    def _reply(self, req: dict[str, Any], **payload: Any) -> dict[str, Any]:
        out = {"id": req.get("id"), "ok": True, **payload}
        if "idem" in req:
            # Echo our *recomputation* over the received bytes, so a
            # client can detect a request garbled in flight (its own
            # digest won't match the echo).
            out["idem"] = request_digest(req)
        return out

    def _ready(self) -> bool:
        return (
            self._server is not None
            and self._server.is_serving()
            and not self._shutdown.is_set()
            and self._shutdown_task is None
            and self._active < self.policy.max_pending
        )

    def _health(self) -> dict[str, Any]:
        cache = self.cache.stats.as_dict()
        cache["entries"] = len(self.cache)
        return {
            "ready": self._ready(),
            "queue_depth": self._active,
            "inflight": len(self._inflight),
            "max_pending": self.policy.max_pending,
            "shed": self.shed,
            "deadline_cancels": self.deadline_cancels,
            "worker_restarts": self.worker_restarts,
            "workers": self.workers,
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None else 0.0
            ),
            "cache": cache,
        }

    def _stats(self) -> dict[str, Any]:
        return {
            **self.service.stats(),
            # Process-global perf counters: meaningful per node (one
            # process each in a farm), aggregated by the shard router.
            "counters": perf.snapshot(),
            "amend": self.amends.stats(),
            "inflight": len(self._inflight),
            "inflight_coalesced": self.inflight_coalesced,
            "requests": self.requests_served,
            "queue_depth": self._active,
            "shed": self.shed,
            "deadline_cancels": self.deadline_cancels,
            "worker_restarts": self.worker_restarts,
            "workers": self.workers,
        }

    # ------------------------------------------------------------------
    # the compile verb
    # ------------------------------------------------------------------
    def _request_deadline(self, req: dict[str, Any]) -> float | None:
        """Effective budget: the policy's, tightened by the request's."""
        budget = self.policy.request_deadline
        if "deadline" in req and req["deadline"] is not None:
            asked = float(req["deadline"])
            if asked <= 0:
                raise ProtocolError(f"bad deadline {req['deadline']!r}")
            budget = asked if budget is None else min(asked, budget)
        return budget

    async def _compile(self, req: dict[str, Any]) -> dict[str, Any]:
        if self._active >= self.policy.max_pending:
            self.shed += 1
            perf.COUNTERS.service_shed += 1
            raise Overloaded(
                "overloaded: admission queue full",
                retry_after=self.policy.retry_after,
            )
        self._active += 1
        try:
            return await self._compile_admitted(req)
        finally:
            self._active -= 1

    def _compile_key(self, req: dict[str, Any]):
        """Parse + canonicalize one compile request to its cache key.

        Returns ``(topology, scheduler, canonical, digest)``.  A farm
        node overrides this to reuse the canonicalization it already
        performed for the ownership check, so sharded serving does not
        pay the (group-sized) canonical scan twice per request.
        """
        if "topology" not in req:
            raise ProtocolError("compile request needs 'topology'")
        topology = topology_from_spec(req["topology"])
        scheduler = req.get("scheduler") or self.service.default_scheduler
        canonical = canonicalize(topology, _parse_pattern(req))
        digest = compile_digest(topology, canonical, scheduler, req.get("kernel"))
        return topology, scheduler, canonical, digest

    async def _compile_admitted(self, req: dict[str, Any]) -> dict[str, Any]:
        t0 = perf.perf_timer()
        deadline = self._request_deadline(req)
        include_registers = bool(req.get("registers", False))
        topology, scheduler, canonical, digest = self._compile_key(req)

        outcome = "hit"
        doc = self.cache.get(digest, verifier=artifact_verifier(topology))
        if doc is not None and include_registers and "registers" not in doc:
            doc = None
        if doc is None:
            remaining = (
                None if deadline is None else deadline - (perf.perf_timer() - t0)
            )
            leader = self._inflight.get(digest)
            if leader is not None:
                # Identical request already compiling: await its result.
                self.inflight_coalesced += 1
                try:
                    doc = await asyncio.wait_for(
                        asyncio.shield(leader), timeout=remaining
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    self.deadline_cancels += 1
                    perf.COUNTERS.service_deadline_cancels += 1
                    raise ServiceTimeout(
                        f"deadline of {deadline:.3f}s expired awaiting "
                        "an in-flight compile"
                    ) from None
                outcome = "inflight"
            else:
                outcome = "miss"
                doc = await self._lead_compile(
                    digest, req["topology"], canonical.requests, scheduler,
                    include_registers, remaining,
                )

        schedule_doc = doc["schedule"]
        registers_doc = doc.get("registers") if include_registers else None
        if not canonical.is_identity:
            schedule_doc = permute_schedule_dict(schedule_doc, canonical.sigma_inv)
            if registers_doc is not None:
                registers_doc = permute_registers_dict(
                    topology, registers_doc, canonical.sigma_inv
                )
        seconds = perf.perf_timer() - t0
        bucket = self.service.latency["hit" if outcome != "miss" else "miss"]
        bucket["count"] += 1
        bucket["seconds"] += seconds
        out = self._reply(
            req,
            op="compile",
            digest=digest,
            cache=outcome,
            degree=int(schedule_doc["degree"]),
            seconds=seconds,
            schedule=schedule_doc,
        )
        if registers_doc is not None:
            out["registers"] = registers_doc
        payload = {"schedule": schedule_doc}
        if registers_doc is not None:
            payload["registers"] = registers_doc
        # End-to-end payload integrity (chaos-grade links): the client
        # re-hashes what it received and rejects a garbled artifact.
        out["payload_sha256"] = artifact_digest(payload)
        return out

    # ------------------------------------------------------------------
    # the amend verb (epoch-numbered incremental compilation)
    # ------------------------------------------------------------------
    async def _amend(self, req: dict[str, Any]) -> dict[str, Any]:
        if self._active >= self.policy.max_pending:
            self.shed += 1
            perf.COUNTERS.service_shed += 1
            raise Overloaded(
                "overloaded: admission queue full",
                retry_after=self.policy.retry_after,
            )
        self._active += 1
        try:
            return self._amend_admitted(req)
        finally:
            self._active -= 1

    def _amend_admitted(self, req: dict[str, Any]) -> dict[str, Any]:
        """Open an amend stream (epoch 0) or apply one epoch update.

        Amend updates are O(update size) bitmask work on the stream's
        live :class:`~repro.core.delta.DeltaScheduler` (plus O(pattern)
        serialization of the reply), so they run on the event loop --
        no worker-pool round trip, no in-flight dedup (``amend`` is
        deliberately *not* idempotent: replaying an update would apply
        it twice, which is exactly what the epoch check refuses).
        """
        t0 = perf.perf_timer()
        if "root" in req:
            stream = self.amends.get(str(req["root"]))
            if "topology" in req:
                topology = topology_from_spec(req["topology"])
                if topology.signature != stream.topology.signature:
                    raise ProtocolError(
                        f"amend root was opened on {stream.topology.signature!r}, "
                        f"request names {topology.signature!r}"
                    )
            epoch = req.get("epoch")
            if isinstance(epoch, bool) or not isinstance(epoch, int):
                raise ProtocolError("amend request needs an integer 'epoch'")
            add = parse_rows(req.get("add", []), what="add")
            remove = parse_rows(req.get("remove", []), what="remove")
            if not add and not remove:
                raise ProtocolError("amend request needs 'add' or 'remove' rows")
            stream = self.amends.amend(
                str(req["root"]), epoch=epoch, add=add, remove=remove
            )
            cache = "amend"
        else:
            if "topology" not in req:
                raise ProtocolError("amend request needs 'topology'")
            topology = topology_from_spec(req["topology"])
            tuples = _parse_pattern(req)
            scheduler = req.get("scheduler") or self.service.default_scheduler
            stream, created = self.amends.open(
                topology, tuples, scheduler=scheduler, kernel=req.get("kernel"),
            )
            cache = "open" if created else "resume"
        schedule_doc = stream.doc["schedule"]
        out = self._reply(
            req,
            op="amend",
            cache=cache,
            seconds=perf.perf_timer() - t0,
            schedule=schedule_doc,
            lineage=stream.doc["lineage"],
            **stream.state(),
        )
        out["payload_sha256"] = artifact_digest({"schedule": schedule_doc})
        return out

    async def _lead_compile(
        self,
        digest: str,
        topology_spec: dict[str, Any],
        canonical_requests: list[tuple[int, int, int, int]],
        scheduler: str,
        include_registers: bool,
        timeout: float | None,
    ) -> dict[str, Any]:
        """Run one cold compile on the pool, publishing it for followers.

        A compile that outlives ``timeout`` is declared hung: the pool
        is restarted (killing process workers) and every waiter gets a
        :class:`ServiceTimeout`.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[digest] = future
        self._pending.add(future)
        task = {
            "topology_spec": topology_spec,
            "requests": [list(r) for r in canonical_requests],
            "scheduler": scheduler,
            "include_registers": include_registers,
            "simulated_cost": self.policy.simulated_cost,
        }
        try:
            doc, counters = await asyncio.wait_for(
                loop.run_in_executor(
                    self._executor, _run_isolated, (_worker_compile, task)
                ),
                timeout=timeout,
            )
            if self.workers:  # thread mode shares the global counters already
                perf.COUNTERS.merge(counters)
            self.cache.put(digest, doc)
            future.set_result(doc)
            return doc
        except (asyncio.TimeoutError, TimeoutError):
            self.deadline_cancels += 1
            perf.COUNTERS.service_deadline_cancels += 1
            await self._restart_workers()
            exc = ServiceTimeout(
                f"compile exceeded its {timeout:.3f}s server deadline; "
                "worker pool restarted"
            )
            future.set_exception(exc)
            raise exc from None
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            self._inflight.pop(digest, None)
            self._pending.discard(future)
            # A failed leader must not crash followers with "exception
            # was never retrieved" noise if none are waiting.
            if future.done() and future.exception() is not None:
                future.exception()
