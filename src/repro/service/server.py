"""Asyncio JSON-lines compile server.

Protocol: one JSON object per line, one response line per request.

Verbs::

    {"op": "ping"}
    {"op": "compile", "id": 7, "topology": {"kind": "torus", "width": 8},
     "pattern": {"pattern": "all-to-all", "nodes": 64},
     "scheduler": "combined", "registers": false}
    {"op": "stats"}
    {"op": "shutdown"}

``pattern`` is a declarative spec (:mod:`repro.compiler.recognition`);
``pairs`` -- a list of ``[src, dst]``/``[src, dst, size]``/``[src, dst,
size, tag]`` rows -- is accepted instead.  Responses echo ``id`` and
carry ``ok``; a compile response adds ``digest``, ``cache``
(``hit``/``miss``/``inflight``), ``degree``, ``seconds`` and the
serialized ``schedule`` (plus ``registers`` when requested).

Execution model
---------------
The event loop only parses requests, canonicalizes patterns and serves
cache hits; scheduler runs are fanned out to a worker pool.  Identical
in-flight requests (same digest) are **deduplicated**: followers await
the leader's future and are answered from the same artifact with
``cache: "inflight"`` -- N concurrent identical requests trigger
exactly one scheduler run.  Distinct requests batch naturally across
the pool (``workers`` processes, reusing the perf-counter shipping of
:mod:`repro.analysis.parallel`); ``workers=0`` runs compiles on a
single worker thread instead, which tests use to keep everything
monkeypatchable in one process.

Shutdown drains: the listener closes first, in-flight compiles finish
and are answered, then the pool is torn down.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.analysis.parallel import _run_isolated, resolve_workers
from repro.core import perf
from repro.service.cache import ArtifactCache
from repro.service.client import MAX_LINE_BYTES
from repro.service.compile import CompileService, compile_digest
from repro.service.canonical import (
    canonicalize,
    permute_registers_dict,
    permute_schedule_dict,
)
from repro.service import compile as _compile_mod
from repro.service.specs import topology_from_spec


class ProtocolError(ValueError):
    """A request line the server cannot serve."""


def _worker_compile(task: dict[str, Any]) -> dict[str, Any]:
    """Top-level (picklable) worker: cold-compile a canonical pattern."""
    topology = topology_from_spec(task["topology_spec"])
    return _compile_mod.build_canonical_artifact(
        topology,
        [tuple(r) for r in task["requests"]],
        task["scheduler"],
        include_registers=task["include_registers"],
    )


def _parse_pattern(req: dict[str, Any]) -> list[tuple[int, int, int, int]]:
    """Request tuples from either a ``pattern`` spec or a ``pairs`` list."""
    if "pattern" in req:
        from repro.compiler.recognition import recognize

        return [(r.src, r.dst, r.size, r.tag) for r in recognize(req["pattern"])]
    if "pairs" in req:
        out = []
        for row in req["pairs"]:
            if not 2 <= len(row) <= 4:
                raise ProtocolError(f"bad pair row {row!r}")
            s, d, *rest = row
            size = int(rest[0]) if rest else 1
            tag = int(rest[1]) if len(rest) > 1 else 0
            out.append((int(s), int(d), size, tag))
        return out
    raise ProtocolError("compile request needs 'pattern' or 'pairs'")


class CompileServer:
    """The batch compile server.

    Parameters
    ----------
    cache:
        Shared :class:`ArtifactCache` (or a directory path for its disk
        tier; ``None`` = memory-only).
    workers:
        Worker processes for cold compiles (int or ``"auto"``);
        ``0`` uses one worker *thread* (single-process mode for tests).
    host, port:
        TCP endpoint (``port=0`` binds an ephemeral port, read it back
        from :attr:`address`).  Mutually exclusive with ``socket_path``.
    socket_path:
        Unix-domain socket endpoint (preferred for local tooling/CI).
    """

    def __init__(
        self,
        cache: ArtifactCache | str | None = None,
        *,
        workers: int | str | None = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        scheduler: str = "combined",
    ) -> None:
        if isinstance(cache, ArtifactCache):
            self.cache = cache
        else:
            self.cache = ArtifactCache(cache)
        self.service = CompileService(self.cache, scheduler=scheduler)
        self.workers = 0 if workers == 0 else (resolve_workers(workers) or 1)
        self.host, self.port, self.socket_path = host, port, socket_path
        self._server: asyncio.AbstractServer | None = None
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._pending: set[asyncio.Future] = set()
        self._shutdown = asyncio.Event()
        self.requests_served = 0
        self.inflight_coalesced = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int] | str:
        """Bound endpoint: ``(host, port)`` or the unix socket path."""
        if self.socket_path is not None:
            return self.socket_path
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "CompileServer":
        """Bind the endpoint and start accepting connections."""
        if self.workers == 0:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-compile"
            )
        else:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path, limit=MAX_LINE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port,
                limit=MAX_LINE_BYTES,
            )
        return self

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or the ``shutdown`` verb)."""
        assert self._server is not None, "call start() first"
        await self._shutdown.wait()

    async def shutdown(self) -> None:
        """Drain cleanly: stop accepting, finish in-flight work, stop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pending:
            await asyncio.gather(*self._pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._shutdown.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown":
                    # Answer first, then drain in the background so the
                    # client is not held hostage to slow stragglers.
                    asyncio.ensure_future(self.shutdown())
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ProtocolError("request must be a JSON object")
            op = req.get("op", "compile")
            self.requests_served += 1
            if op == "ping":
                return self._reply(req, op="ping")
            if op == "stats":
                return self._reply(req, op="stats", **self._stats())
            if op == "shutdown":
                return self._reply(req, op="shutdown")
            if op == "compile":
                return await self._compile(req)
            raise ProtocolError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            req = req if isinstance(locals().get("req"), dict) else {}
            return {
                "id": req.get("id"),
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }

    def _reply(self, req: dict[str, Any], **payload: Any) -> dict[str, Any]:
        return {"id": req.get("id"), "ok": True, **payload}

    def _stats(self) -> dict[str, Any]:
        return {
            **self.service.stats(),
            "inflight": len(self._inflight),
            "inflight_coalesced": self.inflight_coalesced,
            "requests": self.requests_served,
            "workers": self.workers,
        }

    # ------------------------------------------------------------------
    # the compile verb
    # ------------------------------------------------------------------
    async def _compile(self, req: dict[str, Any]) -> dict[str, Any]:
        t0 = perf.perf_timer()
        if "topology" not in req:
            raise ProtocolError("compile request needs 'topology'")
        topology = topology_from_spec(req["topology"])
        scheduler = req.get("scheduler") or self.service.default_scheduler
        include_registers = bool(req.get("registers", False))
        tuples = _parse_pattern(req)
        canonical = canonicalize(topology, tuples)
        digest = compile_digest(topology, canonical, scheduler, req.get("kernel"))

        outcome = "hit"
        doc = self.cache.get(digest)
        if doc is not None and include_registers and "registers" not in doc:
            doc = None
        if doc is None:
            leader = self._inflight.get(digest)
            if leader is not None:
                # Identical request already compiling: await its result.
                self.inflight_coalesced += 1
                doc = await asyncio.shield(leader)
                outcome = "inflight"
            else:
                outcome = "miss"
                doc = await self._lead_compile(
                    digest, req["topology"], canonical.requests, scheduler,
                    include_registers,
                )

        schedule_doc = doc["schedule"]
        registers_doc = doc.get("registers") if include_registers else None
        if not canonical.is_identity:
            schedule_doc = permute_schedule_dict(schedule_doc, canonical.sigma_inv)
            if registers_doc is not None:
                registers_doc = permute_registers_dict(
                    topology, registers_doc, canonical.sigma_inv
                )
        seconds = perf.perf_timer() - t0
        bucket = self.service.latency["hit" if outcome != "miss" else "miss"]
        bucket["count"] += 1
        bucket["seconds"] += seconds
        out = self._reply(
            req,
            op="compile",
            digest=digest,
            cache=outcome,
            degree=int(schedule_doc["degree"]),
            seconds=seconds,
            schedule=schedule_doc,
        )
        if registers_doc is not None:
            out["registers"] = registers_doc
        return out

    async def _lead_compile(
        self,
        digest: str,
        topology_spec: dict[str, Any],
        canonical_requests: list[tuple[int, int, int, int]],
        scheduler: str,
        include_registers: bool,
    ) -> dict[str, Any]:
        """Run one cold compile on the pool, publishing it for followers."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[digest] = future
        self._pending.add(future)
        task = {
            "topology_spec": topology_spec,
            "requests": [list(r) for r in canonical_requests],
            "scheduler": scheduler,
            "include_registers": include_registers,
        }
        try:
            doc, counters = await loop.run_in_executor(
                self._executor, _run_isolated, (_worker_compile, task)
            )
            if self.workers:  # thread mode shares the global counters already
                perf.COUNTERS.merge(counters)
            self.cache.put(digest, doc)
            future.set_result(doc)
            return doc
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            self._inflight.pop(digest, None)
            self._pending.discard(future)
            # A failed leader must not crash followers with "exception
            # was never retrieved" noise if none are waiting.
            if future.done() and future.exception() is not None:
                future.exception()
