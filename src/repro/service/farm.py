"""Distributed compile farm: digest-sharded, replicated serving.

One compile server is a throughput ceiling; the farm is N of them
behind a shard router, partitioned by the *canonical pattern digest*
-- the same content address the cache already keys on -- so every
request has exactly one home set of nodes and the farm's aggregate
cache is the union of disjoint shards instead of N copies of one.

Pieces
------
:class:`HashRing`
    Consistent hashing with virtual nodes: each node projects
    ``vnodes`` sha256 points onto a 64-bit ring and a digest's owners
    are the next ``replication`` *distinct* nodes clockwise from its
    own point.  Adding or removing one node moves only the keys in its
    arcs (~1/N of the space), which is what makes failover a rebalance
    instead of a flush.

:class:`ShardMap`
    Versioned membership document: node endpoints + replication factor
    + the ring derived from them.  Higher version wins everywhere; the
    router is the membership authority and bumps the version when it
    demotes a dead node.

:class:`FarmNodeServer`
    A :class:`~repro.service.server.CompileServer` that knows its shard:
    ``compile``/``amend`` requests it does not own are refused with a
    typed :class:`~repro.service.errors.WrongShard` carrying the node's
    current map, cold compiles are pushed to the other owners
    (``store``), and a local miss is first repaired from a peer replica
    (``fetch`` + hash check + semantic re-verification) before falling
    back to a recompile.  New verbs: ``shardmap``, ``reshard``,
    ``fetch``, ``store``.

:class:`ShardRouter`
    Thin request router: computes the route digest, forwards the **raw
    request bytes** to the owning node and relays the **raw reply
    bytes** back, so the client's end-to-end integrity checks (``idem``
    echo, ``payload_sha256``) survive the extra hop byte-for-byte.  A
    node that dies mid-request is demoted -- removed from the map,
    version bumped, survivors reshard -- and the request retries on the
    new owner.  Its ``stats``/``health`` verbs aggregate every node
    (per-node breakdown plus numeric farm-wide totals).

:class:`AsyncFarmClient`
    Carries a shard map so warm requests go straight to an owning node,
    skipping the router hop; a ``WrongShard`` redirect refreshes the
    map in-line, and a dead node falls back to the router (which owns
    failover) followed by a map refresh.

:class:`Farm`
    In-process supervisor for tests, chaos campaigns and benchmarks:
    N nodes (each with its *own* cache tier and its own worker pool,
    so a 4-node farm really cold-compiles 4 patterns in parallel) plus
    one router, with abrupt ``kill_node`` for node-level chaos.

Failure semantics
-----------------
Compiles are deterministic functions of their digest, so *losing every
replica of an artifact is not a correctness event* -- the next request
recompiles byte-identical content; replication only buys locality and
latency.  Three self-healing loops keep the farm at full replication
and membership without waiting for a request to trip over a failure:

* the router's **health-probe loop** demotes a node that fails
  ``suspect_after`` consecutive probes and *rejoins* a departed node
  that answers alive-and-ready again (map bump + targeted ``repair``);
* each node's **anti-entropy sweep** pulls peer digest inventories and
  adopts -- hash + semantically re-verified, exactly like read repair
  -- replicas of owned digests it is missing, so a lost
  fire-and-forget push only leaves R unmet until the next sweep;
* every **amend epoch is replicated with resume metadata** to the
  root's co-owners: when a stream's primary dies, the new owner
  rebuilds the live engine from the latest replicated epoch artifact
  (:meth:`~repro.service.amend.AmendStream.resume`) and continues the
  digest chain; a racing stale client gets a typed ``EpochConflict``
  carrying the current epoch *and digest*, never a fork.

Nothing is ever silently wrong: every farm failure mode is a typed
error or a byte-identical reply.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import random
import time
from pathlib import Path
from typing import Any, Callable

from repro.compiler.serialize import artifact_digest
from repro.service.amend import AmendStream, amend_root_digest
from repro.service.cache import ArtifactCache
from repro.service.canonical import canonicalize
from repro.service.client import (
    AsyncCompileClient,
    _amend_request,
    _compile_request,
)
from repro.service.compile import artifact_verifier, compile_digest
from repro.service.errors import (
    ProtocolError,
    ServerError,
    ServiceError,
    ServiceTimeout,
    StaleEpoch,
    TransportError,
    WrongShard,
    error_fields,
    reply_error,
)
from repro.service.policy import MAX_LINE_BYTES, ServerPolicy, request_digest
from repro.service.server import CompileServer, _parse_pattern
from repro.service.specs import (
    TopologySpecError,
    topology_from_spec,
    topology_to_spec,
)

__all__ = [
    "HashRing",
    "ShardMap",
    "FarmNodeServer",
    "ShardRouter",
    "AsyncFarmClient",
    "Farm",
    "route_digest",
    "sum_stats",
]

#: Virtual nodes per physical node on the ring.  64 keeps the largest
#: arc within a few percent of fair share at farm sizes that fit one
#: router, while a membership change still only re-hashes 64 points.
DEFAULT_VNODES = 64


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------

class HashRing:
    """Consistent-hash ring over node names (sha256, 64-bit points)."""

    def __init__(self, nodes: Any, *, vnodes: int = DEFAULT_VNODES) -> None:
        self.vnodes = int(vnodes)
        self._nodes = sorted(set(nodes))
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            for v in range(self.vnodes):
                h = hashlib.sha256(f"{node}#{v}".encode("utf-8")).digest()
                points.append((int.from_bytes(h[:8], "big"), node))
        points.sort()
        self._points = points
        self._keys = [p[0] for p in points]

    def __len__(self) -> int:
        return len(self._nodes)

    def owners(self, digest: str, count: int) -> list[str]:
        """The next ``count`` distinct nodes clockwise from ``digest``.

        ``owners()[0]`` is the *primary*; replicas follow in ring
        order, so every map agrees on the ordering, not just the set.
        """
        if not self._points:
            return []
        count = min(int(count), len(self._nodes))
        point = int.from_bytes(
            hashlib.sha256(digest.encode("utf-8")).digest()[:8], "big"
        )
        start = bisect.bisect_right(self._keys, point) % len(self._points)
        out: list[str] = []
        for k in range(len(self._points)):
            node = self._points[(start + k) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) == count:
                    break
        return out


class ShardMap:
    """Versioned farm membership: endpoints, replication, the ring.

    Immutable in practice -- membership changes produce a *new* map
    with a higher version (:meth:`without`), and every component adopts
    whichever map it has seen with the dominant **fencing token**
    ``(epoch, version)``.  The epoch is the *leader incarnation*: it
    only moves when a standby router promotes itself, and it dominates
    the version lexicographically, so a deposed leader that keeps
    bumping versions under its old epoch can never win a map race
    against the promoted standby's successor maps.
    """

    def __init__(
        self,
        nodes: dict[str, dict[str, Any]],
        *,
        replication: int = 2,
        version: int = 1,
        epoch: int = 1,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.nodes = {str(k): dict(v) for k, v in nodes.items()}
        self.replication = int(replication)
        self.version = int(version)
        self.epoch = int(epoch)
        self.vnodes = int(vnodes)
        self._ring = HashRing(self.nodes, vnodes=self.vnodes)

    @property
    def token(self) -> tuple[int, int]:
        """The fencing token: epoch dominates version."""
        return (self.epoch, self.version)

    def dominates(self, other: "ShardMap") -> bool:
        """True when this map wins the adoption race against ``other``."""
        return self.token > other.token

    def owners(self, digest: str) -> list[str]:
        return self._ring.owners(digest, self.replication)

    def endpoint(self, name: str) -> tuple[str, int]:
        ep = self.nodes[name]
        return str(ep["host"]), int(ep["port"])

    def without(self, name: str) -> "ShardMap":
        """A successor map (version + 1, same epoch) with ``name`` removed."""
        nodes = {k: v for k, v in self.nodes.items() if k != name}
        return ShardMap(
            nodes, replication=self.replication,
            version=self.version + 1, epoch=self.epoch, vnodes=self.vnodes,
        )

    def with_node(self, name: str, endpoint: dict[str, Any]) -> "ShardMap":
        """A successor map (version + 1, same epoch) with ``name`` admitted."""
        nodes = {k: dict(v) for k, v in self.nodes.items()}
        nodes[str(name)] = {
            "host": str(endpoint["host"]), "port": int(endpoint["port"]),
        }
        return ShardMap(
            nodes, replication=self.replication,
            version=self.version + 1, epoch=self.epoch, vnodes=self.vnodes,
        )

    def with_epoch(self, epoch: int) -> "ShardMap":
        """A successor map under a new leader incarnation.

        The version still bumps so the token strictly increases even
        against maps the old leader published after our last sync.
        """
        if int(epoch) <= self.epoch:
            raise ValueError(
                f"new epoch {epoch} must exceed current {self.epoch}"
            )
        return ShardMap(
            {k: dict(v) for k, v in self.nodes.items()},
            replication=self.replication,
            version=self.version + 1, epoch=int(epoch), vnodes=self.vnodes,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "epoch": self.epoch,
            "replication": self.replication,
            "vnodes": self.vnodes,
            "nodes": {k: dict(v) for k, v in self.nodes.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardMap":
        if not isinstance(data, dict) or not isinstance(data.get("nodes"), dict):
            raise ProtocolError(f"malformed shard map: {data!r}")
        return cls(
            data["nodes"],
            replication=int(data.get("replication", 2)),
            version=int(data.get("version", 1)),
            # Pre-fencing maps carry no epoch: they belong to the first
            # leader incarnation by definition.
            epoch=int(data.get("epoch", 1)),
            vnodes=int(data.get("vnodes", DEFAULT_VNODES)),
        )


def route_digest(
    req: dict[str, Any], *, default_scheduler: str = "combined"
) -> str | None:
    """The digest a request shards on (``None`` = not shardable).

    Mirrors exactly what the serving node will key its cache / amend
    registry with -- a ``compile`` routes on its canonical compile
    digest, an amend *open* on its root digest, an amend *update* on
    the root it names -- so router, client and node always agree on
    ownership without trusting anything but the request bytes.
    """
    op = req.get("op", "compile")
    if op == "compile":
        if "topology" not in req:
            raise ProtocolError("compile request needs 'topology'")
        topology = topology_from_spec(req["topology"])
        canonical = canonicalize(topology, _parse_pattern(req))
        scheduler = req.get("scheduler") or default_scheduler
        return compile_digest(topology, canonical, scheduler, req.get("kernel"))
    if op == "amend":
        if "root" in req:
            return str(req["root"])
        if "topology" not in req:
            raise ProtocolError("amend request needs 'topology'")
        topology = topology_from_spec(req["topology"])
        scheduler = req.get("scheduler") or default_scheduler
        return amend_root_digest(
            topology, _parse_pattern(req), scheduler, req.get("kernel")
        )
    return None


def sum_stats(docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Farm-wide totals: recursive sum of every numeric leaf.

    Strings, bools and ``None`` are identity/flag fields, not measures,
    and are skipped -- summing ``workers`` across nodes is meaningful,
    summing ``name`` is not.
    """
    out: dict[str, Any] = {}
    for doc in docs:
        _sum_into(out, doc)
    return out


def _sum_into(out: dict[str, Any], doc: dict[str, Any]) -> None:
    for key, value in doc.items():
        if isinstance(value, bool) or value is None or isinstance(value, str):
            continue
        if isinstance(value, dict):
            sub = out.setdefault(key, {})
            if isinstance(sub, dict):
                _sum_into(sub, value)
        elif isinstance(value, (int, float)):
            prev = out.get(key, 0)
            if isinstance(prev, (int, float)) and not isinstance(prev, bool):
                out[key] = prev + value


# ----------------------------------------------------------------------
# the farm node
# ----------------------------------------------------------------------

class FarmNodeServer(CompileServer):
    """A compile server that owns one shard of the digest space.

    Extends the verb set with ``shardmap`` (read the node's map),
    ``reshard`` (adopt a newer map), ``fetch`` (read one artifact for a
    peer), ``store`` (accept one replica, hash + semantically
    verified), ``digests`` (advertise the local inventory for
    anti-entropy) and ``repair`` (force one anti-entropy sweep).  The
    inherited ``compile``/``amend`` verbs gain an ownership gate: a
    request whose route digest this node does not own is refused with
    :class:`WrongShard` so a stale client or router can never populate
    the wrong shard.

    Self-healing: with ``anti_entropy_interval`` set the node
    periodically pulls peer inventories and adopts replicas of the
    digests *it* owns that it is missing -- closing the window a lost
    fire-and-forget push leaves open.  Every epoch of an amend stream
    is replicated to the root's other owners with resume metadata, so
    a new primary can take the stream over after its old primary died
    (:meth:`_maybe_takeover`).

    Chaos hooks (injected by the harness, inert by default):
    ``peer_filter(src, dst)`` false-returns simulate one-way network
    partitions on every peer request; ``drop_replica_push_rate``
    silently loses that fraction of replica pushes.
    """

    def __init__(
        self, *args: Any, name: str, shard_map: ShardMap,
        peer_timeout: float = 10.0,
        anti_entropy_interval: float | None = None,
        push_retry_delay: float = 0.05,
        peer_filter: Callable[[str, str], bool] | None = None,
        drop_replica_push_rate: float = 0.0,
        chaos_seed: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.name = str(name)
        self.shard_map = shard_map
        self.peer_timeout = float(peer_timeout)
        self.anti_entropy_interval = (
            float(anti_entropy_interval) if anti_entropy_interval else None
        )
        self.push_retry_delay = float(push_retry_delay)
        self.peer_filter = peer_filter
        self.drop_replica_push_rate = float(drop_replica_push_rate)
        self._rng = random.Random(chaos_seed)
        self._repl_tasks: set[asyncio.Task] = set()
        self._ae_task: asyncio.Task | None = None
        self._sweep_lock = asyncio.Lock()
        #: router lease this node granted: {"router", "epoch", "expires"}.
        self._lease: dict[str, Any] | None = None
        #: highest lease epoch ever granted -- the node-side fence: a
        #: claim below this floor is refused no matter what.
        self._lease_epoch_floor = 0
        #: graceful-drain state machine: ``draining`` refuses new amends
        #: (they wait on ``_drain_done`` so the redirect lands *after*
        #: the streams were handed off), ``_drain_map`` is the successor
        #: map the redirect carries.
        self.draining = False
        self._drain_map: ShardMap | None = None
        self._drain_done = asyncio.Event()
        self._amends_inflight = 0
        self.wrong_shard = 0
        self.stale_epoch_rejections = 0
        self.lease_grants = 0
        self.lease_refusals = 0
        self.drain_handoffs = 0
        self.drain_adoptions = 0
        self.drain_repushes = 0
        self.drain_repush_retries = 0
        self.replicas_pushed = 0
        self.replicas_received = 0
        self.replica_push_failures = 0
        self.replica_push_retries = 0
        self.replica_pushes_dropped = 0
        self.replicas_repaired = 0
        self.anti_entropy_rounds = 0
        self.amend_takeovers = 0
        self.read_repairs = 0
        self.read_repair_failures = 0
        #: digest -> topology spec it was compiled for.  Artifact
        #: documents carry only the topology *signature* (a string,
        #: not invertible), so semantic re-verification of a replica
        #: needs the spec carried out-of-band; this index feeds the
        #: ``digests`` inventory and the ``store`` push payloads.
        self._specs: dict[str, dict[str, Any]] = {}
        #: amend root -> latest replicated head metadata (digest,
        #: epoch, scheduler, kernel, topology_spec) -- what a takeover
        #: resumes from.
        self._amend_heads: dict[str, dict[str, Any]] = {}
        #: one-shot reuse of the ownership check's canonicalization by
        #: the inherited compile path (keyed by request identity).
        self._key_memo: dict[int, Any] = {}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "FarmNodeServer":
        await super().start()
        if self.anti_entropy_interval:
            self._ae_task = asyncio.ensure_future(self._anti_entropy_loop())
        return self

    async def _cancel_background(self, *, drain: bool) -> None:
        if self._ae_task is not None:
            self._ae_task.cancel()
            await asyncio.gather(self._ae_task, return_exceptions=True)
            self._ae_task = None
        if not drain:
            for task in list(self._repl_tasks):
                task.cancel()
        if self._repl_tasks:
            await asyncio.gather(*self._repl_tasks, return_exceptions=True)
            self._repl_tasks.clear()

    async def kill(self) -> None:
        await self._cancel_background(drain=False)
        await super().kill()

    async def shutdown(self) -> None:
        await self._cancel_background(drain=True)
        await super().shutdown()

    # -- verbs ----------------------------------------------------------
    async def _handle_op(self, op: str, req: dict[str, Any]) -> dict[str, Any]:
        if op == "shardmap":
            return self._reply(
                req, op="shardmap", shard_map=self.shard_map.as_dict()
            )
        if op == "reshard":
            return self._reshard(req)
        if op == "fetch":
            return self._fetch(req)
        if op == "store":
            return self._store_replica(req)
        if op == "digests":
            return self._digests(req)
        if op == "repair":
            return self._reply(
                req, op="repair", **await self._anti_entropy_sweep()
            )
        if op == "lease":
            return self._lease_verb(req)
        if op == "drain":
            return await self._drain(req)
        if op in ("compile", "amend"):
            if op == "compile":
                key = super()._compile_key(req)
                digest = key[3]
            else:
                key = None
                digest = route_digest(
                    req, default_scheduler=self.service.default_scheduler
                )
            if op == "amend" and self.draining:
                # Park the caller until the proactive handoff has
                # landed, *then* redirect: the retry must hit a stream
                # the new primary has already adopted, not a gap the
                # pull-based takeover would have to fill.
                await self._drain_done.wait()
                drain_map = self._drain_map or self.shard_map
                raise WrongShard(
                    f"node {self.name!r} is draining; its amend streams "
                    "have been handed off",
                    shard_map=drain_map.as_dict(),
                    owners=drain_map.owners(digest),
                )
            owners = self.shard_map.owners(digest)
            if self.name not in owners:
                self.wrong_shard += 1
                raise WrongShard(
                    f"digest {digest[:12]}... is owned by {owners}, "
                    f"not {self.name!r}",
                    shard_map=self.shard_map.as_dict(), owners=owners,
                )
            if op == "compile":
                await self._read_repair(req, digest, owners)
                self._key_memo[id(req)] = key
                try:
                    reply = await super()._handle_op(op, req)
                finally:
                    self._key_memo.pop(id(req), None)
                if reply.get("ok"):
                    spec = req.get("topology")
                    if isinstance(spec, dict):
                        self._specs.setdefault(str(reply["digest"]), dict(spec))
                    if reply.get("cache") == "miss":
                        self._spawn_replication(str(reply["digest"]), owners)
                return reply
            # amend: this node is an owner.  If the stream's previous
            # primary died, reconstruct it from the replicated epoch
            # artifact *before* the registry is consulted.
            if "root" in req and self._maybe_takeover(str(req["root"])):
                self.amend_takeovers += 1
            self._amends_inflight += 1
            try:
                reply = await super()._handle_op(op, req)
            finally:
                self._amends_inflight -= 1
            if reply.get("ok"):
                self._replicate_amend_epoch(reply)
            return reply
        return await super()._handle_op(op, req)

    def _compile_key(self, req: dict[str, Any]):
        memo = self._key_memo.pop(id(req), None)
        if memo is not None:
            return memo
        return super()._compile_key(req)

    def _reshard(self, req: dict[str, Any]) -> dict[str, Any]:
        new = ShardMap.from_dict(req.get("shard_map"))
        if new.epoch < self.shard_map.epoch:
            # A deposed leader's late push: no matter how many version
            # bumps it accumulated, a lower epoch is fenced out with a
            # *typed* refusal so the sender learns it was deposed.
            self.stale_epoch_rejections += 1
            raise StaleEpoch(
                f"map epoch {new.epoch} < {self.shard_map.epoch}: "
                f"sender was deposed",
                current_epoch=self.shard_map.epoch,
                current_version=self.shard_map.version,
            )
        adopted = new.dominates(self.shard_map)
        if adopted:
            self.shard_map = new
        return self._reply(
            req, op="reshard", adopted=adopted,
            version=self.shard_map.version,
            epoch=self.shard_map.epoch,
        )

    # -- router leases (leadership arbitration) -------------------------
    def _lease_verb(self, req: dict[str, Any]) -> dict[str, Any]:
        """Grant/renew/refuse one router's leadership lease.

        The nodes *are* the quorum: a router that collects grants from
        a majority of live nodes is the leader.  Per-node rules:

        * a live lease is never preempted -- only its own holder can
          renew it (same epoch) or re-claim under a higher epoch;
        * a fresh claim (no lease, lapsed lease, or the holder itself)
          must beat the node's epoch floor -- the highest epoch this
          node has ever granted -- so a deposed leader can never win a
          grant back with its old epoch.
        """
        router = str(req.get("router") or "")
        epoch = int(req.get("epoch") or 0)
        ttl = float(req.get("ttl") or 0.0)
        if not router or epoch < 1 or ttl <= 0:
            raise ProtocolError(
                "lease request needs 'router', 'epoch' >= 1 and 'ttl' > 0"
            )
        now = time.monotonic()
        current = self._lease
        held = current is not None and current["expires"] > now
        granted = False
        if held and current["router"] == router and epoch == current["epoch"]:
            granted = True  # renewal
        elif epoch > self._lease_epoch_floor and (
            not held or current["router"] == router
        ):
            granted = True  # fresh claim (or self re-claim under a new epoch)
        if granted:
            self._lease = {"router": router, "epoch": epoch,
                           "expires": now + ttl}
            self._lease_epoch_floor = max(self._lease_epoch_floor, epoch)
            self.lease_grants += 1
        else:
            self.lease_refusals += 1
        holder = self._lease if self._lease is not None else {}
        return self._reply(
            req, op="lease", granted=granted,
            holder=holder.get("router"),
            holder_epoch=int(holder.get("epoch", 0)),
            epoch_floor=self._lease_epoch_floor,
            # The standby syncs its map off lease replies, so a
            # promotion starts from the freshest membership any node
            # has seen -- no leader->standby channel required.
            shard_map=self.shard_map.as_dict(),
        )

    # -- graceful drain -------------------------------------------------
    async def _drain(self, req: dict[str, Any]) -> dict[str, Any]:
        """Hand everything off, then step out of the map.

        Driven by the leader router with the successor map (this node
        removed) in hand.  Order matters:

        1. flip ``draining`` -- new amends park on ``_drain_done``;
        2. quiesce: wait for in-flight amends to settle, so every
           stream is frozen at its true head before it moves;
        3. **proactive amend handoff**: push each live stream's latest
           epoch artifact + resume head to the successor owners with
           ``adopt`` set, so the new primary installs the stream into
           its registry *now* (no pull-based takeover window);
        4. re-replicate: push every owned artifact the successor map
           re-homes to its new owners (bounded-retry pushes -- a dead
           peer cannot wedge the drain);
        5. adopt the successor map and release the parked amends into
           typed redirects that land on already-adopted streams.
        """
        successor = ShardMap.from_dict(req.get("shard_map"))
        if successor.epoch < self.shard_map.epoch:
            self.stale_epoch_rejections += 1
            raise StaleEpoch(
                f"drain map epoch {successor.epoch} < "
                f"{self.shard_map.epoch}: sender was deposed",
                current_epoch=self.shard_map.epoch,
                current_version=self.shard_map.version,
            )
        if self.name in successor.nodes:
            raise ProtocolError(
                f"drain successor map still contains {self.name!r}"
            )
        self.draining = True
        self._drain_map = successor
        self._drain_done.clear()
        while self._amends_inflight:
            await asyncio.sleep(0.005)
        retries_before = self.replica_push_retries
        handoffs = await self._drain_handoff_streams(successor)
        repushed = await self._drain_repush_artifacts(successor)
        self.drain_repush_retries += (
            self.replica_push_retries - retries_before
        )
        self.shard_map = successor
        self._drain_done.set()
        return self._reply(
            req, op="drain", draining=True,
            streams_handed_off=handoffs,
            replicas_repushed=repushed,
            repush_retries=self.drain_repush_retries,
            epoch=self.shard_map.epoch,
            version=self.shard_map.version,
        )

    async def _drain_handoff_streams(self, successor: ShardMap) -> int:
        """Push + adopt every live amend stream at its successor owners."""
        handoffs = 0
        for root in self.amends.live_roots():
            stream = self.amends.peek(root)
            if stream is None:
                continue
            try:
                spec = topology_to_spec(stream.topology)
            except TopologySpecError:
                continue  # unspeccable: the registry tombstone stands
            digest = str(stream.digest)
            doc = self.cache.get(digest)
            if doc is None:
                continue
            head = {
                "root": root, "epoch": int(stream.epoch), "digest": digest,
                "scheduler": stream.scheduler, "kernel": stream.kernel,
                "topology_spec": spec,
            }
            payload = {
                "op": "store", "digest": digest, "artifact": doc,
                "payload_sha256": artifact_digest(doc),
                "topology_spec": spec, "amend_head": head,
                "adopt": True,
            }
            pushed = False
            for peer in successor.owners(root):
                if peer == self.name:
                    continue
                await self._push_replica(peer, payload)
                pushed = True
            if pushed:
                handoffs += 1
                self.drain_handoffs += 1
        return handoffs

    async def _drain_repush_artifacts(self, successor: ShardMap) -> int:
        """Re-replicate artifacts the successor map takes away from us.

        Every digest this node holds whose placement key it owned under
        the old map is pushed to *every* successor owner -- not just
        the newly assigned ones, because an old co-owner may have
        silently lost its push and this is the last chance to close
        that gap before the unique copy leaves with us.  Stores are
        idempotent, so over-pushing costs bandwidth, never correctness.
        Uses the same bounded-retry push as normal replication: a dead
        peer costs one retry, never an unbounded stall while draining.
        """
        repushed = 0
        for digest in sorted(self.cache.digests()):
            doc = self.cache.peek(digest)
            if doc is None:
                continue
            lineage = doc.get("lineage")
            key = (
                str(lineage.get("root", "")) or digest
                if isinstance(lineage, dict) else digest
            )
            old_owners = self.shard_map.owners(key)
            if self.name not in old_owners:
                continue
            targets = [
                peer for peer in successor.owners(key) if peer != self.name
            ]
            if not targets:
                continue
            payload: dict[str, Any] = {
                "op": "store", "digest": digest, "artifact": doc,
                "payload_sha256": artifact_digest(doc),
            }
            spec = self._specs.get(digest)
            if spec is not None:
                payload["topology_spec"] = spec
            for peer in targets:
                await self._push_replica(peer, payload)
                self.drain_repushes += 1
                repushed += 1
        return repushed

    def _fetch(self, req: dict[str, Any]) -> dict[str, Any]:
        digest = str(req.get("digest") or "")
        if not digest:
            raise ProtocolError("fetch request needs 'digest'")
        doc = self.cache.get(digest)
        out = self._reply(req, op="fetch", digest=digest, found=doc is not None)
        if doc is not None:
            out["artifact"] = doc
            out["payload_sha256"] = artifact_digest(doc)
        return out

    def _store_replica(self, req: dict[str, Any]) -> dict[str, Any]:
        digest = str(req.get("digest") or "")
        doc = req.get("artifact")
        if not digest or not isinstance(doc, dict):
            raise ProtocolError("store request needs 'digest' and 'artifact'")
        if artifact_digest(doc) != req.get("payload_sha256"):
            raise ProtocolError("store payload integrity check failed")
        spec = req.get("topology_spec")
        if isinstance(spec, dict):
            # Same bar as read repair: hash proves transport integrity,
            # the semantic check proves the artifact is a valid
            # conflict-free schedule *for the topology it claims*.  A
            # lying spec fails the signature cross-check inside
            # verify_artifact.
            try:
                artifact_verifier(topology_from_spec(spec))(doc)
            except Exception as exc:
                raise ProtocolError(
                    f"replica failed semantic verification: {exc}"
                ) from None
            self._specs[digest] = dict(spec)
        self.cache.put(digest, doc)
        self.replicas_received += 1
        head = req.get("amend_head")
        adopted = False
        if isinstance(head, dict):
            self._adopt_head(head)
            if req.get("adopt"):
                # Proactive drain handoff: install the stream into the
                # registry *now*, so the draining node's redirected
                # amend lands on a live stream -- not on the pull-based
                # takeover path (which only runs, and counts, when a
                # primary died without saying goodbye).
                adopted = self._maybe_takeover(str(head.get("root") or ""))
                if adopted:
                    self.drain_adoptions += 1
        return self._reply(
            req, op="store", digest=digest, stored=True, adopted=adopted
        )

    def _digests(self, req: dict[str, Any]) -> dict[str, Any]:
        """Local inventory for anti-entropy: digest, payload hash, and
        (when known) the topology spec a puller needs to re-verify."""
        inventory: list[dict[str, Any]] = []
        for digest in sorted(self.cache.digests()):
            doc = self.cache.peek(digest)
            if doc is None:
                continue
            entry: dict[str, Any] = {
                "digest": digest, "payload_sha256": artifact_digest(doc),
            }
            spec = self._specs.get(digest)
            if spec is not None:
                entry["topology_spec"] = spec
            lineage = doc.get("lineage")
            if isinstance(lineage, dict):
                # Amend epochs place on their stream's *root*.
                entry["root"] = str(lineage.get("root", ""))
            inventory.append(entry)
        return self._reply(
            req, op="digests", inventory=inventory,
            amend_heads={r: dict(h) for r, h in self._amend_heads.items()},
        )

    # -- amend failover -------------------------------------------------
    def _adopt_head(self, head: dict[str, Any]) -> None:
        """Track the newest known epoch of a replicated amend stream."""
        try:
            root = str(head["root"])
            epoch = int(head["epoch"])
            digest = str(head["digest"])
        except (KeyError, TypeError, ValueError):
            return
        if not root or not digest:
            return
        current = self._amend_heads.get(root)
        if current is not None and int(current["epoch"]) >= epoch:
            return
        self._amend_heads[root] = {
            "root": root, "epoch": epoch, "digest": digest,
            "scheduler": str(
                head.get("scheduler") or self.service.default_scheduler
            ),
            "kernel": head.get("kernel"),
            "topology_spec": head.get("topology_spec"),
        }

    def _maybe_takeover(self, root: str) -> bool:
        """Resume a replicated amend stream this node now owns.

        Runs when an amend update names a root the local registry has
        never served (the old primary died) -- and, with a different
        counter, when a draining primary hands its streams off.  The
        replicated head metadata points at the latest epoch artifact;
        the stream is rebuilt through :meth:`AmendStream.resume` --
        which re-routes and re-validates the stored schedule -- and
        adopted into the registry, continuing the stored lineage.
        Epoch optimistic concurrency then works exactly as before the
        failover: a stale racer gets a typed ``EpochConflict``, never a
        fork.  Returns whether a stream was adopted; the caller owns
        the bookkeeping (``amend_takeovers`` vs ``drain_adoptions``).
        """
        if not root or self.amends.knows(root):
            return False  # live, or tombstoned for the registry's resume
        head = self._amend_heads.get(root)
        if head is None:
            return False
        spec = head.get("topology_spec")
        if not isinstance(spec, dict):
            return False
        doc = self.cache.get(head["digest"])
        if doc is None or not isinstance(doc.get("lineage"), dict):
            return False
        try:
            stream = AmendStream.resume(
                topology_from_spec(spec), doc,
                scheduler=head["scheduler"], kernel=head["kernel"],
                cache=self.cache,
            )
        except Exception:
            return False  # unresumable artifact: the registry's typed
            #              "unknown amend root" answer stands
        if stream.root != root or stream.digest != head["digest"]:
            return False  # head metadata disagrees with the lineage
        self.amends.adopt(stream)
        return True

    def _replicate_amend_epoch(self, reply: dict[str, Any]) -> None:
        """Push the new epoch artifact + resume metadata to co-owners.

        Called after every successful amend (open and update): the
        stream's current epoch artifact is replicated to the other
        owners of the *root* (streams place by root, not by epoch
        digest) so any of them can take the stream over if this
        primary dies.
        """
        root = str(reply.get("root") or "")
        stream = self.amends.peek(root)
        if stream is None:
            return
        try:
            spec = topology_to_spec(stream.topology)
        except TopologySpecError:
            return  # unspeccable topology: stream stays primary-only
        digest = str(stream.digest)
        self._specs[digest] = spec
        head = {
            "root": root, "epoch": int(stream.epoch), "digest": digest,
            "scheduler": stream.scheduler, "kernel": stream.kernel,
            "topology_spec": spec,
        }
        self._adopt_head(head)
        self._spawn_replication(
            digest, self.shard_map.owners(root), spec=spec, amend_head=head,
        )

    # -- replication / read-repair -------------------------------------
    def _spawn_replication(
        self,
        digest: str,
        owners: list[str],
        *,
        spec: dict[str, Any] | None = None,
        amend_head: dict[str, Any] | None = None,
    ) -> None:
        """Push a freshly compiled artifact to the other owners.

        Fire-and-forget: replication buys locality, not correctness
        (compiles are deterministic), so a failed push is a counter,
        never an error on the client's reply.  The payload carries the
        topology spec so receivers can verify semantically, and -- for
        amend epochs -- the resume metadata a takeover needs.
        """
        doc = self.cache.get(digest)
        if doc is None:
            return
        payload = {
            "op": "store", "digest": digest, "artifact": doc,
            "payload_sha256": artifact_digest(doc),
        }
        if spec is None:
            spec = self._specs.get(digest)
        if spec is not None:
            payload["topology_spec"] = spec
        if amend_head is not None:
            payload["amend_head"] = amend_head
        for peer in owners:
            if peer == self.name or peer not in self.shard_map.nodes:
                continue
            task = asyncio.ensure_future(self._push_replica(peer, payload))
            self._repl_tasks.add(task)
            task.add_done_callback(self._repl_tasks.discard)

    async def _push_replica(self, peer: str, payload: dict[str, Any]) -> None:
        """One replica push: a single bounded retry (with jitter) before
        giving up, so one transient peer hiccup does not leave R unmet
        until the next anti-entropy sweep."""
        if (
            self.drop_replica_push_rate
            and self._rng.random() < self.drop_replica_push_rate
        ):
            # Injected chaos: the push is lost in transit, silently --
            # exactly the failure mode anti-entropy exists to repair.
            self.replica_pushes_dropped += 1
            self.replica_push_failures += 1
            return
        for attempt in (0, 1):
            try:
                await self._peer_request(peer, payload)
                self.replicas_pushed += 1
                return
            except ServiceError:
                if attempt:
                    self.replica_push_failures += 1
                    return
                self.replica_push_retries += 1
                await asyncio.sleep(
                    self.push_retry_delay * (0.5 + self._rng.random())
                )

    async def _read_repair(
        self, req: dict[str, Any], digest: str, owners: list[str]
    ) -> None:
        """Adopt a peer replica before paying for a recompile.

        Runs on the serve path of a local miss -- including the miss a
        *corrupt* local entry turns into once the verifier quarantines
        it.  A peer copy is accepted only after its transported hash
        matches a local re-hash **and** it passes the same semantic
        verification a cache read gets; anything else counts as a
        failed repair and the cold-compile path takes over.
        """
        topology = topology_from_spec(req["topology"])
        verifier = artifact_verifier(topology)
        local = self.cache.get(digest, verifier=verifier)
        want_registers = bool(req.get("registers", False))
        if local is not None and (not want_registers or "registers" in local):
            return
        for peer in owners:
            if peer == self.name or peer not in self.shard_map.nodes:
                continue
            try:
                reply = await self._peer_request(
                    peer, {"op": "fetch", "digest": digest}
                )
            except ServiceError:
                self.read_repair_failures += 1
                continue
            doc = reply.get("artifact")
            if not isinstance(doc, dict):
                continue  # clean peer miss: nothing to repair from
            if want_registers and "registers" not in doc:
                continue
            try:
                if artifact_digest(doc) != reply.get("payload_sha256"):
                    raise ProtocolError("replica hash mismatch")
                verifier(doc)  # raises on a semantically bad replica
            except Exception:
                self.read_repair_failures += 1
                continue
            self.cache.put(digest, doc)
            self._specs.setdefault(digest, dict(req["topology"]))
            self.read_repairs += 1
            return

    # -- anti-entropy ---------------------------------------------------
    async def _anti_entropy_loop(self) -> None:
        assert self.anti_entropy_interval is not None
        try:
            while True:
                await asyncio.sleep(self.anti_entropy_interval)
                try:
                    await self._anti_entropy_sweep()
                except Exception:  # noqa: BLE001 - the loop must survive
                    pass
        except asyncio.CancelledError:
            pass

    async def _anti_entropy_sweep(self) -> dict[str, Any]:
        """One pull round: adopt owned-but-missing replicas from peers.

        For every peer inventory entry whose placement key (the lineage
        root for amend epochs, the digest itself otherwise) this node
        owns, a local miss -- or a payload-hash mismatch -- triggers a
        fetch that is hash + semantically re-verified exactly like read
        repair before adoption.  Entries without a known topology spec
        are never adopted blind.  Amend head metadata rides along so a
        future takeover has resume state even when the head push itself
        was lost.
        """
        async with self._sweep_lock:
            self.anti_entropy_rounds += 1
            repaired = failures = 0
            for peer in list(self.shard_map.nodes):
                if peer == self.name:
                    continue
                try:
                    reply = await self._peer_request(peer, {"op": "digests"})
                except ServiceError:
                    failures += 1
                    continue
                heads = reply.get("amend_heads")
                if isinstance(heads, dict):
                    for head in heads.values():
                        if isinstance(head, dict):
                            self._adopt_head(head)
                for entry in reply.get("inventory") or ():
                    if not isinstance(entry, dict):
                        continue
                    digest = str(entry.get("digest") or "")
                    remote_hash = entry.get("payload_sha256")
                    if not digest or not isinstance(remote_hash, str):
                        continue
                    owner_key = str(entry.get("root") or digest)
                    if self.name not in self.shard_map.owners(owner_key):
                        continue
                    local = self.cache.peek(digest)
                    if local is not None and artifact_digest(local) == remote_hash:
                        continue
                    spec = entry.get("topology_spec") or self._specs.get(digest)
                    if not isinstance(spec, dict):
                        continue
                    outcome = await self._repair_from(peer, digest, spec, local)
                    if outcome is True:
                        repaired += 1
                    elif outcome is False:
                        failures += 1
            self.replicas_repaired += repaired
            return {
                "repaired": repaired,
                "failures": failures,
                "rounds": self.anti_entropy_rounds,
            }

    async def _repair_from(
        self,
        peer: str,
        digest: str,
        spec: dict[str, Any],
        local: dict[str, Any] | None,
    ) -> bool | None:
        """Fetch + verify + adopt one replica (True/False/None=skipped)."""
        try:
            reply = await self._peer_request(
                peer, {"op": "fetch", "digest": digest}
            )
        except ServiceError:
            return False
        doc = reply.get("artifact")
        if not isinstance(doc, dict):
            return None  # the peer lost it between inventory and fetch
        try:
            if artifact_digest(doc) != reply.get("payload_sha256"):
                raise ProtocolError("replica hash mismatch")
            artifact_verifier(topology_from_spec(spec))(doc)
        except Exception:
            return False
        if local is not None and not (
            "registers" in doc and "registers" not in local
        ):
            # Both copies verified but hashes differ: the one
            # legitimate cause is the in-place registers upgrade (same
            # digest, superset document).  Anything else keeps the
            # local copy -- adopting would just flap between replicas.
            return None
        self.cache.put(digest, doc)
        self._specs[digest] = dict(spec)
        return True

    async def _peer_request(
        self, peer: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """One request/reply round trip to a peer node (fresh conn)."""
        if self.peer_filter is not None and not self.peer_filter(self.name, peer):
            raise TransportError(
                f"peer {peer!r} unreachable from {self.name!r}: partitioned"
            )
        host, port = self.shard_map.endpoint(peer)
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        except OSError as exc:
            raise TransportError(f"peer {peer!r} unreachable: {exc}") from exc
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.peer_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            raise ServiceTimeout(
                f"peer {peer!r} gave no reply within {self.peer_timeout}s"
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise TransportError(
                f"peer {peer!r} connection failed: {exc}"
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if not line or not line.endswith(b"\n"):
            raise TransportError(f"peer {peer!r} cut mid-reply")
        try:
            reply = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"peer {peer!r} malformed reply: {exc}") from None
        if not isinstance(reply, dict):
            raise ProtocolError(f"peer {peer!r} malformed reply: {reply!r}")
        if not reply.get("ok"):
            raise reply_error(reply)
        return reply

    # -- stats ----------------------------------------------------------
    def _ready(self) -> bool:
        # A draining node still answers (warm reads, parked amends)
        # but must never be re-admitted by a probing router.
        return not self.draining and super()._ready()

    def _stats(self) -> dict[str, Any]:
        out = super()._stats()
        lease = self._lease or {}
        out["farm"] = {
            "name": self.name,
            "map_version": self.shard_map.version,
            "map_epoch": self.shard_map.epoch,
            "draining": self.draining,
            "wrong_shard": self.wrong_shard,
            "stale_epoch_rejections": self.stale_epoch_rejections,
            "lease_grants": self.lease_grants,
            "lease_refusals": self.lease_refusals,
            "lease_holder": lease.get("router"),
            "lease_epoch": int(lease.get("epoch", 0)),
            "replicas_pushed": self.replicas_pushed,
            "replicas_received": self.replicas_received,
            "replica_push_failures": self.replica_push_failures,
            "replica_push_retries": self.replica_push_retries,
            "replica_pushes_dropped": self.replica_pushes_dropped,
            "replicas_repaired": self.replicas_repaired,
            "anti_entropy_rounds": self.anti_entropy_rounds,
            "amend_takeovers": self.amend_takeovers,
            "amend_heads": len(self._amend_heads),
            "drain_handoffs": self.drain_handoffs,
            "drain_adoptions": self.drain_adoptions,
            "drain_repushes": self.drain_repushes,
            "drain_repush_retries": self.drain_repush_retries,
            "read_repairs": self.read_repairs,
            "read_repair_failures": self.read_repair_failures,
        }
        return out

    def _health(self) -> dict[str, Any]:
        out = super()._health()
        out["farm"] = {
            "name": self.name,
            "map_version": self.shard_map.version,
            "map_epoch": self.shard_map.epoch,
            "draining": self.draining,
        }
        return out


# ----------------------------------------------------------------------
# the shard router
# ----------------------------------------------------------------------

class ShardRouter:
    """Routes requests to owning nodes; owns membership and failover.

    Forwarding is **byte-transparent**: the router parses the request
    only to compute its route digest, then writes the original line to
    the node and relays the node's reply line verbatim -- the client's
    ``idem`` echo and ``payload_sha256`` checks therefore cover the
    full client-router-node path with no re-serialization in between.

    A forward that dies on transport (or times out) demotes the node:
    it is removed from the map, the version is bumped, survivors get a
    ``reshard`` push, and the request retries against the digest's new
    owner.  A ``wrong_shard`` reply from a node with an *older* map
    gets the router's map pushed and one retry -- the router is the
    authority, nodes converge to it.

    With ``probe_interval`` set the router also probes **actively**: a
    background loop sends ``health`` to every member; ``suspect_after``
    consecutive probe failures demote the node (dead nodes are detected
    even when no request happens to hit them).  Demoted and departed
    nodes keep being probed at their last known endpoint, and a node
    that answers alive-and-ready again is **rejoined**: re-admitted
    under a bumped map that is pushed farm-wide, then told to ``repair``
    -- one targeted anti-entropy sweep that pulls every artifact the
    new map assigns to it.

    **Leadership.**  Routers come in active/standby pairs with no
    external coordinator: the *nodes* arbitrate.  Each router runs
    :meth:`lease_round`, asking every node to grant (or renew) a
    leadership lease under its incarnation ``epoch``; grants from a
    majority of reachable members make (or keep) it the leader.  Only
    the leader mutates membership -- demote, rejoin, drain, map pushes
    -- while a standby probes passively and syncs its map off the
    lease replies.  When the leader's lease lapses (crash, partition),
    the standby's next claim -- under ``observed epoch + 1`` -- wins,
    it bumps the map epoch (:meth:`ShardMap.with_epoch`) and re-pushes
    the authoritative map farm-wide.  The deposed leader's later
    pushes are fenced: every node (and the standby, via its own
    ``reshard`` verb) answers a typed ``stale_epoch``.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        name: str = "router0",
        role: str = "leader",
        host: str = "127.0.0.1",
        port: int = 0,
        default_scheduler: str = "combined",
        node_timeout: float = 120.0,
        max_attempts: int = 6,
        pool_idle: int = 8,
        probe_interval: float | None = None,
        probe_timeout: float = 1.0,
        suspect_after: int = 2,
        rejoin: bool = True,
        peers: list[tuple[str, int]] | None = None,
        lease_interval: float | None = None,
        lease_ttl: float = 2.0,
    ) -> None:
        if role not in ("leader", "standby"):
            raise ValueError(f"router role must be leader/standby, got {role!r}")
        self.shard_map = shard_map
        self.name = str(name)
        self.role = role
        self.host, self.port = host, port
        self.default_scheduler = default_scheduler
        self.node_timeout = float(node_timeout)
        self.max_attempts = int(max_attempts)
        self.pool_idle = int(pool_idle)
        self.probe_interval = float(probe_interval) if probe_interval else None
        self.probe_timeout = float(probe_timeout)
        self.suspect_after = max(1, int(suspect_after))
        self.rejoin = bool(rejoin)
        #: peer router endpoints (the other half of the HA pair) --
        #: best-effort reshard pushes keep their maps converged.
        self.peers: list[tuple[str, int]] = [
            (str(h), int(p)) for h, p in (peers or [])
        ]
        self.lease_interval = (
            float(lease_interval) if lease_interval else None
        )
        self.lease_ttl = float(lease_ttl)
        #: this router's leadership incarnation.  A solo router (no
        #: lease machinery configured) is born leader at the map epoch;
        #: a standby has no incarnation until it promotes.
        self.epoch = shard_map.epoch if role == "leader" else 0
        #: highest incarnation epoch observed anywhere (lease replies,
        #: adopted maps) -- a promotion claims one above this.
        self._observed_epoch = max(self.epoch, shard_map.epoch)
        self._lease_acquired: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._pools: dict[
            str, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ] = {}
        #: live inbound client connections, aborted on stop() so a
        #: "killed" router is process-death faithful: connected clients
        #: see a reset, never a half-alive zombie that keeps routing.
        self._conns: set[asyncio.StreamWriter] = set()
        self._demote_lock = asyncio.Lock()
        self._probe_task: asyncio.Task | None = None
        self._lease_task: asyncio.Task | None = None
        #: name -> consecutive probe-failure count (the suspect state).
        self._suspect: dict[str, int] = {}
        #: name -> last known endpoint of nodes no longer in the map --
        #: fed by every demotion and skew adoption, drained by rejoin.
        self._departed: dict[str, dict[str, Any]] = {}
        #: nodes gracefully drained out -- never offered rejoin even if
        #: their endpoint answers probes while shutting down.
        self._drained: set[str] = set()
        self.requests_served = 0
        self.forwarded = 0
        self.rerouted = 0
        self.failovers = 0
        self.probe_rounds = 0
        self.probes_sent = 0
        self.probe_failures = 0
        self.probe_demotions = 0
        self.rejoins = 0
        self.promotions = 0
        self.stepdowns = 0
        self.lease_rounds = 0
        self.drains = 0
        self.stale_epoch_rejections = 0
        self.drain_repush_retries = 0

    @property
    def is_leader(self) -> bool:
        return self.role == "leader"

    @property
    def lease_age_seconds(self) -> float | None:
        if self._lease_acquired is None:
            return None
        return time.monotonic() - self._lease_acquired

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "router not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "ShardRouter":
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port,
            limit=MAX_LINE_BYTES,
        )
        if self.probe_interval:
            self._probe_task = asyncio.ensure_future(self._probe_loop())
        if self.lease_interval:
            self._lease_task = asyncio.ensure_future(self._lease_loop())
        return self

    async def stop(self) -> None:
        for attr in ("_probe_task", "_lease_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                setattr(self, attr, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conns):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._conns.clear()
        for conns in self._pools.values():
            for _, writer in conns:
                writer.close()
        self._pools.clear()

    # -- connection handling -------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conns.add(writer)
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    line = exc.partial
                    if not line:
                        break
                except asyncio.LimitOverrunError:
                    err = ProtocolError(
                        f"frame exceeds {MAX_LINE_BYTES} bytes"
                    )
                    writer.write(json.dumps(
                        {"id": None, "ok": False, **error_fields(err)}
                    ).encode() + b"\n")
                    await writer.drain()
                    break
                if not line.strip():
                    break
                writer.write(await self._route(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _route(self, line: bytes) -> bytes:
        """One raw request line to one raw reply line."""
        req: Any = {}
        try:
            try:
                req = json.loads(line)
            except (ValueError, UnicodeDecodeError) as exc:
                raise ProtocolError(f"bad JSON frame: {exc}") from None
            if not isinstance(req, dict):
                raise ProtocolError("request must be a JSON object")
            self.requests_served += 1
            op = req.get("op", "compile")
            if op == "ping":
                return self._local_reply(req, op="ping")
            if op == "shardmap":
                return self._local_reply(
                    req, op="shardmap", shard_map=self.shard_map.as_dict()
                )
            if op in ("stats", "health"):
                return await self._aggregate(req, op)
            if op == "ready":
                return self._local_reply(
                    req, op="ready", ready=bool(self.shard_map.nodes)
                )
            if op == "shutdown":
                return await self._shutdown_farm(req)
            if op == "reshard":
                return self._local_reply(
                    req, op="reshard", **self._reshard_verb(req)
                )
            if op == "drain":
                return self._local_reply(
                    req, op="drain",
                    **await self.drain_node(str(req.get("node") or "")),
                )
            if op in ("compile", "amend"):
                return await self._forward(line, req)
            raise ProtocolError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            req = req if isinstance(req, dict) else {}
            return json.dumps(
                {"id": req.get("id"), "ok": False, **error_fields(exc)}
            ).encode() + b"\n"

    def _local_reply(self, req: dict[str, Any], **payload: Any) -> bytes:
        out = {"id": req.get("id"), "ok": True, **payload}
        if "idem" in req:
            out["idem"] = request_digest(req)
        return json.dumps(out).encode() + b"\n"

    # -- forwarding -----------------------------------------------------
    async def _forward(self, line: bytes, req: dict[str, Any]) -> bytes:
        if not line.endswith(b"\n"):
            line += b"\n"
        last_error: ServiceError = ServerError("no live farm nodes")
        failed: set[str] = set()
        for attempt in range(self.max_attempts):
            digest = route_digest(
                req, default_scheduler=self.default_scheduler
            )
            owners = [
                o for o in self.shard_map.owners(digest) if o not in failed
            ]
            if not owners:
                raise last_error
            target = owners[0]
            try:
                reply_line = await self._node_request_raw(target, line)
            except (TransportError, ServiceTimeout) as exc:
                last_error = exc
                if self.is_leader:
                    await self._demote(target)
                else:
                    # A standby must not mutate membership: route this
                    # request around the dead node and leave the demote
                    # to the leader (or to our own promotion).
                    failed.add(target)
                continue
            self.forwarded += 1
            try:
                reply = json.loads(reply_line)
            except ValueError:
                # Unparseable node reply: relay as-is; the client's
                # frame/integrity checks own this failure mode.
                return reply_line
            if (
                isinstance(reply, dict)
                and not reply.get("ok")
                and reply.get("error_type") == WrongShard.code
            ):
                # Map skew: the node is behind (or we are).  Adopt the
                # newer map, push ours if the node's is older, retry.
                self.rerouted += 1
                node_map = reply.get("shard_map")
                if isinstance(node_map, dict):
                    try:
                        new = ShardMap.from_dict(node_map)
                    except ProtocolError:
                        new = None
                    if new is not None and new.dominates(self.shard_map):
                        self._adopt_map(new)
                        continue
                await self._push_map(target)
                continue
            return reply_line
        raise last_error

    # -- membership -----------------------------------------------------
    def _adopt_map(self, new: ShardMap) -> None:
        """Switch maps, retiring state of every removed node.

        Used by *every* membership change -- demote, rejoin, and skew
        adoption in :meth:`_forward` -- so a node leaving the map can
        never leave idle pooled connections open until process exit.
        Removed nodes keep their last known endpoint in ``_departed``
        so the probe loop can offer them rejoin.
        """
        removed = set(self.shard_map.nodes) - set(new.nodes)
        for name in removed:
            self._departed.setdefault(name, dict(self.shard_map.nodes[name]))
            self._suspect.pop(name, None)
            for _, writer in self._pools.pop(name, []):
                writer.close()
        self.shard_map = new
        self._observed_epoch = max(self._observed_epoch, new.epoch)
        if new.epoch > self.epoch and self.is_leader:
            # The map we just adopted was published under a higher
            # leader incarnation: we were deposed and only now found
            # out.  Stop mutating membership immediately.
            self._step_down()

    async def _demote(self, name: str) -> None:
        """A node died on us: remove it, bump the map, reshard the rest."""
        if not self.is_leader:
            return  # standbys never mutate membership
        async with self._demote_lock:
            if name not in self.shard_map.nodes:
                return  # a concurrent request already demoted it
            self._adopt_map(self.shard_map.without(name))
            self.failovers += 1
            for peer in list(self.shard_map.nodes):
                await self._push_map(peer)

    async def _rejoin(self, name: str, endpoint: dict[str, Any]) -> None:
        """Re-admit a probed-alive departed node.

        Map bump first (pushed farm-wide, including to the rejoined
        node, whose own stale map loses the version race), then one
        targeted ``repair``: the node pulls every artifact the new map
        assigns to it, restoring replication factor for its key ranges
        without waiting for a periodic sweep.
        """
        if not self.is_leader:
            return
        async with self._demote_lock:
            if name in self.shard_map.nodes:
                return
            self._adopt_map(self.shard_map.with_node(name, endpoint))
            self._departed.pop(name, None)
            self._suspect.pop(name, None)
            self.rejoins += 1
        for peer in list(self.shard_map.nodes):
            await self._push_map(peer)
        try:
            await self._node_request_raw(name, b'{"op": "repair"}\n')
        except ServiceError:
            pass  # the node's own anti-entropy loop will catch it up

    # -- active health probing ------------------------------------------
    async def _probe_loop(self) -> None:
        assert self.probe_interval is not None
        try:
            while True:
                await asyncio.sleep(self.probe_interval)
                try:
                    await self.probe_round()
                except Exception:  # noqa: BLE001 - the loop must survive
                    pass
        except asyncio.CancelledError:
            pass

    async def probe_round(self) -> dict[str, Any]:
        """One membership pass: probe members, then offer rejoins.

        A member failing ``suspect_after`` consecutive probes is
        demoted -- the suspect state tolerates one dropped probe
        without churning the map.  Departed nodes are probed at their
        last known endpoint; alive **and ready** gets them rejoined
        (a draining node answers health ok but not ready, and must not
        be re-admitted).
        """
        self.probe_rounds += 1
        for name in list(self.shard_map.nodes):
            try:
                host, port = self.shard_map.endpoint(name)
            except KeyError:
                continue  # demoted by a concurrent request mid-round
            self.probes_sent += 1
            alive, _ready = await self._probe_endpoint(host, port)
            if alive:
                self._suspect.pop(name, None)
                continue
            self.probe_failures += 1
            count = self._suspect.get(name, 0) + 1
            self._suspect[name] = count
            if count >= self.suspect_after and self.is_leader:
                self.probe_demotions += 1
                await self._demote(name)
        if self.rejoin and self.is_leader:
            for name, endpoint in list(self._departed.items()):
                if name in self.shard_map.nodes or name in self._drained:
                    self._departed.pop(name, None)
                    continue
                self.probes_sent += 1
                alive, ready = await self._probe_endpoint(
                    str(endpoint["host"]), int(endpoint["port"])
                )
                if alive and ready:
                    await self._rejoin(name, endpoint)
        return {
            "suspect": dict(self._suspect),
            "departed": sorted(self._departed),
        }

    async def _probe_endpoint(self, host: str, port: int) -> tuple[bool, bool]:
        """One ``health`` probe -> ``(alive, ready)``.  Never raises."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=MAX_LINE_BYTES),
                timeout=self.probe_timeout,
            )
        except (OSError, asyncio.TimeoutError, TimeoutError):
            return False, False
        try:
            writer.write(b'{"op": "health"}\n')
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.probe_timeout
            )
            reply = json.loads(line)
            if not isinstance(reply, dict) or not reply.get("ok"):
                return False, False
            return True, bool(reply.get("ready"))
        except (asyncio.TimeoutError, TimeoutError, ConnectionResetError,
                BrokenPipeError, OSError, ValueError):
            return False, False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- leadership (node-arbitrated leases) ----------------------------
    async def _lease_loop(self) -> None:
        assert self.lease_interval is not None
        try:
            while True:
                await asyncio.sleep(self.lease_interval)
                try:
                    await self.lease_round()
                except Exception:  # noqa: BLE001 - the loop must survive
                    pass
        except asyncio.CancelledError:
            pass

    async def lease_round(self) -> dict[str, Any]:
        """One leadership pass: renew (leader) or claim (standby).

        Asks every map member for a lease under this router's epoch --
        a standby claims one above the highest epoch it has observed,
        so its claim beats every node's epoch floor the moment the old
        lease lapses.  Grants from a majority of members keep (or win)
        leadership; a leader that loses the majority steps down, a
        standby that wins it promotes -- bumping the map epoch and
        re-pushing the authoritative map farm-wide.  Lease replies
        carry each node's map, so a standby converges on membership
        without any leader-to-standby channel.
        """
        self.lease_rounds += 1
        claim = self.epoch if self.is_leader else self._observed_epoch + 1
        payload = json.dumps({
            "op": "lease", "router": self.name,
            "epoch": claim, "ttl": self.lease_ttl,
        }).encode() + b"\n"
        grants = 0
        members = list(self.shard_map.nodes)
        for node in members:
            try:
                line = await self._node_request_raw(node, payload)
                reply = json.loads(line)
            except (ServiceError, ValueError):
                continue
            if not isinstance(reply, dict) or not reply.get("ok"):
                continue
            self._observed_epoch = max(
                self._observed_epoch, int(reply.get("holder_epoch") or 0)
            )
            node_map = reply.get("shard_map")
            if isinstance(node_map, dict):
                try:
                    new = ShardMap.from_dict(node_map)
                except ProtocolError:
                    new = None
                if new is not None and new.dominates(self.shard_map):
                    self._adopt_map(new)
            if reply.get("granted"):
                grants += 1
        majority = len(members) // 2 + 1 if members else 1
        held = grants >= majority
        if self.is_leader and not held:
            self._step_down()
        elif held and not self.is_leader:
            await self._promote(claim)
        elif held and self._lease_acquired is None:
            self._lease_acquired = time.monotonic()
        return {
            "role": self.role, "epoch": self.epoch, "claimed": claim,
            "grants": grants, "members": len(members), "held": held,
        }

    def _step_down(self) -> None:
        if self.role != "leader":
            return
        self.role = "standby"
        self.stepdowns += 1
        self._lease_acquired = None

    async def _promote(self, epoch: int) -> None:
        """Won a majority as standby: take over under a fresh epoch."""
        self.role = "leader"
        self.epoch = int(epoch)
        self._observed_epoch = max(self._observed_epoch, self.epoch)
        self.promotions += 1
        self._lease_acquired = time.monotonic()
        if self.epoch > self.shard_map.epoch:
            # Publish membership under the new incarnation: every map
            # the deposed leader pushes from here on compares lower.
            self.shard_map = self.shard_map.with_epoch(self.epoch)
        await self._broadcast_map()

    async def _broadcast_map(self) -> None:
        """Best-effort reshard push to every node and peer router."""
        for peer in list(self.shard_map.nodes):
            await self._push_map(peer)
        for host, port in self.peers:
            try:
                await self.push_map_peer(host, port)
            except (ServiceError, OSError):
                pass

    async def push_map_peer(self, host: str, port: int) -> dict[str, Any]:
        """Push this router's map to a peer router.

        Unlike the fire-and-forget node pushes this *raises* the typed
        reply error -- a deposed leader pushing to the promoted peer
        gets the :class:`StaleEpoch` it needs to learn its fate.
        """
        payload = {"op": "reshard", "shard_map": self.shard_map.as_dict()}
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        except OSError as exc:
            raise TransportError(
                f"peer router {host}:{port} unreachable: {exc}"
            ) from exc
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.node_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            raise ServiceTimeout(
                f"peer router {host}:{port} gave no reply"
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise TransportError(
                f"peer router {host}:{port} connection failed: {exc}"
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        try:
            reply = json.loads(line)
        except ValueError:
            raise ProtocolError(
                f"peer router {host}:{port} malformed reply"
            ) from None
        if not isinstance(reply, dict):
            raise ProtocolError(f"peer router {host}:{port} malformed reply")
        if not reply.get("ok"):
            raise reply_error(reply)
        return reply

    def _reshard_verb(self, req: dict[str, Any]) -> dict[str, Any]:
        """A peer router pushed its map at us: adopt or fence."""
        new = ShardMap.from_dict(req.get("shard_map"))
        if new.epoch < self.shard_map.epoch:
            self.stale_epoch_rejections += 1
            raise StaleEpoch(
                f"map epoch {new.epoch} < {self.shard_map.epoch}: "
                f"sender was deposed",
                current_epoch=self.shard_map.epoch,
                current_version=self.shard_map.version,
            )
        adopted = new.dominates(self.shard_map)
        if adopted:
            self._adopt_map(new)
        return {
            "adopted": adopted,
            "epoch": self.shard_map.epoch,
            "version": self.shard_map.version,
        }

    # -- graceful drain -------------------------------------------------
    async def drain_node(self, name: str) -> dict[str, Any]:
        """Gracefully remove one node: handoff first, map change after.

        Leader-only.  The node is sent the ``drain`` verb with the
        successor map (itself removed) and does the heavy lifting --
        quiesce, proactive amend-stream handoff, re-replication -- see
        :meth:`FarmNodeServer._drain`.  Only once the node confirms is
        the successor map adopted and broadcast, so warm traffic keeps
        being served by the (still owning, still caching) node for the
        whole handoff window: zero typed-error blips.
        """
        if not self.is_leader:
            raise ServerError(
                f"router {self.name!r} is standby; drain via the leader"
            )
        async with self._demote_lock:
            if name not in self.shard_map.nodes:
                raise ProtocolError(f"unknown farm node {name!r}")
            successor = self.shard_map.without(name)
            line = json.dumps(
                {"op": "drain", "shard_map": successor.as_dict()}
            ).encode() + b"\n"
            reply_line = await self._node_request_raw(name, line)
            try:
                reply = json.loads(reply_line)
            except ValueError:
                raise ProtocolError(
                    f"node {name!r} malformed drain reply"
                ) from None
            if not isinstance(reply, dict) or not reply.get("ok"):
                raise reply_error(reply if isinstance(reply, dict) else {})
            self._drained.add(name)
            self._adopt_map(successor)
            self._departed.pop(name, None)
            self.drains += 1
            self.drain_repush_retries += int(reply.get("repush_retries") or 0)
        await self._broadcast_map()
        return {
            "node": name,
            "streams_handed_off": int(reply.get("streams_handed_off") or 0),
            "replicas_repushed": int(reply.get("replicas_repushed") or 0),
            "repush_retries": int(reply.get("repush_retries") or 0),
            "epoch": self.shard_map.epoch,
            "version": self.shard_map.version,
        }

    async def _push_map(self, name: str) -> None:
        """Best-effort ``reshard`` push; a dead target demotes on use."""
        req = json.dumps(
            {"op": "reshard", "shard_map": self.shard_map.as_dict()}
        ).encode() + b"\n"
        try:
            await self._node_request_raw(name, req)
        except ServiceError:
            pass

    # -- node connections (pooled, one in-flight request each) ---------
    async def _node_request_raw(self, name: str, line: bytes) -> bytes:
        conn = await self._acquire(name)
        reader, writer = conn
        try:
            writer.write(line)
            await writer.drain()
            reply = await asyncio.wait_for(
                reader.readline(), timeout=self.node_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            writer.close()
            raise ServiceTimeout(
                f"node {name!r} gave no reply within {self.node_timeout}s"
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            writer.close()
            raise TransportError(f"node {name!r} died mid-request: {exc}") from exc
        if not reply or not reply.endswith(b"\n"):
            writer.close()
            raise TransportError(f"node {name!r} cut mid-reply")
        self._release(name, conn)
        return reply

    async def _acquire(
        self, name: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        pool = self._pools.setdefault(name, [])
        while pool:
            reader, writer = pool.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        try:
            host, port = self.shard_map.endpoint(name)
        except KeyError:
            raise TransportError(f"node {name!r} is not in the shard map") from None
        try:
            return await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        except OSError as exc:
            raise TransportError(f"node {name!r} unreachable: {exc}") from exc

    def _release(
        self,
        name: str,
        conn: tuple[asyncio.StreamReader, asyncio.StreamWriter],
    ) -> None:
        pool = self._pools.setdefault(name, [])
        if name in self.shard_map.nodes and len(pool) < self.pool_idle:
            pool.append(conn)
        else:
            conn[1].close()

    # -- aggregation (stats / health across the farm) -------------------
    async def _aggregate(self, req: dict[str, Any], op: str) -> bytes:
        """Per-node breakdown plus farm-wide numeric totals."""
        per_node: dict[str, dict[str, Any]] = {}
        down: list[str] = []
        probe = json.dumps({"op": op}).encode() + b"\n"
        for name in list(self.shard_map.nodes):
            try:
                line = await self._node_request_raw(name, probe)
                reply = json.loads(line)
            except (ServiceError, ValueError):
                down.append(name)
                continue
            if not isinstance(reply, dict) or not reply.get("ok"):
                down.append(name)
                continue
            per_node[name] = {
                k: v for k, v in reply.items()
                if k not in ("id", "ok", "op", "idem")
            }
        farm_docs = [
            doc["farm"] for doc in per_node.values()
            if isinstance(doc.get("farm"), dict)
        ]

        def _total(field: str) -> int:
            return sum(int(d.get(field, 0) or 0) for d in farm_docs)

        out = {
            "nodes": per_node,
            "farm": sum_stats(list(per_node.values())),
            "down": down,
            "router": {
                "name": self.name,
                "role": self.role,
                "epoch": self.epoch,
                "requests": self.requests_served,
                "forwarded": self.forwarded,
                "rerouted": self.rerouted,
                "failovers": self.failovers,
                "map_version": self.shard_map.version,
                "map_epoch": self.shard_map.epoch,
                "live_nodes": len(self.shard_map.nodes),
                "probe_rounds": self.probe_rounds,
                "probes_sent": self.probes_sent,
                "probe_failures": self.probe_failures,
                "probe_demotions": self.probe_demotions,
                "rejoins": self.rejoins,
                "lease_rounds": self.lease_rounds,
                "lease_age_seconds": self.lease_age_seconds,
                "promotions": self.promotions,
                "stepdowns": self.stepdowns,
                "drains": self.drains,
                "drained": sorted(self._drained),
                "stale_epoch_rejections": self.stale_epoch_rejections,
                "suspect": dict(self._suspect),
                "departed": sorted(self._departed),
            },
            # Farm-wide replication posture in one block, so
            # under-replication (push failures nobody retried) is
            # visible without digging through per-node breakdowns.
            "replication": {
                "pushed": _total("replicas_pushed"),
                "received": _total("replicas_received"),
                "push_failures": _total("replica_push_failures"),
                "push_retries": _total("replica_push_retries"),
                "pushes_dropped": _total("replica_pushes_dropped"),
                "repaired": _total("replicas_repaired"),
                "anti_entropy_rounds": _total("anti_entropy_rounds"),
                "read_repairs": _total("read_repairs"),
                "amend_takeovers": _total("amend_takeovers"),
                "drain_handoffs": _total("drain_handoffs"),
                "drain_adoptions": _total("drain_adoptions"),
                # Drained nodes leave the map (and the per-node
                # breakdown) the moment they finish, so the router
                # accumulates their retry spend from the drain replies.
                "drain_repush_retries": (
                    self.drain_repush_retries + _total("drain_repush_retries")
                ),
            },
            "shard_map": self.shard_map.as_dict(),
        }
        if op == "health":
            out["ready"] = any(
                bool(doc.get("ready")) for doc in per_node.values()
            )
        return self._local_reply(req, op=op, **out)

    async def _shutdown_farm(self, req: dict[str, Any]) -> bytes:
        """Forward ``shutdown`` to every node, then stop routing."""
        if self._server is not None:
            self._server.close()
        line = json.dumps({"op": "shutdown"}).encode() + b"\n"
        for name in list(self.shard_map.nodes):
            try:
                await self._node_request_raw(name, line)
            except ServiceError:
                pass
        return self._local_reply(req, op="shutdown")


# ----------------------------------------------------------------------
# the shard-map-carrying client
# ----------------------------------------------------------------------

class AsyncFarmClient:
    """Farm client: direct-to-shard on warm state, router on trouble.

    Holds one :class:`AsyncCompileClient` per node plus one for the
    router.  Shardable requests are sent straight to an owner computed
    from the carried map (read load spread across replicas by digest;
    amends pinned to the primary).  A :class:`WrongShard` reply hands
    us the node's newer map and the request is re-aimed in-line; a
    node that cannot be reached at all falls back to the router --
    which performs failover -- and the map is re-fetched afterwards.

    ``router_address`` may be a single ``(host, port)`` pair or a
    *list* of them (the router HA pair): the embedded router client
    rotates to the next endpoint on every transport/timeout failure,
    so idempotent verbs transparently retry on the surviving router
    while ``amend`` surfaces its typed error (never auto-retried).
    """

    #: bounded in-line redirects before deferring to the router.
    MAX_REDIRECTS = 4

    def __init__(
        self,
        router_address: tuple[str, int] | list[tuple[str, int]],
        *,
        shard_map: ShardMap | None = None,
        timeout: float | None = None,
        default_scheduler: str = "combined",
    ) -> None:
        if (
            isinstance(router_address, tuple)
            and len(router_address) == 2
            and not isinstance(router_address[0], (tuple, list))
        ):
            addresses = [router_address]
        else:
            addresses = list(router_address)
        self.router_addresses = [(str(h), int(p)) for h, p in addresses]
        self.router_address = self.router_addresses[0]
        self.shard_map = shard_map
        self.timeout = timeout
        self.default_scheduler = default_scheduler
        self._router = AsyncCompileClient(
            timeout=timeout, endpoints=self.router_addresses
        )
        self._nodes: dict[str, AsyncCompileClient] = {}
        self._next_id = 0
        self.direct = 0
        self.via_router = 0
        self.map_refreshes = 0

    async def connect(self) -> "AsyncFarmClient":
        await self._router.connect()
        if self.shard_map is None:
            await self.refresh_map()
        return self

    async def close(self) -> None:
        for client in self._nodes.values():
            await client.close()
        self._nodes.clear()
        await self._router.close()

    async def __aenter__(self) -> "AsyncFarmClient":
        return await self.connect()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def refresh_map(self) -> ShardMap:
        reply = await self._router.request({"op": "shardmap"})
        self._adopt(ShardMap.from_dict(reply["shard_map"]))
        assert self.shard_map is not None
        return self.shard_map

    def _adopt(self, new: ShardMap) -> None:
        if self.shard_map is not None and not new.dominates(self.shard_map):
            return
        self.shard_map = new
        self.map_refreshes += 1
        for name in list(self._nodes):
            if name not in new.nodes:
                # Close lazily: the transport teardown needs no await
                # to stop the client being *used*.
                stale = self._nodes.pop(name)
                asyncio.ensure_future(stale.close())

    def _node_client(self, name: str) -> AsyncCompileClient:
        client = self._nodes.get(name)
        if client is None:
            assert self.shard_map is not None
            host, port = self.shard_map.endpoint(name)
            # No client-side retries against a single node: the farm
            # fallback (router failover) *is* the retry.
            client = AsyncCompileClient(host, port, timeout=self.timeout,
                                        retry=None)
            self._nodes[name] = client
        return client

    def _pick_owner(self, op: str, digest: str, owners: list[str]) -> str:
        if op == "amend":
            return owners[0]  # streams are primary-resident state
        # Spread reads/compiles across the replica set, deterministically
        # by digest so one artifact's requests still coalesce per node.
        return owners[int(digest[:8], 16) % len(owners)]

    async def request(self, req: dict[str, Any]) -> dict[str, Any]:
        op = req.get("op", "compile")
        if op not in ("compile", "amend") or self.shard_map is None:
            return await self._router.request(req)
        try:
            digest = route_digest(
                req, default_scheduler=self.default_scheduler
            )
        except ProtocolError:
            # Malformed request: let the router answer it with the
            # same typed error a node would.
            return await self._router.request(req)
        for _ in range(self.MAX_REDIRECTS):
            owners = self.shard_map.owners(digest)
            if not owners:
                break
            target = self._pick_owner(op, digest, owners)
            client = self._node_client(target)
            try:
                reply = await client.request(req)
            except WrongShard as exc:
                if isinstance(exc.shard_map, dict):
                    try:
                        newer = ShardMap.from_dict(exc.shard_map)
                    except ProtocolError:
                        break
                    if (
                        self.shard_map is None
                        or newer.dominates(self.shard_map)
                    ):
                        self._adopt(newer)
                        continue
                break  # the *node* is stale; the router will sort it out
            except (TransportError, ServiceTimeout):
                break  # node unreachable: the router owns failover
            self.direct += 1
            return reply
        self.via_router += 1
        reply = await self._router.request(req)
        try:
            await self.refresh_map()
        except ServiceError:
            pass
        return reply

    # -- convenience verbs (mirror AsyncCompileClient) ------------------
    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def stats(self) -> dict[str, Any]:
        return await self.request({"op": "stats"})

    async def health(self) -> dict[str, Any]:
        return await self.request({"op": "health"})

    async def shutdown(self) -> dict[str, Any]:
        return await self.request({"op": "shutdown"})

    async def compile(
        self,
        topology: dict[str, Any],
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        registers: bool = False,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        self._next_id += 1
        return await self.request(
            _compile_request(
                topology, pattern=pattern, pairs=pairs, scheduler=scheduler,
                registers=registers, request_id=self._next_id,
                deadline=deadline,
            )
        )

    async def amend(
        self,
        topology: dict[str, Any] | None = None,
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        root: str | None = None,
        epoch: int | None = None,
        add: list | None = None,
        remove: list | None = None,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        self._next_id += 1
        return await self.request(
            _amend_request(
                topology, pattern=pattern, pairs=pairs, scheduler=scheduler,
                root=root, epoch=epoch, add=add, remove=remove,
                request_id=self._next_id, deadline=deadline,
            )
        )


# ----------------------------------------------------------------------
# the in-process farm supervisor
# ----------------------------------------------------------------------

class Farm:
    """N farm nodes + one router in this process, for tests and benches.

    ``workers`` is *per node*: the default of 1 worker process per node
    means an N-node farm runs N cold compiles truly in parallel (each
    node owns a single-process pool), which is the scaling the farm
    benchmark measures.  ``workers=0`` keeps each node single-process
    (worker thread), the fully deterministic mode chaos tests use.
    """

    def __init__(
        self,
        nodes: int = 3,
        *,
        replication: int = 2,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        scheduler: str = "combined",
        policy: ServerPolicy | None = None,
        amend_streams: int | None = None,
        host: str = "127.0.0.1",
        node_timeout: float = 120.0,
        anti_entropy_interval: float | None = None,
        probe_interval: float | None = None,
        probe_timeout: float = 1.0,
        suspect_after: int = 2,
        routers: int = 1,
        lease_interval: float | None = None,
        lease_ttl: float = 2.0,
        chaos_seed: int | None = None,
    ) -> None:
        if nodes < 1:
            raise ValueError(f"a farm needs at least one node, got {nodes}")
        if routers < 1:
            raise ValueError(f"a farm needs at least one router, got {routers}")
        self.num_nodes = int(nodes)
        self.replication = max(1, min(int(replication), self.num_nodes))
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.scheduler = scheduler
        self.policy = policy
        self.amend_streams = amend_streams
        self.host = host
        self.node_timeout = float(node_timeout)
        self.anti_entropy_interval = anti_entropy_interval
        self.probe_interval = probe_interval
        self.probe_timeout = float(probe_timeout)
        self.suspect_after = int(suspect_after)
        self.num_routers = int(routers)
        self.lease_interval = lease_interval
        self.lease_ttl = float(lease_ttl)
        self.chaos_seed = chaos_seed
        self.nodes: dict[str, FarmNodeServer] = {}
        self.dead: dict[str, FarmNodeServer] = {}
        self.drained: dict[str, FarmNodeServer] = {}
        self.router: ShardRouter | None = None
        #: every live router (the HA pair), keyed by name; ``router``
        #: stays the primary handle tests and benches talk to.
        self.routers: dict[str, ShardRouter] = {}
        self.dead_routers: dict[str, ShardRouter] = {}
        #: original endpoint of every node ever started, so a killed
        #: node can be restarted on the same address (rejoin scenario).
        self.endpoints: dict[str, tuple[str, int]] = {}
        #: one-way blocked (src, dst) node pairs (chaos partitions);
        #: every node's ``peer_filter`` consults this shared table.
        self.partitions: set[tuple[str, str]] = set()
        self._router_endpoint: tuple[str, int] | None = None

    # -- chaos: partitions ----------------------------------------------
    def _peer_allowed(self, src: str, dst: str) -> bool:
        return (src, dst) not in self.partitions

    def partition(self, src: str, dst: str, *, both_ways: bool = False) -> None:
        """Block peer traffic ``src -> dst`` (one-way by default)."""
        self.partitions.add((src, dst))
        if both_ways:
            self.partitions.add((dst, src))

    def heal(self, src: str | None = None, dst: str | None = None) -> None:
        """Heal partitions: all, all touching ``src``, or one pair."""
        if src is None:
            self.partitions.clear()
        elif dst is None:
            self.partitions = {
                p for p in self.partitions if src not in p
            }
        else:
            self.partitions.discard((src, dst))

    def _make_node(
        self, name: str, index: int, shard_map: ShardMap, port: int
    ) -> FarmNodeServer:
        cache = ArtifactCache(
            self.cache_dir / name if self.cache_dir is not None else None
        )
        return FarmNodeServer(
            name=name,
            shard_map=shard_map,
            cache=cache,
            workers=self.workers,
            host=self.host,
            port=port,
            scheduler=self.scheduler,
            policy=self.policy,
            amend_streams=self.amend_streams,
            anti_entropy_interval=self.anti_entropy_interval,
            peer_filter=self._peer_allowed,
            chaos_seed=(
                None if self.chaos_seed is None else self.chaos_seed + index
            ),
        )

    async def start(self) -> "Farm":
        # Two-phase: bind every node on an ephemeral port first, then
        # build the v1 map from the real endpoints and hand it out.
        placeholder = ShardMap({}, replication=self.replication)
        for i in range(self.num_nodes):
            name = f"node{i}"
            node = self._make_node(name, i, placeholder, port=0)
            await node.start()
            self.nodes[name] = node
        endpoints = {
            name: {"host": node.address[0], "port": node.address[1]}
            for name, node in self.nodes.items()
        }
        self.endpoints = {
            name: (ep["host"], ep["port"]) for name, ep in endpoints.items()
        }
        shard_map = ShardMap(endpoints, replication=self.replication)
        for node in self.nodes.values():
            node.shard_map = shard_map
        lease_interval = self.lease_interval
        if self.num_routers > 1 and lease_interval is None:
            lease_interval = self.lease_ttl / 3
        for i in range(self.num_routers):
            router = ShardRouter(
                shard_map,
                name=f"router{i}",
                role="leader" if i == 0 else "standby",
                host=self.host,
                default_scheduler=self.scheduler,
                node_timeout=self.node_timeout,
                probe_interval=self.probe_interval,
                probe_timeout=self.probe_timeout,
                suspect_after=self.suspect_after,
                lease_interval=(
                    lease_interval if self.num_routers > 1 else None
                ),
                lease_ttl=self.lease_ttl,
            )
            await router.start()
            self.routers[router.name] = router
        for router in self.routers.values():
            router.peers = [
                tuple(peer.address) for peer in self.routers.values()
                if peer is not router
            ]
        self.router = self.routers["router0"]
        self._router_endpoint = tuple(self.router.address)
        if self.num_routers > 1:
            # Establish the initial lease so the leader's authority is
            # held, not just assumed -- a standby can only promote once
            # this lease actually lapses.
            await self.router.lease_round()
        return self

    @property
    def leader(self) -> ShardRouter | None:
        """The live router currently holding leadership (if any)."""
        for router in self.routers.values():
            if router.is_leader:
                return router
        return None

    @property
    def router_address(self) -> tuple[str, int]:
        assert self.router is not None, "farm not started"
        return self.router.address

    @property
    def router_addresses(self) -> list[tuple[str, int]]:
        """Every live router endpoint -- the client's failover list."""
        return [tuple(r.address) for r in self.routers.values()]

    def client(self, **kwargs: Any) -> AsyncFarmClient:
        addresses = self.router_addresses
        return AsyncFarmClient(
            addresses if len(addresses) > 1 else self.router_address,
            default_scheduler=self.scheduler,
            **kwargs,
        )

    async def kill_node(self, name: str) -> FarmNodeServer:
        """Abruptly crash one node (chaos): no drain, no goodbye."""
        node = self.nodes.pop(name)
        self.dead[name] = node
        await node.kill()
        return node

    async def restart_node(self, name: str) -> FarmNodeServer:
        """Restart a killed node on its original endpoint.

        The restart is process-death faithful: a disk-backed cache is
        reopened (crash recovery runs), a memory-only cache comes back
        *empty*, and the node carries the stale map it died with.
        Nothing tells the router -- re-admission happens through the
        probe loop's rejoin path, which is exactly what this method
        exists to exercise.
        """
        old = self.dead.pop(name)
        index = int(name.removeprefix("node")) if name.startswith("node") else 0
        host, port = self.endpoints[name]
        node = self._make_node(name, index, old.shard_map, port=port)
        await node.start()
        self.nodes[name] = node
        return node

    async def drain_node(self, name: str) -> FarmNodeServer:
        """Gracefully drain one node out of the farm, then stop it.

        The leader router drives the handoff (see
        :meth:`ShardRouter.drain_node`); only after it confirms --
        streams adopted by the new owners, under-replicated artifacts
        re-pushed, successor map broadcast -- is the node's process
        actually shut down.
        """
        leader = self.leader or self.router
        assert leader is not None, "farm not started"
        await leader.drain_node(name)
        node = self.nodes.pop(name)
        self.drained[name] = node
        await node.shutdown()
        return node

    async def kill_router(self) -> None:
        """Abruptly stop the serving router (chaos): in-flight dies.

        With an HA pair this kills the router ``self.router`` points at
        (the original leader unless re-pointed) and re-aims the handle
        at a survivor -- whose promotion still has to be *earned*
        through :meth:`ShardRouter.lease_round` once the dead leader's
        lease lapses.
        """
        assert self.router is not None, "farm not started"
        router = self.router
        self.routers.pop(router.name, None)
        self.dead_routers[router.name] = router
        self.router = next(iter(self.routers.values()), None)
        await router.stop()

    async def restart_router(self, shard_map: ShardMap | None = None) -> ShardRouter:
        """Bring a fresh router up on the original port.

        The router is stateless by design: the replacement starts from
        the given map (default: the v1 map over every *original* node)
        and converges through the usual skew machinery -- nodes with a
        newer map hand it over on the first ``wrong_shard``, dead nodes
        are re-demoted on first use or probe.
        """
        assert self._router_endpoint is not None, "farm not started"
        if shard_map is None:
            shard_map = ShardMap(
                {
                    name: {"host": host, "port": port}
                    for name, (host, port) in self.endpoints.items()
                },
                replication=self.replication,
            )
        self.dead_routers.pop("router0", None)
        router = ShardRouter(
            shard_map,
            name="router0",
            # Coming back next to a live peer means coming back as a
            # standby: leadership has to be re-won through the lease.
            role="standby" if self.routers else "leader",
            host=self.host,
            port=self._router_endpoint[1],
            default_scheduler=self.scheduler,
            node_timeout=self.node_timeout,
            probe_interval=self.probe_interval,
            probe_timeout=self.probe_timeout,
            suspect_after=self.suspect_after,
            lease_interval=(
                (self.lease_interval or self.lease_ttl / 3)
                if self.num_routers > 1 else None
            ),
            lease_ttl=self.lease_ttl,
        )
        await router.start()
        self.routers["router0"] = router
        for peer in self.routers.values():
            peer.peers = [
                tuple(other.address) for other in self.routers.values()
                if other is not peer
            ]
        self.router = router
        return router

    async def shutdown(self) -> None:
        for router in list(self.routers.values()):
            await router.stop()
        self.routers.clear()
        self.router = None
        for node in self.nodes.values():
            await node.shutdown()
        self.nodes.clear()
        self.dead.clear()
        self.drained.clear()
        self.dead_routers.clear()
