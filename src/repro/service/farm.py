"""Distributed compile farm: digest-sharded, replicated serving.

One compile server is a throughput ceiling; the farm is N of them
behind a shard router, partitioned by the *canonical pattern digest*
-- the same content address the cache already keys on -- so every
request has exactly one home set of nodes and the farm's aggregate
cache is the union of disjoint shards instead of N copies of one.

Pieces
------
:class:`HashRing`
    Consistent hashing with virtual nodes: each node projects
    ``vnodes`` sha256 points onto a 64-bit ring and a digest's owners
    are the next ``replication`` *distinct* nodes clockwise from its
    own point.  Adding or removing one node moves only the keys in its
    arcs (~1/N of the space), which is what makes failover a rebalance
    instead of a flush.

:class:`ShardMap`
    Versioned membership document: node endpoints + replication factor
    + the ring derived from them.  Higher version wins everywhere; the
    router is the membership authority and bumps the version when it
    demotes a dead node.

:class:`FarmNodeServer`
    A :class:`~repro.service.server.CompileServer` that knows its shard:
    ``compile``/``amend`` requests it does not own are refused with a
    typed :class:`~repro.service.errors.WrongShard` carrying the node's
    current map, cold compiles are pushed to the other owners
    (``store``), and a local miss is first repaired from a peer replica
    (``fetch`` + hash check + semantic re-verification) before falling
    back to a recompile.  New verbs: ``shardmap``, ``reshard``,
    ``fetch``, ``store``.

:class:`ShardRouter`
    Thin request router: computes the route digest, forwards the **raw
    request bytes** to the owning node and relays the **raw reply
    bytes** back, so the client's end-to-end integrity checks (``idem``
    echo, ``payload_sha256``) survive the extra hop byte-for-byte.  A
    node that dies mid-request is demoted -- removed from the map,
    version bumped, survivors reshard -- and the request retries on the
    new owner.  Its ``stats``/``health`` verbs aggregate every node
    (per-node breakdown plus numeric farm-wide totals).

:class:`AsyncFarmClient`
    Carries a shard map so warm requests go straight to an owning node,
    skipping the router hop; a ``WrongShard`` redirect refreshes the
    map in-line, and a dead node falls back to the router (which owns
    failover) followed by a map refresh.

:class:`Farm`
    In-process supervisor for tests, chaos campaigns and benchmarks:
    N nodes (each with its *own* cache tier and its own worker pool,
    so a 4-node farm really cold-compiles 4 patterns in parallel) plus
    one router, with abrupt ``kill_node`` for node-level chaos.

Failure semantics
-----------------
Compiles are deterministic functions of their digest, so *losing every
replica of an artifact is not a correctness event* -- the next request
recompiles byte-identical content; replication only buys locality and
latency.  Three self-healing loops keep the farm at full replication
and membership without waiting for a request to trip over a failure:

* the router's **health-probe loop** demotes a node that fails
  ``suspect_after`` consecutive probes and *rejoins* a departed node
  that answers alive-and-ready again (map bump + targeted ``repair``);
* each node's **anti-entropy sweep** pulls peer digest inventories and
  adopts -- hash + semantically re-verified, exactly like read repair
  -- replicas of owned digests it is missing, so a lost
  fire-and-forget push only leaves R unmet until the next sweep;
* every **amend epoch is replicated with resume metadata** to the
  root's co-owners: when a stream's primary dies, the new owner
  rebuilds the live engine from the latest replicated epoch artifact
  (:meth:`~repro.service.amend.AmendStream.resume`) and continues the
  digest chain; a racing stale client gets a typed ``EpochConflict``
  carrying the current epoch *and digest*, never a fork.

Nothing is ever silently wrong: every farm failure mode is a typed
error or a byte-identical reply.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import random
from pathlib import Path
from typing import Any, Callable

from repro.compiler.serialize import artifact_digest
from repro.service.amend import AmendStream, amend_root_digest
from repro.service.cache import ArtifactCache
from repro.service.canonical import canonicalize
from repro.service.client import (
    AsyncCompileClient,
    _amend_request,
    _compile_request,
)
from repro.service.compile import artifact_verifier, compile_digest
from repro.service.errors import (
    ProtocolError,
    ServerError,
    ServiceError,
    ServiceTimeout,
    TransportError,
    WrongShard,
    error_fields,
    reply_error,
)
from repro.service.policy import MAX_LINE_BYTES, ServerPolicy, request_digest
from repro.service.server import CompileServer, _parse_pattern
from repro.service.specs import (
    TopologySpecError,
    topology_from_spec,
    topology_to_spec,
)

__all__ = [
    "HashRing",
    "ShardMap",
    "FarmNodeServer",
    "ShardRouter",
    "AsyncFarmClient",
    "Farm",
    "route_digest",
    "sum_stats",
]

#: Virtual nodes per physical node on the ring.  64 keeps the largest
#: arc within a few percent of fair share at farm sizes that fit one
#: router, while a membership change still only re-hashes 64 points.
DEFAULT_VNODES = 64


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------

class HashRing:
    """Consistent-hash ring over node names (sha256, 64-bit points)."""

    def __init__(self, nodes: Any, *, vnodes: int = DEFAULT_VNODES) -> None:
        self.vnodes = int(vnodes)
        self._nodes = sorted(set(nodes))
        points: list[tuple[int, str]] = []
        for node in self._nodes:
            for v in range(self.vnodes):
                h = hashlib.sha256(f"{node}#{v}".encode("utf-8")).digest()
                points.append((int.from_bytes(h[:8], "big"), node))
        points.sort()
        self._points = points
        self._keys = [p[0] for p in points]

    def __len__(self) -> int:
        return len(self._nodes)

    def owners(self, digest: str, count: int) -> list[str]:
        """The next ``count`` distinct nodes clockwise from ``digest``.

        ``owners()[0]`` is the *primary*; replicas follow in ring
        order, so every map agrees on the ordering, not just the set.
        """
        if not self._points:
            return []
        count = min(int(count), len(self._nodes))
        point = int.from_bytes(
            hashlib.sha256(digest.encode("utf-8")).digest()[:8], "big"
        )
        start = bisect.bisect_right(self._keys, point) % len(self._points)
        out: list[str] = []
        for k in range(len(self._points)):
            node = self._points[(start + k) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) == count:
                    break
        return out


class ShardMap:
    """Versioned farm membership: endpoints, replication, the ring.

    Immutable in practice -- membership changes produce a *new* map
    with a higher version (:meth:`without`), and every component adopts
    whichever map it has seen with the highest version.
    """

    def __init__(
        self,
        nodes: dict[str, dict[str, Any]],
        *,
        replication: int = 2,
        version: int = 1,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.nodes = {str(k): dict(v) for k, v in nodes.items()}
        self.replication = int(replication)
        self.version = int(version)
        self.vnodes = int(vnodes)
        self._ring = HashRing(self.nodes, vnodes=self.vnodes)

    def owners(self, digest: str) -> list[str]:
        return self._ring.owners(digest, self.replication)

    def endpoint(self, name: str) -> tuple[str, int]:
        ep = self.nodes[name]
        return str(ep["host"]), int(ep["port"])

    def without(self, name: str) -> "ShardMap":
        """A successor map (version + 1) with ``name`` removed."""
        nodes = {k: v for k, v in self.nodes.items() if k != name}
        return ShardMap(
            nodes, replication=self.replication,
            version=self.version + 1, vnodes=self.vnodes,
        )

    def with_node(self, name: str, endpoint: dict[str, Any]) -> "ShardMap":
        """A successor map (version + 1) with ``name`` (re-)admitted."""
        nodes = {k: dict(v) for k, v in self.nodes.items()}
        nodes[str(name)] = {
            "host": str(endpoint["host"]), "port": int(endpoint["port"]),
        }
        return ShardMap(
            nodes, replication=self.replication,
            version=self.version + 1, vnodes=self.vnodes,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "replication": self.replication,
            "vnodes": self.vnodes,
            "nodes": {k: dict(v) for k, v in self.nodes.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardMap":
        if not isinstance(data, dict) or not isinstance(data.get("nodes"), dict):
            raise ProtocolError(f"malformed shard map: {data!r}")
        return cls(
            data["nodes"],
            replication=int(data.get("replication", 2)),
            version=int(data.get("version", 1)),
            vnodes=int(data.get("vnodes", DEFAULT_VNODES)),
        )


def route_digest(
    req: dict[str, Any], *, default_scheduler: str = "combined"
) -> str | None:
    """The digest a request shards on (``None`` = not shardable).

    Mirrors exactly what the serving node will key its cache / amend
    registry with -- a ``compile`` routes on its canonical compile
    digest, an amend *open* on its root digest, an amend *update* on
    the root it names -- so router, client and node always agree on
    ownership without trusting anything but the request bytes.
    """
    op = req.get("op", "compile")
    if op == "compile":
        if "topology" not in req:
            raise ProtocolError("compile request needs 'topology'")
        topology = topology_from_spec(req["topology"])
        canonical = canonicalize(topology, _parse_pattern(req))
        scheduler = req.get("scheduler") or default_scheduler
        return compile_digest(topology, canonical, scheduler, req.get("kernel"))
    if op == "amend":
        if "root" in req:
            return str(req["root"])
        if "topology" not in req:
            raise ProtocolError("amend request needs 'topology'")
        topology = topology_from_spec(req["topology"])
        scheduler = req.get("scheduler") or default_scheduler
        return amend_root_digest(
            topology, _parse_pattern(req), scheduler, req.get("kernel")
        )
    return None


def sum_stats(docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Farm-wide totals: recursive sum of every numeric leaf.

    Strings, bools and ``None`` are identity/flag fields, not measures,
    and are skipped -- summing ``workers`` across nodes is meaningful,
    summing ``name`` is not.
    """
    out: dict[str, Any] = {}
    for doc in docs:
        _sum_into(out, doc)
    return out


def _sum_into(out: dict[str, Any], doc: dict[str, Any]) -> None:
    for key, value in doc.items():
        if isinstance(value, bool) or value is None or isinstance(value, str):
            continue
        if isinstance(value, dict):
            sub = out.setdefault(key, {})
            if isinstance(sub, dict):
                _sum_into(sub, value)
        elif isinstance(value, (int, float)):
            prev = out.get(key, 0)
            if isinstance(prev, (int, float)) and not isinstance(prev, bool):
                out[key] = prev + value


# ----------------------------------------------------------------------
# the farm node
# ----------------------------------------------------------------------

class FarmNodeServer(CompileServer):
    """A compile server that owns one shard of the digest space.

    Extends the verb set with ``shardmap`` (read the node's map),
    ``reshard`` (adopt a newer map), ``fetch`` (read one artifact for a
    peer), ``store`` (accept one replica, hash + semantically
    verified), ``digests`` (advertise the local inventory for
    anti-entropy) and ``repair`` (force one anti-entropy sweep).  The
    inherited ``compile``/``amend`` verbs gain an ownership gate: a
    request whose route digest this node does not own is refused with
    :class:`WrongShard` so a stale client or router can never populate
    the wrong shard.

    Self-healing: with ``anti_entropy_interval`` set the node
    periodically pulls peer inventories and adopts replicas of the
    digests *it* owns that it is missing -- closing the window a lost
    fire-and-forget push leaves open.  Every epoch of an amend stream
    is replicated to the root's other owners with resume metadata, so
    a new primary can take the stream over after its old primary died
    (:meth:`_maybe_takeover`).

    Chaos hooks (injected by the harness, inert by default):
    ``peer_filter(src, dst)`` false-returns simulate one-way network
    partitions on every peer request; ``drop_replica_push_rate``
    silently loses that fraction of replica pushes.
    """

    def __init__(
        self, *args: Any, name: str, shard_map: ShardMap,
        peer_timeout: float = 10.0,
        anti_entropy_interval: float | None = None,
        push_retry_delay: float = 0.05,
        peer_filter: Callable[[str, str], bool] | None = None,
        drop_replica_push_rate: float = 0.0,
        chaos_seed: int | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.name = str(name)
        self.shard_map = shard_map
        self.peer_timeout = float(peer_timeout)
        self.anti_entropy_interval = (
            float(anti_entropy_interval) if anti_entropy_interval else None
        )
        self.push_retry_delay = float(push_retry_delay)
        self.peer_filter = peer_filter
        self.drop_replica_push_rate = float(drop_replica_push_rate)
        self._rng = random.Random(chaos_seed)
        self._repl_tasks: set[asyncio.Task] = set()
        self._ae_task: asyncio.Task | None = None
        self._sweep_lock = asyncio.Lock()
        self.wrong_shard = 0
        self.replicas_pushed = 0
        self.replicas_received = 0
        self.replica_push_failures = 0
        self.replica_push_retries = 0
        self.replica_pushes_dropped = 0
        self.replicas_repaired = 0
        self.anti_entropy_rounds = 0
        self.amend_takeovers = 0
        self.read_repairs = 0
        self.read_repair_failures = 0
        #: digest -> topology spec it was compiled for.  Artifact
        #: documents carry only the topology *signature* (a string,
        #: not invertible), so semantic re-verification of a replica
        #: needs the spec carried out-of-band; this index feeds the
        #: ``digests`` inventory and the ``store`` push payloads.
        self._specs: dict[str, dict[str, Any]] = {}
        #: amend root -> latest replicated head metadata (digest,
        #: epoch, scheduler, kernel, topology_spec) -- what a takeover
        #: resumes from.
        self._amend_heads: dict[str, dict[str, Any]] = {}
        #: one-shot reuse of the ownership check's canonicalization by
        #: the inherited compile path (keyed by request identity).
        self._key_memo: dict[int, Any] = {}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "FarmNodeServer":
        await super().start()
        if self.anti_entropy_interval:
            self._ae_task = asyncio.ensure_future(self._anti_entropy_loop())
        return self

    async def _cancel_background(self, *, drain: bool) -> None:
        if self._ae_task is not None:
            self._ae_task.cancel()
            await asyncio.gather(self._ae_task, return_exceptions=True)
            self._ae_task = None
        if not drain:
            for task in list(self._repl_tasks):
                task.cancel()
        if self._repl_tasks:
            await asyncio.gather(*self._repl_tasks, return_exceptions=True)
            self._repl_tasks.clear()

    async def kill(self) -> None:
        await self._cancel_background(drain=False)
        await super().kill()

    async def shutdown(self) -> None:
        await self._cancel_background(drain=True)
        await super().shutdown()

    # -- verbs ----------------------------------------------------------
    async def _handle_op(self, op: str, req: dict[str, Any]) -> dict[str, Any]:
        if op == "shardmap":
            return self._reply(
                req, op="shardmap", shard_map=self.shard_map.as_dict()
            )
        if op == "reshard":
            return self._reshard(req)
        if op == "fetch":
            return self._fetch(req)
        if op == "store":
            return self._store_replica(req)
        if op == "digests":
            return self._digests(req)
        if op == "repair":
            return self._reply(
                req, op="repair", **await self._anti_entropy_sweep()
            )
        if op in ("compile", "amend"):
            if op == "compile":
                key = super()._compile_key(req)
                digest = key[3]
            else:
                key = None
                digest = route_digest(
                    req, default_scheduler=self.service.default_scheduler
                )
            owners = self.shard_map.owners(digest)
            if self.name not in owners:
                self.wrong_shard += 1
                raise WrongShard(
                    f"digest {digest[:12]}... is owned by {owners}, "
                    f"not {self.name!r}",
                    shard_map=self.shard_map.as_dict(), owners=owners,
                )
            if op == "compile":
                await self._read_repair(req, digest, owners)
                self._key_memo[id(req)] = key
                try:
                    reply = await super()._handle_op(op, req)
                finally:
                    self._key_memo.pop(id(req), None)
                if reply.get("ok"):
                    spec = req.get("topology")
                    if isinstance(spec, dict):
                        self._specs.setdefault(str(reply["digest"]), dict(spec))
                    if reply.get("cache") == "miss":
                        self._spawn_replication(str(reply["digest"]), owners)
                return reply
            # amend: this node is an owner.  If the stream's previous
            # primary died, reconstruct it from the replicated epoch
            # artifact *before* the registry is consulted.
            if "root" in req:
                self._maybe_takeover(str(req["root"]))
            reply = await super()._handle_op(op, req)
            if reply.get("ok"):
                self._replicate_amend_epoch(reply)
            return reply
        return await super()._handle_op(op, req)

    def _compile_key(self, req: dict[str, Any]):
        memo = self._key_memo.pop(id(req), None)
        if memo is not None:
            return memo
        return super()._compile_key(req)

    def _reshard(self, req: dict[str, Any]) -> dict[str, Any]:
        new = ShardMap.from_dict(req.get("shard_map"))
        adopted = new.version > self.shard_map.version
        if adopted:
            self.shard_map = new
        return self._reply(
            req, op="reshard", adopted=adopted,
            version=self.shard_map.version,
        )

    def _fetch(self, req: dict[str, Any]) -> dict[str, Any]:
        digest = str(req.get("digest") or "")
        if not digest:
            raise ProtocolError("fetch request needs 'digest'")
        doc = self.cache.get(digest)
        out = self._reply(req, op="fetch", digest=digest, found=doc is not None)
        if doc is not None:
            out["artifact"] = doc
            out["payload_sha256"] = artifact_digest(doc)
        return out

    def _store_replica(self, req: dict[str, Any]) -> dict[str, Any]:
        digest = str(req.get("digest") or "")
        doc = req.get("artifact")
        if not digest or not isinstance(doc, dict):
            raise ProtocolError("store request needs 'digest' and 'artifact'")
        if artifact_digest(doc) != req.get("payload_sha256"):
            raise ProtocolError("store payload integrity check failed")
        spec = req.get("topology_spec")
        if isinstance(spec, dict):
            # Same bar as read repair: hash proves transport integrity,
            # the semantic check proves the artifact is a valid
            # conflict-free schedule *for the topology it claims*.  A
            # lying spec fails the signature cross-check inside
            # verify_artifact.
            try:
                artifact_verifier(topology_from_spec(spec))(doc)
            except Exception as exc:
                raise ProtocolError(
                    f"replica failed semantic verification: {exc}"
                ) from None
            self._specs[digest] = dict(spec)
        self.cache.put(digest, doc)
        self.replicas_received += 1
        head = req.get("amend_head")
        if isinstance(head, dict):
            self._adopt_head(head)
        return self._reply(req, op="store", digest=digest, stored=True)

    def _digests(self, req: dict[str, Any]) -> dict[str, Any]:
        """Local inventory for anti-entropy: digest, payload hash, and
        (when known) the topology spec a puller needs to re-verify."""
        inventory: list[dict[str, Any]] = []
        for digest in sorted(self.cache.digests()):
            doc = self.cache.peek(digest)
            if doc is None:
                continue
            entry: dict[str, Any] = {
                "digest": digest, "payload_sha256": artifact_digest(doc),
            }
            spec = self._specs.get(digest)
            if spec is not None:
                entry["topology_spec"] = spec
            lineage = doc.get("lineage")
            if isinstance(lineage, dict):
                # Amend epochs place on their stream's *root*.
                entry["root"] = str(lineage.get("root", ""))
            inventory.append(entry)
        return self._reply(
            req, op="digests", inventory=inventory,
            amend_heads={r: dict(h) for r, h in self._amend_heads.items()},
        )

    # -- amend failover -------------------------------------------------
    def _adopt_head(self, head: dict[str, Any]) -> None:
        """Track the newest known epoch of a replicated amend stream."""
        try:
            root = str(head["root"])
            epoch = int(head["epoch"])
            digest = str(head["digest"])
        except (KeyError, TypeError, ValueError):
            return
        if not root or not digest:
            return
        current = self._amend_heads.get(root)
        if current is not None and int(current["epoch"]) >= epoch:
            return
        self._amend_heads[root] = {
            "root": root, "epoch": epoch, "digest": digest,
            "scheduler": str(
                head.get("scheduler") or self.service.default_scheduler
            ),
            "kernel": head.get("kernel"),
            "topology_spec": head.get("topology_spec"),
        }

    def _maybe_takeover(self, root: str) -> None:
        """Resume a replicated amend stream this node now owns.

        Runs when an amend update names a root the local registry has
        never served (the old primary died).  The replicated head
        metadata points at the latest epoch artifact; the stream is
        rebuilt through :meth:`AmendStream.resume` -- which re-routes
        and re-validates the stored schedule -- and adopted into the
        registry, continuing the stored lineage.  Epoch optimistic
        concurrency then works exactly as before the failover: a stale
        racer gets a typed ``EpochConflict``, never a fork.
        """
        if self.amends.knows(root):
            return  # live, or tombstoned for the registry's own resume
        head = self._amend_heads.get(root)
        if head is None:
            return
        spec = head.get("topology_spec")
        if not isinstance(spec, dict):
            return
        doc = self.cache.get(head["digest"])
        if doc is None or not isinstance(doc.get("lineage"), dict):
            return
        try:
            stream = AmendStream.resume(
                topology_from_spec(spec), doc,
                scheduler=head["scheduler"], kernel=head["kernel"],
                cache=self.cache,
            )
        except Exception:
            return  # unresumable artifact: the registry's typed
            #         "unknown amend root" answer stands
        if stream.root != root or stream.digest != head["digest"]:
            return  # head metadata does not match the artifact's lineage
        self.amends.adopt(stream)
        self.amend_takeovers += 1

    def _replicate_amend_epoch(self, reply: dict[str, Any]) -> None:
        """Push the new epoch artifact + resume metadata to co-owners.

        Called after every successful amend (open and update): the
        stream's current epoch artifact is replicated to the other
        owners of the *root* (streams place by root, not by epoch
        digest) so any of them can take the stream over if this
        primary dies.
        """
        root = str(reply.get("root") or "")
        stream = self.amends.peek(root)
        if stream is None:
            return
        try:
            spec = topology_to_spec(stream.topology)
        except TopologySpecError:
            return  # unspeccable topology: stream stays primary-only
        digest = str(stream.digest)
        self._specs[digest] = spec
        head = {
            "root": root, "epoch": int(stream.epoch), "digest": digest,
            "scheduler": stream.scheduler, "kernel": stream.kernel,
            "topology_spec": spec,
        }
        self._adopt_head(head)
        self._spawn_replication(
            digest, self.shard_map.owners(root), spec=spec, amend_head=head,
        )

    # -- replication / read-repair -------------------------------------
    def _spawn_replication(
        self,
        digest: str,
        owners: list[str],
        *,
        spec: dict[str, Any] | None = None,
        amend_head: dict[str, Any] | None = None,
    ) -> None:
        """Push a freshly compiled artifact to the other owners.

        Fire-and-forget: replication buys locality, not correctness
        (compiles are deterministic), so a failed push is a counter,
        never an error on the client's reply.  The payload carries the
        topology spec so receivers can verify semantically, and -- for
        amend epochs -- the resume metadata a takeover needs.
        """
        doc = self.cache.get(digest)
        if doc is None:
            return
        payload = {
            "op": "store", "digest": digest, "artifact": doc,
            "payload_sha256": artifact_digest(doc),
        }
        if spec is None:
            spec = self._specs.get(digest)
        if spec is not None:
            payload["topology_spec"] = spec
        if amend_head is not None:
            payload["amend_head"] = amend_head
        for peer in owners:
            if peer == self.name or peer not in self.shard_map.nodes:
                continue
            task = asyncio.ensure_future(self._push_replica(peer, payload))
            self._repl_tasks.add(task)
            task.add_done_callback(self._repl_tasks.discard)

    async def _push_replica(self, peer: str, payload: dict[str, Any]) -> None:
        """One replica push: a single bounded retry (with jitter) before
        giving up, so one transient peer hiccup does not leave R unmet
        until the next anti-entropy sweep."""
        if (
            self.drop_replica_push_rate
            and self._rng.random() < self.drop_replica_push_rate
        ):
            # Injected chaos: the push is lost in transit, silently --
            # exactly the failure mode anti-entropy exists to repair.
            self.replica_pushes_dropped += 1
            self.replica_push_failures += 1
            return
        for attempt in (0, 1):
            try:
                await self._peer_request(peer, payload)
                self.replicas_pushed += 1
                return
            except ServiceError:
                if attempt:
                    self.replica_push_failures += 1
                    return
                self.replica_push_retries += 1
                await asyncio.sleep(
                    self.push_retry_delay * (0.5 + self._rng.random())
                )

    async def _read_repair(
        self, req: dict[str, Any], digest: str, owners: list[str]
    ) -> None:
        """Adopt a peer replica before paying for a recompile.

        Runs on the serve path of a local miss -- including the miss a
        *corrupt* local entry turns into once the verifier quarantines
        it.  A peer copy is accepted only after its transported hash
        matches a local re-hash **and** it passes the same semantic
        verification a cache read gets; anything else counts as a
        failed repair and the cold-compile path takes over.
        """
        topology = topology_from_spec(req["topology"])
        verifier = artifact_verifier(topology)
        local = self.cache.get(digest, verifier=verifier)
        want_registers = bool(req.get("registers", False))
        if local is not None and (not want_registers or "registers" in local):
            return
        for peer in owners:
            if peer == self.name or peer not in self.shard_map.nodes:
                continue
            try:
                reply = await self._peer_request(
                    peer, {"op": "fetch", "digest": digest}
                )
            except ServiceError:
                self.read_repair_failures += 1
                continue
            doc = reply.get("artifact")
            if not isinstance(doc, dict):
                continue  # clean peer miss: nothing to repair from
            if want_registers and "registers" not in doc:
                continue
            try:
                if artifact_digest(doc) != reply.get("payload_sha256"):
                    raise ProtocolError("replica hash mismatch")
                verifier(doc)  # raises on a semantically bad replica
            except Exception:
                self.read_repair_failures += 1
                continue
            self.cache.put(digest, doc)
            self._specs.setdefault(digest, dict(req["topology"]))
            self.read_repairs += 1
            return

    # -- anti-entropy ---------------------------------------------------
    async def _anti_entropy_loop(self) -> None:
        assert self.anti_entropy_interval is not None
        try:
            while True:
                await asyncio.sleep(self.anti_entropy_interval)
                try:
                    await self._anti_entropy_sweep()
                except Exception:  # noqa: BLE001 - the loop must survive
                    pass
        except asyncio.CancelledError:
            pass

    async def _anti_entropy_sweep(self) -> dict[str, Any]:
        """One pull round: adopt owned-but-missing replicas from peers.

        For every peer inventory entry whose placement key (the lineage
        root for amend epochs, the digest itself otherwise) this node
        owns, a local miss -- or a payload-hash mismatch -- triggers a
        fetch that is hash + semantically re-verified exactly like read
        repair before adoption.  Entries without a known topology spec
        are never adopted blind.  Amend head metadata rides along so a
        future takeover has resume state even when the head push itself
        was lost.
        """
        async with self._sweep_lock:
            self.anti_entropy_rounds += 1
            repaired = failures = 0
            for peer in list(self.shard_map.nodes):
                if peer == self.name:
                    continue
                try:
                    reply = await self._peer_request(peer, {"op": "digests"})
                except ServiceError:
                    failures += 1
                    continue
                heads = reply.get("amend_heads")
                if isinstance(heads, dict):
                    for head in heads.values():
                        if isinstance(head, dict):
                            self._adopt_head(head)
                for entry in reply.get("inventory") or ():
                    if not isinstance(entry, dict):
                        continue
                    digest = str(entry.get("digest") or "")
                    remote_hash = entry.get("payload_sha256")
                    if not digest or not isinstance(remote_hash, str):
                        continue
                    owner_key = str(entry.get("root") or digest)
                    if self.name not in self.shard_map.owners(owner_key):
                        continue
                    local = self.cache.peek(digest)
                    if local is not None and artifact_digest(local) == remote_hash:
                        continue
                    spec = entry.get("topology_spec") or self._specs.get(digest)
                    if not isinstance(spec, dict):
                        continue
                    outcome = await self._repair_from(peer, digest, spec, local)
                    if outcome is True:
                        repaired += 1
                    elif outcome is False:
                        failures += 1
            self.replicas_repaired += repaired
            return {
                "repaired": repaired,
                "failures": failures,
                "rounds": self.anti_entropy_rounds,
            }

    async def _repair_from(
        self,
        peer: str,
        digest: str,
        spec: dict[str, Any],
        local: dict[str, Any] | None,
    ) -> bool | None:
        """Fetch + verify + adopt one replica (True/False/None=skipped)."""
        try:
            reply = await self._peer_request(
                peer, {"op": "fetch", "digest": digest}
            )
        except ServiceError:
            return False
        doc = reply.get("artifact")
        if not isinstance(doc, dict):
            return None  # the peer lost it between inventory and fetch
        try:
            if artifact_digest(doc) != reply.get("payload_sha256"):
                raise ProtocolError("replica hash mismatch")
            artifact_verifier(topology_from_spec(spec))(doc)
        except Exception:
            return False
        if local is not None and not (
            "registers" in doc and "registers" not in local
        ):
            # Both copies verified but hashes differ: the one
            # legitimate cause is the in-place registers upgrade (same
            # digest, superset document).  Anything else keeps the
            # local copy -- adopting would just flap between replicas.
            return None
        self.cache.put(digest, doc)
        self._specs[digest] = dict(spec)
        return True

    async def _peer_request(
        self, peer: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """One request/reply round trip to a peer node (fresh conn)."""
        if self.peer_filter is not None and not self.peer_filter(self.name, peer):
            raise TransportError(
                f"peer {peer!r} unreachable from {self.name!r}: partitioned"
            )
        host, port = self.shard_map.endpoint(peer)
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        except OSError as exc:
            raise TransportError(f"peer {peer!r} unreachable: {exc}") from exc
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.peer_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            raise ServiceTimeout(
                f"peer {peer!r} gave no reply within {self.peer_timeout}s"
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise TransportError(
                f"peer {peer!r} connection failed: {exc}"
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        if not line or not line.endswith(b"\n"):
            raise TransportError(f"peer {peer!r} cut mid-reply")
        try:
            reply = json.loads(line)
        except ValueError as exc:
            raise ProtocolError(f"peer {peer!r} malformed reply: {exc}") from None
        if not isinstance(reply, dict):
            raise ProtocolError(f"peer {peer!r} malformed reply: {reply!r}")
        if not reply.get("ok"):
            raise reply_error(reply)
        return reply

    # -- stats ----------------------------------------------------------
    def _stats(self) -> dict[str, Any]:
        out = super()._stats()
        out["farm"] = {
            "name": self.name,
            "map_version": self.shard_map.version,
            "wrong_shard": self.wrong_shard,
            "replicas_pushed": self.replicas_pushed,
            "replicas_received": self.replicas_received,
            "replica_push_failures": self.replica_push_failures,
            "replica_push_retries": self.replica_push_retries,
            "replica_pushes_dropped": self.replica_pushes_dropped,
            "replicas_repaired": self.replicas_repaired,
            "anti_entropy_rounds": self.anti_entropy_rounds,
            "amend_takeovers": self.amend_takeovers,
            "amend_heads": len(self._amend_heads),
            "read_repairs": self.read_repairs,
            "read_repair_failures": self.read_repair_failures,
        }
        return out

    def _health(self) -> dict[str, Any]:
        out = super()._health()
        out["farm"] = {"name": self.name, "map_version": self.shard_map.version}
        return out


# ----------------------------------------------------------------------
# the shard router
# ----------------------------------------------------------------------

class ShardRouter:
    """Routes requests to owning nodes; owns membership and failover.

    Forwarding is **byte-transparent**: the router parses the request
    only to compute its route digest, then writes the original line to
    the node and relays the node's reply line verbatim -- the client's
    ``idem`` echo and ``payload_sha256`` checks therefore cover the
    full client-router-node path with no re-serialization in between.

    A forward that dies on transport (or times out) demotes the node:
    it is removed from the map, the version is bumped, survivors get a
    ``reshard`` push, and the request retries against the digest's new
    owner.  A ``wrong_shard`` reply from a node with an *older* map
    gets the router's map pushed and one retry -- the router is the
    authority, nodes converge to it.

    With ``probe_interval`` set the router also probes **actively**: a
    background loop sends ``health`` to every member; ``suspect_after``
    consecutive probe failures demote the node (dead nodes are detected
    even when no request happens to hit them).  Demoted and departed
    nodes keep being probed at their last known endpoint, and a node
    that answers alive-and-ready again is **rejoined**: re-admitted
    under a bumped map that is pushed farm-wide, then told to ``repair``
    -- one targeted anti-entropy sweep that pulls every artifact the
    new map assigns to it.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        default_scheduler: str = "combined",
        node_timeout: float = 120.0,
        max_attempts: int = 6,
        pool_idle: int = 8,
        probe_interval: float | None = None,
        probe_timeout: float = 1.0,
        suspect_after: int = 2,
        rejoin: bool = True,
    ) -> None:
        self.shard_map = shard_map
        self.host, self.port = host, port
        self.default_scheduler = default_scheduler
        self.node_timeout = float(node_timeout)
        self.max_attempts = int(max_attempts)
        self.pool_idle = int(pool_idle)
        self.probe_interval = float(probe_interval) if probe_interval else None
        self.probe_timeout = float(probe_timeout)
        self.suspect_after = max(1, int(suspect_after))
        self.rejoin = bool(rejoin)
        self._server: asyncio.AbstractServer | None = None
        self._pools: dict[
            str, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ] = {}
        self._demote_lock = asyncio.Lock()
        self._probe_task: asyncio.Task | None = None
        #: name -> consecutive probe-failure count (the suspect state).
        self._suspect: dict[str, int] = {}
        #: name -> last known endpoint of nodes no longer in the map --
        #: fed by every demotion and skew adoption, drained by rejoin.
        self._departed: dict[str, dict[str, Any]] = {}
        self.requests_served = 0
        self.forwarded = 0
        self.rerouted = 0
        self.failovers = 0
        self.probe_rounds = 0
        self.probes_sent = 0
        self.probe_failures = 0
        self.probe_demotions = 0
        self.rejoins = 0

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "router not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "ShardRouter":
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port,
            limit=MAX_LINE_BYTES,
        )
        if self.probe_interval:
            self._probe_task = asyncio.ensure_future(self._probe_loop())
        return self

    async def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            await asyncio.gather(self._probe_task, return_exceptions=True)
            self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conns in self._pools.values():
            for _, writer in conns:
                writer.close()
        self._pools.clear()

    # -- connection handling -------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as exc:
                    line = exc.partial
                    if not line:
                        break
                except asyncio.LimitOverrunError:
                    err = ProtocolError(
                        f"frame exceeds {MAX_LINE_BYTES} bytes"
                    )
                    writer.write(json.dumps(
                        {"id": None, "ok": False, **error_fields(err)}
                    ).encode() + b"\n")
                    await writer.drain()
                    break
                if not line.strip():
                    break
                writer.write(await self._route(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _route(self, line: bytes) -> bytes:
        """One raw request line to one raw reply line."""
        req: Any = {}
        try:
            try:
                req = json.loads(line)
            except (ValueError, UnicodeDecodeError) as exc:
                raise ProtocolError(f"bad JSON frame: {exc}") from None
            if not isinstance(req, dict):
                raise ProtocolError("request must be a JSON object")
            self.requests_served += 1
            op = req.get("op", "compile")
            if op == "ping":
                return self._local_reply(req, op="ping")
            if op == "shardmap":
                return self._local_reply(
                    req, op="shardmap", shard_map=self.shard_map.as_dict()
                )
            if op in ("stats", "health"):
                return await self._aggregate(req, op)
            if op == "ready":
                return self._local_reply(
                    req, op="ready", ready=bool(self.shard_map.nodes)
                )
            if op == "shutdown":
                return await self._shutdown_farm(req)
            if op in ("compile", "amend"):
                return await self._forward(line, req)
            raise ProtocolError(f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            req = req if isinstance(req, dict) else {}
            return json.dumps(
                {"id": req.get("id"), "ok": False, **error_fields(exc)}
            ).encode() + b"\n"

    def _local_reply(self, req: dict[str, Any], **payload: Any) -> bytes:
        out = {"id": req.get("id"), "ok": True, **payload}
        if "idem" in req:
            out["idem"] = request_digest(req)
        return json.dumps(out).encode() + b"\n"

    # -- forwarding -----------------------------------------------------
    async def _forward(self, line: bytes, req: dict[str, Any]) -> bytes:
        if not line.endswith(b"\n"):
            line += b"\n"
        last_error: ServiceError = ServerError("no live farm nodes")
        for attempt in range(self.max_attempts):
            digest = route_digest(
                req, default_scheduler=self.default_scheduler
            )
            owners = self.shard_map.owners(digest)
            if not owners:
                raise ServerError("no live farm nodes")
            target = owners[0]
            try:
                reply_line = await self._node_request_raw(target, line)
            except (TransportError, ServiceTimeout) as exc:
                last_error = exc
                await self._demote(target)
                continue
            self.forwarded += 1
            try:
                reply = json.loads(reply_line)
            except ValueError:
                # Unparseable node reply: relay as-is; the client's
                # frame/integrity checks own this failure mode.
                return reply_line
            if (
                isinstance(reply, dict)
                and not reply.get("ok")
                and reply.get("error_type") == WrongShard.code
            ):
                # Map skew: the node is behind (or we are).  Adopt the
                # newer map, push ours if the node's is older, retry.
                self.rerouted += 1
                node_map = reply.get("shard_map")
                if isinstance(node_map, dict):
                    try:
                        new = ShardMap.from_dict(node_map)
                    except ProtocolError:
                        new = None
                    if new is not None and new.version > self.shard_map.version:
                        self._adopt_map(new)
                        continue
                await self._push_map(target)
                continue
            return reply_line
        raise last_error

    # -- membership -----------------------------------------------------
    def _adopt_map(self, new: ShardMap) -> None:
        """Switch maps, retiring state of every removed node.

        Used by *every* membership change -- demote, rejoin, and skew
        adoption in :meth:`_forward` -- so a node leaving the map can
        never leave idle pooled connections open until process exit.
        Removed nodes keep their last known endpoint in ``_departed``
        so the probe loop can offer them rejoin.
        """
        removed = set(self.shard_map.nodes) - set(new.nodes)
        for name in removed:
            self._departed.setdefault(name, dict(self.shard_map.nodes[name]))
            self._suspect.pop(name, None)
            for _, writer in self._pools.pop(name, []):
                writer.close()
        self.shard_map = new

    async def _demote(self, name: str) -> None:
        """A node died on us: remove it, bump the map, reshard the rest."""
        async with self._demote_lock:
            if name not in self.shard_map.nodes:
                return  # a concurrent request already demoted it
            self._adopt_map(self.shard_map.without(name))
            self.failovers += 1
            for peer in list(self.shard_map.nodes):
                await self._push_map(peer)

    async def _rejoin(self, name: str, endpoint: dict[str, Any]) -> None:
        """Re-admit a probed-alive departed node.

        Map bump first (pushed farm-wide, including to the rejoined
        node, whose own stale map loses the version race), then one
        targeted ``repair``: the node pulls every artifact the new map
        assigns to it, restoring replication factor for its key ranges
        without waiting for a periodic sweep.
        """
        async with self._demote_lock:
            if name in self.shard_map.nodes:
                return
            self._adopt_map(self.shard_map.with_node(name, endpoint))
            self._departed.pop(name, None)
            self._suspect.pop(name, None)
            self.rejoins += 1
        for peer in list(self.shard_map.nodes):
            await self._push_map(peer)
        try:
            await self._node_request_raw(name, b'{"op": "repair"}\n')
        except ServiceError:
            pass  # the node's own anti-entropy loop will catch it up

    # -- active health probing ------------------------------------------
    async def _probe_loop(self) -> None:
        assert self.probe_interval is not None
        try:
            while True:
                await asyncio.sleep(self.probe_interval)
                try:
                    await self.probe_round()
                except Exception:  # noqa: BLE001 - the loop must survive
                    pass
        except asyncio.CancelledError:
            pass

    async def probe_round(self) -> dict[str, Any]:
        """One membership pass: probe members, then offer rejoins.

        A member failing ``suspect_after`` consecutive probes is
        demoted -- the suspect state tolerates one dropped probe
        without churning the map.  Departed nodes are probed at their
        last known endpoint; alive **and ready** gets them rejoined
        (a draining node answers health ok but not ready, and must not
        be re-admitted).
        """
        self.probe_rounds += 1
        for name in list(self.shard_map.nodes):
            try:
                host, port = self.shard_map.endpoint(name)
            except KeyError:
                continue  # demoted by a concurrent request mid-round
            self.probes_sent += 1
            alive, _ready = await self._probe_endpoint(host, port)
            if alive:
                self._suspect.pop(name, None)
                continue
            self.probe_failures += 1
            count = self._suspect.get(name, 0) + 1
            self._suspect[name] = count
            if count >= self.suspect_after:
                self.probe_demotions += 1
                await self._demote(name)
        if self.rejoin:
            for name, endpoint in list(self._departed.items()):
                if name in self.shard_map.nodes:
                    self._departed.pop(name, None)
                    continue
                self.probes_sent += 1
                alive, ready = await self._probe_endpoint(
                    str(endpoint["host"]), int(endpoint["port"])
                )
                if alive and ready:
                    await self._rejoin(name, endpoint)
        return {
            "suspect": dict(self._suspect),
            "departed": sorted(self._departed),
        }

    async def _probe_endpoint(self, host: str, port: int) -> tuple[bool, bool]:
        """One ``health`` probe -> ``(alive, ready)``.  Never raises."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=MAX_LINE_BYTES),
                timeout=self.probe_timeout,
            )
        except (OSError, asyncio.TimeoutError, TimeoutError):
            return False, False
        try:
            writer.write(b'{"op": "health"}\n')
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.probe_timeout
            )
            reply = json.loads(line)
            if not isinstance(reply, dict) or not reply.get("ok"):
                return False, False
            return True, bool(reply.get("ready"))
        except (asyncio.TimeoutError, TimeoutError, ConnectionResetError,
                BrokenPipeError, OSError, ValueError):
            return False, False
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _push_map(self, name: str) -> None:
        """Best-effort ``reshard`` push; a dead target demotes on use."""
        req = json.dumps(
            {"op": "reshard", "shard_map": self.shard_map.as_dict()}
        ).encode() + b"\n"
        try:
            await self._node_request_raw(name, req)
        except ServiceError:
            pass

    # -- node connections (pooled, one in-flight request each) ---------
    async def _node_request_raw(self, name: str, line: bytes) -> bytes:
        conn = await self._acquire(name)
        reader, writer = conn
        try:
            writer.write(line)
            await writer.drain()
            reply = await asyncio.wait_for(
                reader.readline(), timeout=self.node_timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            writer.close()
            raise ServiceTimeout(
                f"node {name!r} gave no reply within {self.node_timeout}s"
            ) from None
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            writer.close()
            raise TransportError(f"node {name!r} died mid-request: {exc}") from exc
        if not reply or not reply.endswith(b"\n"):
            writer.close()
            raise TransportError(f"node {name!r} cut mid-reply")
        self._release(name, conn)
        return reply

    async def _acquire(
        self, name: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        pool = self._pools.setdefault(name, [])
        while pool:
            reader, writer = pool.pop()
            if not writer.is_closing():
                return reader, writer
            writer.close()
        try:
            host, port = self.shard_map.endpoint(name)
        except KeyError:
            raise TransportError(f"node {name!r} is not in the shard map") from None
        try:
            return await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        except OSError as exc:
            raise TransportError(f"node {name!r} unreachable: {exc}") from exc

    def _release(
        self,
        name: str,
        conn: tuple[asyncio.StreamReader, asyncio.StreamWriter],
    ) -> None:
        pool = self._pools.setdefault(name, [])
        if name in self.shard_map.nodes and len(pool) < self.pool_idle:
            pool.append(conn)
        else:
            conn[1].close()

    # -- aggregation (stats / health across the farm) -------------------
    async def _aggregate(self, req: dict[str, Any], op: str) -> bytes:
        """Per-node breakdown plus farm-wide numeric totals."""
        per_node: dict[str, dict[str, Any]] = {}
        down: list[str] = []
        probe = json.dumps({"op": op}).encode() + b"\n"
        for name in list(self.shard_map.nodes):
            try:
                line = await self._node_request_raw(name, probe)
                reply = json.loads(line)
            except (ServiceError, ValueError):
                down.append(name)
                continue
            if not isinstance(reply, dict) or not reply.get("ok"):
                down.append(name)
                continue
            per_node[name] = {
                k: v for k, v in reply.items()
                if k not in ("id", "ok", "op", "idem")
            }
        farm_docs = [
            doc["farm"] for doc in per_node.values()
            if isinstance(doc.get("farm"), dict)
        ]

        def _total(field: str) -> int:
            return sum(int(d.get(field, 0) or 0) for d in farm_docs)

        out = {
            "nodes": per_node,
            "farm": sum_stats(list(per_node.values())),
            "down": down,
            "router": {
                "requests": self.requests_served,
                "forwarded": self.forwarded,
                "rerouted": self.rerouted,
                "failovers": self.failovers,
                "map_version": self.shard_map.version,
                "live_nodes": len(self.shard_map.nodes),
                "probe_rounds": self.probe_rounds,
                "probes_sent": self.probes_sent,
                "probe_failures": self.probe_failures,
                "probe_demotions": self.probe_demotions,
                "rejoins": self.rejoins,
                "suspect": dict(self._suspect),
                "departed": sorted(self._departed),
            },
            # Farm-wide replication posture in one block, so
            # under-replication (push failures nobody retried) is
            # visible without digging through per-node breakdowns.
            "replication": {
                "pushed": _total("replicas_pushed"),
                "received": _total("replicas_received"),
                "push_failures": _total("replica_push_failures"),
                "push_retries": _total("replica_push_retries"),
                "pushes_dropped": _total("replica_pushes_dropped"),
                "repaired": _total("replicas_repaired"),
                "anti_entropy_rounds": _total("anti_entropy_rounds"),
                "read_repairs": _total("read_repairs"),
                "amend_takeovers": _total("amend_takeovers"),
            },
            "shard_map": self.shard_map.as_dict(),
        }
        if op == "health":
            out["ready"] = any(
                bool(doc.get("ready")) for doc in per_node.values()
            )
        return self._local_reply(req, op=op, **out)

    async def _shutdown_farm(self, req: dict[str, Any]) -> bytes:
        """Forward ``shutdown`` to every node, then stop routing."""
        if self._server is not None:
            self._server.close()
        line = json.dumps({"op": "shutdown"}).encode() + b"\n"
        for name in list(self.shard_map.nodes):
            try:
                await self._node_request_raw(name, line)
            except ServiceError:
                pass
        return self._local_reply(req, op="shutdown")


# ----------------------------------------------------------------------
# the shard-map-carrying client
# ----------------------------------------------------------------------

class AsyncFarmClient:
    """Farm client: direct-to-shard on warm state, router on trouble.

    Holds one :class:`AsyncCompileClient` per node plus one for the
    router.  Shardable requests are sent straight to an owner computed
    from the carried map (read load spread across replicas by digest;
    amends pinned to the primary).  A :class:`WrongShard` reply hands
    us the node's newer map and the request is re-aimed in-line; a
    node that cannot be reached at all falls back to the router --
    which performs failover -- and the map is re-fetched afterwards.
    """

    #: bounded in-line redirects before deferring to the router.
    MAX_REDIRECTS = 4

    def __init__(
        self,
        router_address: tuple[str, int],
        *,
        shard_map: ShardMap | None = None,
        timeout: float | None = None,
        default_scheduler: str = "combined",
    ) -> None:
        self.router_address = (str(router_address[0]), int(router_address[1]))
        self.shard_map = shard_map
        self.timeout = timeout
        self.default_scheduler = default_scheduler
        self._router = AsyncCompileClient(*self.router_address, timeout=timeout)
        self._nodes: dict[str, AsyncCompileClient] = {}
        self._next_id = 0
        self.direct = 0
        self.via_router = 0
        self.map_refreshes = 0

    async def connect(self) -> "AsyncFarmClient":
        await self._router.connect()
        if self.shard_map is None:
            await self.refresh_map()
        return self

    async def close(self) -> None:
        for client in self._nodes.values():
            await client.close()
        self._nodes.clear()
        await self._router.close()

    async def __aenter__(self) -> "AsyncFarmClient":
        return await self.connect()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def refresh_map(self) -> ShardMap:
        reply = await self._router.request({"op": "shardmap"})
        self._adopt(ShardMap.from_dict(reply["shard_map"]))
        assert self.shard_map is not None
        return self.shard_map

    def _adopt(self, new: ShardMap) -> None:
        if self.shard_map is not None and new.version <= self.shard_map.version:
            return
        self.shard_map = new
        self.map_refreshes += 1
        for name in list(self._nodes):
            if name not in new.nodes:
                # Close lazily: the transport teardown needs no await
                # to stop the client being *used*.
                stale = self._nodes.pop(name)
                asyncio.ensure_future(stale.close())

    def _node_client(self, name: str) -> AsyncCompileClient:
        client = self._nodes.get(name)
        if client is None:
            assert self.shard_map is not None
            host, port = self.shard_map.endpoint(name)
            # No client-side retries against a single node: the farm
            # fallback (router failover) *is* the retry.
            client = AsyncCompileClient(host, port, timeout=self.timeout,
                                        retry=None)
            self._nodes[name] = client
        return client

    def _pick_owner(self, op: str, digest: str, owners: list[str]) -> str:
        if op == "amend":
            return owners[0]  # streams are primary-resident state
        # Spread reads/compiles across the replica set, deterministically
        # by digest so one artifact's requests still coalesce per node.
        return owners[int(digest[:8], 16) % len(owners)]

    async def request(self, req: dict[str, Any]) -> dict[str, Any]:
        op = req.get("op", "compile")
        if op not in ("compile", "amend") or self.shard_map is None:
            return await self._router.request(req)
        try:
            digest = route_digest(
                req, default_scheduler=self.default_scheduler
            )
        except ProtocolError:
            # Malformed request: let the router answer it with the
            # same typed error a node would.
            return await self._router.request(req)
        for _ in range(self.MAX_REDIRECTS):
            owners = self.shard_map.owners(digest)
            if not owners:
                break
            target = self._pick_owner(op, digest, owners)
            client = self._node_client(target)
            try:
                reply = await client.request(req)
            except WrongShard as exc:
                if isinstance(exc.shard_map, dict):
                    try:
                        newer = ShardMap.from_dict(exc.shard_map)
                    except ProtocolError:
                        break
                    if (
                        self.shard_map is None
                        or newer.version > self.shard_map.version
                    ):
                        self._adopt(newer)
                        continue
                break  # the *node* is stale; the router will sort it out
            except (TransportError, ServiceTimeout):
                break  # node unreachable: the router owns failover
            self.direct += 1
            return reply
        self.via_router += 1
        reply = await self._router.request(req)
        try:
            await self.refresh_map()
        except ServiceError:
            pass
        return reply

    # -- convenience verbs (mirror AsyncCompileClient) ------------------
    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def stats(self) -> dict[str, Any]:
        return await self.request({"op": "stats"})

    async def health(self) -> dict[str, Any]:
        return await self.request({"op": "health"})

    async def shutdown(self) -> dict[str, Any]:
        return await self.request({"op": "shutdown"})

    async def compile(
        self,
        topology: dict[str, Any],
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        registers: bool = False,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        self._next_id += 1
        return await self.request(
            _compile_request(
                topology, pattern=pattern, pairs=pairs, scheduler=scheduler,
                registers=registers, request_id=self._next_id,
                deadline=deadline,
            )
        )

    async def amend(
        self,
        topology: dict[str, Any] | None = None,
        *,
        pattern: dict[str, Any] | None = None,
        pairs: list | None = None,
        scheduler: str | None = None,
        root: str | None = None,
        epoch: int | None = None,
        add: list | None = None,
        remove: list | None = None,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        self._next_id += 1
        return await self.request(
            _amend_request(
                topology, pattern=pattern, pairs=pairs, scheduler=scheduler,
                root=root, epoch=epoch, add=add, remove=remove,
                request_id=self._next_id, deadline=deadline,
            )
        )


# ----------------------------------------------------------------------
# the in-process farm supervisor
# ----------------------------------------------------------------------

class Farm:
    """N farm nodes + one router in this process, for tests and benches.

    ``workers`` is *per node*: the default of 1 worker process per node
    means an N-node farm runs N cold compiles truly in parallel (each
    node owns a single-process pool), which is the scaling the farm
    benchmark measures.  ``workers=0`` keeps each node single-process
    (worker thread), the fully deterministic mode chaos tests use.
    """

    def __init__(
        self,
        nodes: int = 3,
        *,
        replication: int = 2,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        scheduler: str = "combined",
        policy: ServerPolicy | None = None,
        amend_streams: int | None = None,
        host: str = "127.0.0.1",
        node_timeout: float = 120.0,
        anti_entropy_interval: float | None = None,
        probe_interval: float | None = None,
        probe_timeout: float = 1.0,
        suspect_after: int = 2,
        chaos_seed: int | None = None,
    ) -> None:
        if nodes < 1:
            raise ValueError(f"a farm needs at least one node, got {nodes}")
        self.num_nodes = int(nodes)
        self.replication = max(1, min(int(replication), self.num_nodes))
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.scheduler = scheduler
        self.policy = policy
        self.amend_streams = amend_streams
        self.host = host
        self.node_timeout = float(node_timeout)
        self.anti_entropy_interval = anti_entropy_interval
        self.probe_interval = probe_interval
        self.probe_timeout = float(probe_timeout)
        self.suspect_after = int(suspect_after)
        self.chaos_seed = chaos_seed
        self.nodes: dict[str, FarmNodeServer] = {}
        self.dead: dict[str, FarmNodeServer] = {}
        self.router: ShardRouter | None = None
        #: original endpoint of every node ever started, so a killed
        #: node can be restarted on the same address (rejoin scenario).
        self.endpoints: dict[str, tuple[str, int]] = {}
        #: one-way blocked (src, dst) node pairs (chaos partitions);
        #: every node's ``peer_filter`` consults this shared table.
        self.partitions: set[tuple[str, str]] = set()
        self._router_endpoint: tuple[str, int] | None = None

    # -- chaos: partitions ----------------------------------------------
    def _peer_allowed(self, src: str, dst: str) -> bool:
        return (src, dst) not in self.partitions

    def partition(self, src: str, dst: str, *, both_ways: bool = False) -> None:
        """Block peer traffic ``src -> dst`` (one-way by default)."""
        self.partitions.add((src, dst))
        if both_ways:
            self.partitions.add((dst, src))

    def heal(self, src: str | None = None, dst: str | None = None) -> None:
        """Heal partitions: all, all touching ``src``, or one pair."""
        if src is None:
            self.partitions.clear()
        elif dst is None:
            self.partitions = {
                p for p in self.partitions if src not in p
            }
        else:
            self.partitions.discard((src, dst))

    def _make_node(
        self, name: str, index: int, shard_map: ShardMap, port: int
    ) -> FarmNodeServer:
        cache = ArtifactCache(
            self.cache_dir / name if self.cache_dir is not None else None
        )
        return FarmNodeServer(
            name=name,
            shard_map=shard_map,
            cache=cache,
            workers=self.workers,
            host=self.host,
            port=port,
            scheduler=self.scheduler,
            policy=self.policy,
            amend_streams=self.amend_streams,
            anti_entropy_interval=self.anti_entropy_interval,
            peer_filter=self._peer_allowed,
            chaos_seed=(
                None if self.chaos_seed is None else self.chaos_seed + index
            ),
        )

    async def start(self) -> "Farm":
        # Two-phase: bind every node on an ephemeral port first, then
        # build the v1 map from the real endpoints and hand it out.
        placeholder = ShardMap({}, replication=self.replication)
        for i in range(self.num_nodes):
            name = f"node{i}"
            node = self._make_node(name, i, placeholder, port=0)
            await node.start()
            self.nodes[name] = node
        endpoints = {
            name: {"host": node.address[0], "port": node.address[1]}
            for name, node in self.nodes.items()
        }
        self.endpoints = {
            name: (ep["host"], ep["port"]) for name, ep in endpoints.items()
        }
        shard_map = ShardMap(endpoints, replication=self.replication)
        for node in self.nodes.values():
            node.shard_map = shard_map
        self.router = ShardRouter(
            shard_map,
            host=self.host,
            default_scheduler=self.scheduler,
            node_timeout=self.node_timeout,
            probe_interval=self.probe_interval,
            probe_timeout=self.probe_timeout,
            suspect_after=self.suspect_after,
        )
        await self.router.start()
        self._router_endpoint = tuple(self.router.address)
        return self

    @property
    def router_address(self) -> tuple[str, int]:
        assert self.router is not None, "farm not started"
        return self.router.address

    def client(self, **kwargs: Any) -> AsyncFarmClient:
        return AsyncFarmClient(
            self.router_address,
            default_scheduler=self.scheduler,
            **kwargs,
        )

    async def kill_node(self, name: str) -> FarmNodeServer:
        """Abruptly crash one node (chaos): no drain, no goodbye."""
        node = self.nodes.pop(name)
        self.dead[name] = node
        await node.kill()
        return node

    async def restart_node(self, name: str) -> FarmNodeServer:
        """Restart a killed node on its original endpoint.

        The restart is process-death faithful: a disk-backed cache is
        reopened (crash recovery runs), a memory-only cache comes back
        *empty*, and the node carries the stale map it died with.
        Nothing tells the router -- re-admission happens through the
        probe loop's rejoin path, which is exactly what this method
        exists to exercise.
        """
        old = self.dead.pop(name)
        index = int(name.removeprefix("node")) if name.startswith("node") else 0
        host, port = self.endpoints[name]
        node = self._make_node(name, index, old.shard_map, port=port)
        await node.start()
        self.nodes[name] = node
        return node

    async def kill_router(self) -> None:
        """Abruptly stop the router (chaos): in-flight requests die."""
        assert self.router is not None, "farm not started"
        router = self.router
        self.router = None
        await router.stop()

    async def restart_router(self, shard_map: ShardMap | None = None) -> ShardRouter:
        """Bring a fresh router up on the original port.

        The router is stateless by design: the replacement starts from
        the given map (default: the v1 map over every *original* node)
        and converges through the usual skew machinery -- nodes with a
        newer map hand it over on the first ``wrong_shard``, dead nodes
        are re-demoted on first use or probe.
        """
        assert self._router_endpoint is not None, "farm not started"
        if shard_map is None:
            shard_map = ShardMap(
                {
                    name: {"host": host, "port": port}
                    for name, (host, port) in self.endpoints.items()
                },
                replication=self.replication,
            )
        self.router = ShardRouter(
            shard_map,
            host=self.host,
            port=self._router_endpoint[1],
            default_scheduler=self.scheduler,
            node_timeout=self.node_timeout,
            probe_interval=self.probe_interval,
            probe_timeout=self.probe_timeout,
            suspect_after=self.suspect_after,
        )
        await self.router.start()
        return self.router

    async def shutdown(self) -> None:
        if self.router is not None:
            await self.router.stop()
            self.router = None
        for node in self.nodes.values():
            await node.shutdown()
        self.nodes.clear()
        self.dead.clear()
