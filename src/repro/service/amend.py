"""Epoch-numbered incremental compilation -- the service face of delta
scheduling.

A long-running network does not recompile a pattern on every change: it
opens an **amend stream** and pushes add/remove updates against it.
The stream is a chain of epochs:

* **epoch 0** compiles the initial pattern (no canonicalization -- an
  amend stream lives in the caller's node ids, because its identity is
  the *mutable* pattern instance, not the translation equivalence
  class) and stores the artifact under the stream's **root digest**;
* each **amend** applies one update through the stateful
  :class:`repro.core.delta.DeltaScheduler`, bumps the epoch, and stores
  the new artifact as a first-class cache entry whose document carries
  a ``lineage`` block (root, parent digest, epoch, the update rows and
  the cost-model action), so any epoch's schedule can be audited back
  to its root;
* amends are **optimistically concurrent**: a client sends the epoch it
  believes is current, and a stale epoch is refused with
  :class:`repro.service.errors.EpochConflict` carrying the current one
  -- two writers can never silently fork a stream.

Wire shape (see :class:`repro.service.server.CompileServer`)::

    {"op": "amend", "topology": {...}, "pairs": [[s, d], ...]}
        -> {"root": R, "epoch": 0, "digest": D0, "schedule": {...}, ...}
    {"op": "amend", "topology": {...}, "root": R, "epoch": 0,
     "add": [[s, d], ...], "remove": [[s, d], ...]}
        -> {"root": R, "epoch": 1, "digest": D1, "action": "amend", ...}

Removal rows name connections by ``(src, dst, tag)``; with duplicate
pairs in the pattern the lowest-indexed (oldest) match is removed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Sequence

from repro.compiler.serialize import (
    FORMAT_VERSION,
    canonical_dumps,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core import perf
from repro.core.delta import DEFAULT_POLICY, AmendPolicy, DeltaScheduler
from repro.core.linkmask import resolve_kernel
from repro.core.paths import Connection
from repro.core.registry import get_scheduler
from repro.core.requests import Request, RequestSet
from repro.core.paths import route_requests
from repro.service.cache import ArtifactCache
from repro.service.errors import EpochConflict, ProtocolError
from repro.topology.base import Topology

#: Version of the amend lineage block (independent of FORMAT_VERSION so
#: epoch chains can evolve without retiring plain compile artifacts).
AMEND_VERSION = 1


def parse_rows(rows: Sequence[Any], *, what: str) -> list[tuple[int, int, int, int]]:
    """``[src, dst]``/``[src, dst, size]``/``[src, dst, size, tag]`` rows
    as full 4-tuples (``ProtocolError`` on a malformed row)."""
    out = []
    for row in rows:
        if not isinstance(row, (list, tuple)) or not 2 <= len(row) <= 4:
            raise ProtocolError(f"bad {what} row {row!r}")
        s, d, *rest = row
        size = int(rest[0]) if rest else 1
        tag = int(rest[1]) if len(rest) > 1 else 0
        out.append((int(s), int(d), size, tag))
    return out


def amend_root_digest(
    topology: Topology,
    tuples: Sequence[tuple[int, int, int, int]],
    scheduler: str,
    kernel: str | None,
) -> str:
    """Stable identity of an amend stream.

    Keyed like :func:`repro.service.compile.compile_digest` but over
    the *caller-order, untranslated* pattern and a distinct header, so
    an amend root can never collide with a plain compile artifact.
    """
    h = hashlib.sha256()
    h.update(
        f"repro-amend/v{AMEND_VERSION}\0{topology.signature}\0"
        f"{scheduler}\0{resolve_kernel(kernel)}\0".encode("ascii")
    )
    h.update(canonical_dumps([list(t) for t in tuples]).encode("ascii"))
    return h.hexdigest()


def amend_epoch_digest(
    parent: str,
    add: Sequence[tuple[int, int, int, int]],
    remove: Sequence[tuple[int, int, int, int]],
) -> str:
    """Content address of one epoch: parent digest + the update rows.

    The digest chain is the lineage: epoch N's digest commits to every
    update since the root, so two streams agree on a digest iff they
    agree on the entire history.
    """
    h = hashlib.sha256()
    h.update(f"repro-amend-epoch/v{AMEND_VERSION}\0{parent}\0".encode("ascii"))
    h.update(canonical_dumps(
        {"add": [list(t) for t in add], "remove": [list(t) for t in remove]}
    ).encode("ascii"))
    return h.hexdigest()


class AmendStream:
    """Server-side state of one epoch chain.

    Owns the :class:`DeltaScheduler` engine plus a ``(src, dst, tag) ->
    indices`` map so removal rows resolve in O(1), keeping the amend
    hot path O(update size).  Every epoch's artifact (including epoch
    0) is stored in the cache under its lineage digest.
    """

    def __init__(
        self,
        topology: Topology,
        tuples: Sequence[tuple[int, int, int, int]],
        *,
        scheduler: str = "greedy",
        kernel: str | None = None,
        cache: ArtifactCache | None = None,
        policy: AmendPolicy = DEFAULT_POLICY,
    ) -> None:
        self.topology = topology
        self.scheduler = scheduler
        self.kernel = resolve_kernel(kernel)
        self.cache = cache
        requests = RequestSet(
            (Request(s, d, size=size, tag=tag) for s, d, size, tag in tuples),
            allow_duplicates=True,
        )
        connections = route_requests(topology, requests)
        schedule = get_scheduler(scheduler)(connections, topology)
        schedule.validate(connections)
        self.engine = DeltaScheduler(
            schedule, num_links=topology.num_links, policy=policy, kernel=kernel
        )
        self._next_index = len(connections)
        self._by_key: dict[tuple[int, int, int], list[int]] = {}
        for c in connections:
            self._key_add(c)
        self.root = amend_root_digest(topology, tuples, scheduler, self.kernel)
        self.epoch = 0
        self.digest = self.root
        self.action = "compile"
        self.delta_k = 0
        self._store(add=(), remove=(), parent=None)

    @classmethod
    def resume(
        cls,
        topology: Topology,
        doc: dict[str, Any],
        *,
        scheduler: str,
        kernel: str | None = None,
        cache: ArtifactCache | None = None,
        policy: AmendPolicy = DEFAULT_POLICY,
    ) -> "AmendStream":
        """Rebuild an evicted stream from its latest cached epoch artifact.

        The stream continues the *stored* lineage: the schedule is
        reloaded (and re-validated) from ``doc``, the epoch counter and
        digest chain pick up where the evicted stream left off, and the
        next amend chains onto the stored epoch's digest exactly as if
        the stream had never left memory.
        """
        lineage = doc.get("lineage")
        if not isinstance(lineage, dict):
            raise ProtocolError("artifact has no amend lineage to resume from")
        stream = cls.__new__(cls)
        stream.topology = topology
        stream.scheduler = scheduler
        stream.kernel = resolve_kernel(kernel)
        stream.cache = cache
        # schedule_from_dict re-routes and re-validates: a tampered or
        # stale artifact cannot resume into a conflicting live schedule.
        schedule, connections = schedule_from_dict(topology, doc["schedule"])
        stream.engine = DeltaScheduler(
            schedule, num_links=topology.num_links, policy=policy, kernel=kernel
        )
        stream._next_index = len(connections)
        stream._by_key = {}
        for c in connections:
            stream._key_add(c)
        stream.root = str(lineage["root"])
        stream.epoch = int(lineage["epoch"])
        if stream.epoch == 0:
            stream.digest = stream.root
        else:
            # The lineage commits to its own digest: parent + rows.
            stream.digest = amend_epoch_digest(
                str(lineage["parent"]),
                [tuple(t) for t in lineage.get("add", [])],
                [tuple(t) for t in lineage.get("remove", [])],
            )
        stream.action = str(lineage.get("action", "compile"))
        stream.delta_k = 0
        stream._doc = doc
        return stream

    # -- removal-key bookkeeping ---------------------------------------
    def _key_add(self, c: Connection) -> None:
        key = (c.request.src, c.request.dst, c.request.tag)
        self._by_key.setdefault(key, []).append(c.index)

    def _key_pop(self, row: tuple[int, int, int, int]) -> int:
        s, d, _size, tag = row
        indices = self._by_key.get((s, d, tag))
        if not indices:
            raise ProtocolError(
                f"remove row ({s}, {d}, tag={tag}) matches no scheduled connection"
            )
        # Oldest match first: deterministic under duplicate pairs.
        idx = min(indices)
        indices.remove(idx)
        if not indices:
            del self._by_key[(s, d, tag)]
        return idx

    # -- artifact storage ----------------------------------------------
    def _store(
        self,
        *,
        add: Sequence[tuple[int, int, int, int]],
        remove: Sequence[tuple[int, int, int, int]],
        parent: str | None,
    ) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "version": FORMAT_VERSION,
            "topology": self.topology.signature,
            "scheduler": self.scheduler,
            "schedule": schedule_to_dict(self.engine.schedule),
            "lineage": {
                "version": AMEND_VERSION,
                "root": self.root,
                "parent": parent,
                "epoch": self.epoch,
                "action": self.action,
                "add": [list(t) for t in add],
                "remove": [list(t) for t in remove],
            },
        }
        if self.cache is not None:
            self.cache.put(self.digest, doc)
        self._doc = doc
        return doc

    # -- the amend entry point -----------------------------------------
    def amend(
        self,
        *,
        epoch: int,
        add: Sequence[tuple[int, int, int, int]] = (),
        remove: Sequence[tuple[int, int, int, int]] = (),
    ) -> dict[str, Any]:
        """Apply one update against ``epoch``; returns the new state doc.

        Raises :class:`EpochConflict` on a stale epoch (state is
        untouched) and :class:`ProtocolError` on a removal row that
        matches nothing (state is untouched -- rows are resolved before
        anything is applied).
        """
        if epoch != self.epoch:
            raise EpochConflict(
                f"amend against epoch {epoch}, current epoch is {self.epoch}",
                current_epoch=self.epoch,
                current_digest=self.digest,
            )
        # Resolve every removal row before touching the engine, so a
        # bad row cannot half-apply an update.  Resolution mutates the
        # key map; roll it back on failure.
        resolved: list[tuple[tuple[int, int, int, int], int]] = []
        try:
            for row in remove:
                resolved.append((row, self._key_pop(row)))
        except ProtocolError:
            for row, idx in resolved:
                self._by_key.setdefault((row[0], row[1], row[3]), []).append(idx)
            raise
        connections = []
        for s, d, size, tag in add:
            connections.append(Connection(
                self._next_index, Request(s, d, size=size, tag=tag),
                self.topology.route(s, d),
            ))
            self._next_index += 1
        result = self.engine.amend(
            add=connections, remove=[idx for _, idx in resolved]
        )
        for c in connections:
            self._key_add(c)
        parent = self.digest
        self.epoch += 1
        self.digest = amend_epoch_digest(parent, add, remove)
        self.action = result.action
        self.delta_k = result.delta_k
        return self._store(add=add, remove=remove, parent=parent)

    # -- views -----------------------------------------------------------
    @property
    def degree(self) -> int:
        return self.engine.degree

    @property
    def doc(self) -> dict[str, Any]:
        """The current epoch's artifact document."""
        return self._doc

    def state(self) -> dict[str, Any]:
        """Reply payload describing the current epoch."""
        return {
            "root": self.root,
            "epoch": self.epoch,
            "digest": self.digest,
            "degree": self.degree,
            "action": self.action,
            "delta_k": self.delta_k,
            "connections": self.engine.num_connections,
            "fragmentation": self.engine.fragmentation(),
        }


#: Default live-stream cap of one :class:`AmendRegistry`.
DEFAULT_MAX_STREAMS = 256


class AmendRegistry:
    """Root-keyed registry of live amend streams (one per server).

    Opening a stream is idempotent: re-sending the creation request for
    an existing root returns the stream's *current* epoch instead of
    resetting it, so a client that lost the reply can resume safely.

    The registry is **bounded**: at most ``max_streams`` engines stay
    live; past the cap the least-recently-used stream is evicted to a
    tombstone (root -> latest epoch digest).  Because every epoch is a
    first-class cache entry, touching an evicted root -- an idempotent
    ``open`` or a follow-up ``amend`` -- *resumes* the stream from its
    latest cached epoch artifact (same root, same epoch counter, same
    digest chain) instead of silently resetting lineage.  Only when the
    artifact itself is gone does an ``open`` fall back to a fresh
    epoch-0 compile (counted in ``resets``); an ``amend`` in that state
    gets a typed :class:`ProtocolError`.
    """

    def __init__(
        self,
        cache: ArtifactCache | None = None,
        *,
        max_streams: int | None = None,
    ) -> None:
        self.cache = cache
        self.max_streams = (
            DEFAULT_MAX_STREAMS if max_streams is None else int(max_streams)
        )
        if self.max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams!r}")
        self._streams: "OrderedDict[str, AmendStream]" = OrderedDict()
        #: root -> resume metadata of streams dropped by the LRU policy.
        self._evicted: dict[str, dict[str, Any]] = {}
        self.opened = 0
        self.amends = 0
        self.conflicts = 0
        self.evictions = 0
        self.resumes = 0
        self.resets = 0
        self.takeovers = 0

    def __len__(self) -> int:
        return len(self._streams)

    def _touch(self, root: str) -> None:
        self._streams.move_to_end(root)

    def _admit(self, stream: AmendStream) -> None:
        """Install a stream, evicting the LRU one past the cap."""
        self._streams[stream.root] = stream
        self._streams.move_to_end(stream.root)
        while len(self._streams) > self.max_streams:
            root, victim = self._streams.popitem(last=False)
            self._evicted[root] = {
                "digest": victim.digest,
                "epoch": victim.epoch,
                "scheduler": victim.scheduler,
                "kernel": victim.kernel,
                "topology": victim.topology,
            }
            self.evictions += 1

    def _resume(self, root: str) -> AmendStream | None:
        """Rebuild an evicted stream from its cached epoch artifact."""
        meta = self._evicted.get(root)
        if meta is None or self.cache is None:
            return None
        doc = self.cache.get(meta["digest"])
        if doc is None or not isinstance(doc.get("lineage"), dict):
            return None
        stream = AmendStream.resume(
            meta["topology"], doc,
            scheduler=meta["scheduler"], kernel=meta["kernel"],
            cache=self.cache,
        )
        del self._evicted[root]
        self._admit(stream)
        self.resumes += 1
        return stream

    def peek(self, root: str) -> AmendStream | None:
        """The live stream for ``root``, if any (no LRU touch, no resume)."""
        return self._streams.get(root)

    def live_roots(self) -> list[str]:
        """Roots with a *live* stream, LRU-oldest first (no touch).

        What a graceful drain iterates: every stream that would be
        lost with the node, in a stable order, without perturbing the
        LRU state mid-handoff.
        """
        return list(self._streams)

    def knows(self, root: str) -> bool:
        """True when the registry can answer for ``root`` by itself --
        the stream is live or tombstoned for its own resume path."""
        return root in self._streams or root in self._evicted

    def adopt(self, stream: AmendStream) -> AmendStream:
        """Install a stream rebuilt *elsewhere* (farm failover takeover).

        Used by a farm node that became the new primary of a root it
        never served: the node resumes the stream from the replicated
        epoch artifact (:meth:`AmendStream.resume`) and admits it here,
        continuing the stored lineage.  Any eviction tombstone for the
        root is superseded -- the adopted stream *is* the latest state.
        """
        self._evicted.pop(stream.root, None)
        self._admit(stream)
        self.takeovers += 1
        return stream

    def open(
        self,
        topology: Topology,
        tuples: Sequence[tuple[int, int, int, int]],
        *,
        scheduler: str = "greedy",
        kernel: str | None = None,
        policy: AmendPolicy = DEFAULT_POLICY,
    ) -> tuple[AmendStream, bool]:
        """Get-or-create the stream for this pattern; True = created."""
        root = amend_root_digest(
            topology, tuples, scheduler, resolve_kernel(kernel)
        )
        stream = self._streams.get(root)
        if stream is not None:
            self._touch(root)
            return stream, False
        stream = self._resume(root)
        if stream is not None:
            return stream, False
        if root in self._evicted:
            # Evicted and the artifact is gone: the only remaining
            # honest answer to an *open* is a fresh epoch-0 lineage.
            del self._evicted[root]
            self.resets += 1
        t0 = perf.perf_timer()
        stream = AmendStream(
            topology, tuples, scheduler=scheduler, kernel=kernel,
            cache=self.cache, policy=policy,
        )
        self._admit(stream)
        self.opened += 1
        perf.COUNTERS.amend_seconds += perf.perf_timer() - t0
        return stream, True

    def get(self, root: str) -> AmendStream:
        stream = self._streams.get(root)
        if stream is not None:
            self._touch(root)
            return stream
        stream = self._resume(root)
        if stream is not None:
            return stream
        if root in self._evicted:
            raise ProtocolError(
                f"amend root {root!r} was evicted and its epoch artifact is "
                "no longer cached; re-open the stream"
            )
        raise ProtocolError(f"unknown amend root {root!r}")

    def amend(
        self,
        root: str,
        *,
        epoch: int,
        add: Sequence[tuple[int, int, int, int]] = (),
        remove: Sequence[tuple[int, int, int, int]] = (),
    ) -> AmendStream:
        stream = self.get(root)
        try:
            stream.amend(epoch=epoch, add=add, remove=remove)
        except EpochConflict:
            self.conflicts += 1
            raise
        self.amends += 1
        return stream

    def stats(self) -> dict[str, Any]:
        return {
            "streams": len(self._streams),
            "max_streams": self.max_streams,
            "opened": self.opened,
            "amends": self.amends,
            "conflicts": self.conflicts,
            "evictions": self.evictions,
            "resumes": self.resumes,
            "resets": self.resets,
            "takeovers": self.takeovers,
        }
