"""Pattern canonicalization under torus translation symmetry.

A k-ary n-cube is vertex-transitive under coordinate translation: the
map ``sigma_t(v) = v + t`` (per-dimension, mod the radix) permutes the
nodes, carries every link onto a link of the same dimension/direction,
and therefore carries any conflict-free schedule onto a conflict-free
schedule of the translated pattern with the same multiplexing degree.
Two patterns that differ only by such a translation -- e.g. the
transpose pattern started from any grid offset, or a shift pattern
rebased at another node -- are the *same* compilation problem, so the
compile service collapses them onto one canonical representative and
one cache entry.

Admissible translations
-----------------------
Degree preservation needs the translation to be a **routing**
symmetry, not merely a graph symmetry: the scheduler sees routed link
sets, so ``route(sigma(s), sigma(d))`` must equal the link-translated
``route(s, d)``.  Dimension-order routing chooses, per dimension, the
signed offset ``signed_offset(src_c, dst_c)`` which depends only on
``(dst_c - src_c) mod k`` -- translation-invariant -- *except* at
half-ring ties (offset exactly ``k/2`` on an even radix), where the
``BALANCED`` tie-break consults the source coordinate's parity.  Hence:

* ``TieBreak.POSITIVE``: every translation is admissible;
* ``TieBreak.BALANCED``: a translation is admissible iff its component
  is even in every even-radix dimension (parity-preserving, so every
  tie resolves identically).  Odd radices never tie and are
  unrestricted.

Topologies without translation symmetry (mesh, linear array, omega,
fault-degraded wrappers) get the trivial group ``{identity}`` --
canonicalization then only sorts the request list into a deterministic
order.

Canonical form
--------------
Requests are packed as integers ``((src * N + dst) << 36) | (size <<
16) | tag`` (a numpy int64 fast path; arbitrary sizes fall back to
tuples), translated by every admissible ``sigma``, sorted, and the
lexicographically smallest image wins.  Ties between translations are
broken by group enumeration order, so every process picks the same
``sigma`` -- which matters because cache *responses* are translated
back through ``sigma^-1`` and must be byte-identical across processes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.requests import Request, RequestSet
from repro.topology.kary_ncube import KAryNCube, TieBreak

#: Packing limits of the int64 fast path: (src*N+dst) < 2**24 needs
#: N <= 4096 nodes; sizes below 2**20 and tags below 2**16 then fit in
#: the low 36 bits with no overlap (total < 2**61).
_MAX_PACK_NODES = 4096
_MAX_PACK_SIZE = 1 << 20
_MAX_PACK_TAG = 1 << 16

RequestTuple = tuple[int, int, int, int]  # (src, dst, size, tag)


def translation_group(topology: Any) -> list[tuple[int, ...]]:
    """Admissible translation vectors of ``topology``.

    Returns coordinate offsets (one per dimension) for
    :class:`KAryNCube` substrates, restricted to routing symmetries as
    described in the module docstring; any other topology yields just
    the identity.  The list order is deterministic (row-major product),
    which fixes the canonical tie-break.
    """
    if not isinstance(topology, KAryNCube):
        return [()]
    ranges = []
    for k in topology.dims:
        if topology.tie_break is TieBreak.BALANCED and k % 2 == 0:
            ranges.append(range(0, k, 2))
        else:
            ranges.append(range(k))
    return [tuple(t) for t in itertools.product(*ranges)]


def node_permutation(topology: Any, translation: tuple[int, ...]) -> list[int]:
    """``sigma`` as a dense list: ``sigma[v]`` = image of node ``v``."""
    if not translation or not any(translation):
        return list(range(topology.num_nodes))
    return [
        topology.node_at([c + t for c, t in zip(topology.coords(v), translation)])
        for v in range(topology.num_nodes)
    ]


def invert_permutation(sigma: Sequence[int]) -> list[int]:
    """The inverse of a node permutation."""
    inv = [0] * len(sigma)
    for v, image in enumerate(sigma):
        inv[image] = v
    return inv


def translate_link(topology: Any, link_id: int, sigma: Sequence[int]) -> int:
    """Image of ``link_id`` under the node permutation ``sigma``.

    Injection/ejection fibers follow their node; a transit fiber keeps
    its dimension and direction but moves to the translated source
    switch.  Only valid for permutations induced by translations (which
    preserve per-node transit fan-out).
    """
    n = topology.num_nodes
    if link_id < n:  # injection
        return sigma[link_id]
    if link_id < 2 * n:  # ejection
        return n + sigma[link_id - n]
    offset = link_id - topology.transit_link_base
    fanout = 2 * len(topology.dims)
    node, rest = divmod(offset, fanout)
    return topology.transit_link_base + sigma[node] * fanout + rest


@dataclass
class CanonicalPattern:
    """The canonical representative of a pattern's translation class.

    Attributes
    ----------
    requests:
        The canonical request tuples ``(src, dst, size, tag)``, sorted.
    key_bytes:
        Deterministic byte encoding of ``requests`` -- the pattern
        component of the cache digest.
    sigma:
        Node permutation mapping the *submitted* pattern onto the
        canonical one (``canonical request = sigma applied to original``).
    sigma_inv:
        Its inverse -- applied to cached artifacts before they are
        served, so the caller gets a schedule in its own node ids.
    translation:
        The winning translation vector (``()`` for the identity on
        asymmetric topologies).
    """

    requests: list[RequestTuple]
    key_bytes: bytes
    sigma: list[int]
    sigma_inv: list[int]
    translation: tuple[int, ...]

    @property
    def is_identity(self) -> bool:
        return not any(self.translation)

    def request_set(self) -> RequestSet:
        """The canonical pattern as a schedulable :class:`RequestSet`."""
        return RequestSet(
            (Request(s, d, size=size, tag=tag) for s, d, size, tag in self.requests),
            allow_duplicates=True,
            name="canonical",
        )


def _as_tuples(requests: Sequence) -> list[RequestTuple]:
    out = []
    for r in requests:
        if isinstance(r, tuple):
            s, d, size, tag = (*r, 1, 0)[:4] if len(r) < 4 else r
        else:
            s, d, size, tag = r.src, r.dst, r.size, r.tag
        out.append((int(s), int(d), int(size), int(tag)))
    return out


def _packable(n_nodes: int, tuples: list[RequestTuple]) -> bool:
    return (
        n_nodes <= _MAX_PACK_NODES
        and all(
            0 < size < _MAX_PACK_SIZE and 0 <= tag < _MAX_PACK_TAG
            for _, _, size, tag in tuples
        )
    )


def _unpack(packed: np.ndarray, n_nodes: int) -> list[RequestTuple]:
    pairs = packed >> 36
    sizes = (packed >> 16) & (_MAX_PACK_SIZE - 1)
    tags = packed & (_MAX_PACK_TAG - 1)
    return [
        (int(p) // n_nodes, int(p) % n_nodes, int(size), int(tag))
        for p, size, tag in zip(pairs, sizes, tags)
    ]


def canonicalize(topology: Any, requests: Sequence) -> CanonicalPattern:
    """Canonical representative of ``requests`` on ``topology``.

    ``requests`` may be a :class:`RequestSet`, a sequence of
    :class:`Request`, or of ``(src, dst[, size[, tag]])`` tuples.  The
    result is independent of the submitted request *order* and, on
    translation-symmetric topologies, of any admissible translation of
    the whole pattern.
    """
    tuples = _as_tuples(requests)
    n = topology.num_nodes
    group = translation_group(topology)

    if _packable(n, tuples):
        return _canonicalize_packed(topology, tuples, group)
    return _canonicalize_tuples(topology, tuples, group)


def _canonicalize_packed(
    topology: Any, tuples: list[RequestTuple], group: list[tuple[int, ...]]
) -> CanonicalPattern:
    """int64 fast path: one vectorised sort per admissible translation."""
    n = topology.num_nodes
    src = np.fromiter((t[0] for t in tuples), dtype=np.int64, count=len(tuples))
    dst = np.fromiter((t[1] for t in tuples), dtype=np.int64, count=len(tuples))
    rest = np.fromiter(
        ((t[2] << 16) | t[3] for t in tuples), dtype=np.int64, count=len(tuples)
    )
    # sigmas: (|group|, N) matrix of node images.
    sigmas = np.asarray([node_permutation(topology, t) for t in group], dtype=np.int64)
    images = np.sort((sigmas[:, src] * n + sigmas[:, dst]) << 36 | rest, axis=1)
    best = 0
    for i in range(1, images.shape[0]):
        diff = np.nonzero(images[i] != images[best])[0]
        if diff.size and images[i, diff[0]] < images[best, diff[0]]:
            best = i
    sigma = [int(v) for v in sigmas[best]]
    return CanonicalPattern(
        requests=_unpack(images[best], n),
        key_bytes=b"packed\0" + images[best].astype("<i8").tobytes(),
        sigma=sigma,
        sigma_inv=invert_permutation(sigma),
        translation=group[best],
    )


def _canonicalize_tuples(
    topology: Any, tuples: list[RequestTuple], group: list[tuple[int, ...]]
) -> CanonicalPattern:
    """Fallback for huge node counts / sizes: plain tuple sorting."""
    best_key: list[RequestTuple] | None = None
    best_t: tuple[int, ...] = group[0]
    best_sigma: list[int] = []
    for t in group:
        sigma = node_permutation(topology, t)
        key = sorted((sigma[s], sigma[d], size, tag) for s, d, size, tag in tuples)
        if best_key is None or key < best_key:
            best_key, best_t, best_sigma = key, t, sigma
    assert best_key is not None
    encoded = ";".join(f"{s},{d},{size},{tag}" for s, d, size, tag in best_key)
    return CanonicalPattern(
        requests=best_key,
        key_bytes=b"tuples\0" + encoded.encode("ascii"),
        sigma=best_sigma,
        sigma_inv=invert_permutation(best_sigma),
        translation=best_t,
    )


# ----------------------------------------------------------------------
# applying permutations to serialized artifacts
# ----------------------------------------------------------------------

def permute_schedule_dict(doc: dict, sigma: Sequence[int]) -> dict:
    """A schedule document with every endpoint mapped through ``sigma``.

    Slot structure, sizes and tags are untouched; used to translate a
    canonical cached schedule back into the caller's node ids.
    """
    return {
        **doc,
        "slots": [
            [
                {**e, "src": sigma[e["src"]], "dst": sigma[e["dst"]]}
                for e in slot
            ]
            for slot in doc["slots"]
        ],
    }


def permute_registers_dict(topology: Any, doc: dict, sigma: Sequence[int]) -> dict:
    """A register-image document translated through ``sigma``.

    Each switch word is decoded to its link-level crossbar mapping,
    every link is carried through the translation, and the mapping is
    re-encoded at the image switch.  (Port indices are *not* simply
    renamed: a switch's input ports are ordered by incoming link id,
    which depends on the neighbours' absolute node ids.)
    """
    from repro.topology.switch import SwitchState, build_switches

    switches = build_switches(topology)
    words: dict[str, list[list[int]]] = {}
    for node_str, node_words in doc["words"].items():
        node = int(node_str)
        image = sigma[node]
        decoder, encoder = switches[node], switches[image]
        out = []
        for w in node_words:
            state = decoder.decode(tuple(w))
            mapped = SwitchState(image)
            for in_link, out_link in state.mapping.items():
                mapped.connect(
                    translate_link(topology, in_link, sigma),
                    translate_link(topology, out_link, sigma),
                )
            out.append(list(encoder.encode(mapped)))
        words[str(image)] = out
    return {**doc, "words": words}
