"""Command-line interface: regenerate any paper table or figure.

Examples::

    python -m repro.cli table1 --patterns 100      # the paper's full protocol
    python -m repro.cli table3
    python -m repro.cli table5 --p3m-grids 32 64
    python -m repro.cli fig3
    python -m repro.cli aapc --width 8 --height 8
    python -m repro.cli schedule --spec '{"pattern": "hypercube", "nodes": 64}'
    python -m repro.cli all                        # quick pass over everything
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import experiments as exp
from repro.analysis.parallel import resolve_workers
from repro.analysis.tables import format_table
from repro.simulator.params import SimParams


def _workers_arg(value: str) -> int:
    try:
        return resolve_workers(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _nonneg_arg(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {value!r}") from None
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _pos_arg(value: str) -> int:
    parsed = _nonneg_arg(value)
    if parsed == 0:
        raise argparse.ArgumentTypeError("must be >= 1, got 0")
    return parsed


def _print_table1(args) -> None:
    rows = exp.table1(
        patterns_per_row=args.patterns, seed=args.seed,
        workers=getattr(args, "workers", None),
    )
    data = [
        (
            int(r["connections"]), r["greedy"], r["coloring"], r["aapc"],
            r["combined"], f"{r['improvement_pct']:.1f}%",
            "/".join(str(v) for v in exp.PAPER_TABLE1[int(r["connections"])]),
        )
        for r in rows
    ]
    print(format_table(
        ["conns", "greedy", "coloring", "aapc", "combined", "improv", "paper(g/c/a/comb)"],
        data,
        title=f"Table 1: random patterns ({args.patterns} patterns/row; paper used 100)",
    ))


def _print_table2(args) -> None:
    rows = exp.table2(
        samples=args.samples, seed=args.seed,
        workers=getattr(args, "workers", None),
    )
    data = []
    for r in rows:
        if r["patterns"] == 0:
            data.append((f"{int(r['bin_low'])}-{int(r['bin_high'])}", 0, "-", "-", "-", "-", "-"))
            continue
        data.append((
            f"{int(r['bin_low'])}-{int(r['bin_high'])}", int(r["patterns"]),
            r["greedy"], r["coloring"], r["aapc"], r["combined"],
            f"{r['improvement_pct']:.1f}%",
        ))
    print(format_table(
        ["conns", "n", "greedy", "coloring", "aapc", "combined", "improv"],
        data,
        title=f"Table 2: random 3-D redistributions ({args.samples} samples; paper used 500)",
    ))


def _print_table3(args) -> None:
    rows = exp.table3(seed=args.seed)
    data = [
        (
            r["pattern"], r["connections"], r["greedy"], r["coloring"],
            r["aapc"], r["combined"],
            "/".join(str(v) for v in exp.PAPER_TABLE3[r["pattern"]][1:]),
        )
        for r in rows
    ]
    print(format_table(
        ["pattern", "conns", "greedy", "coloring", "aapc", "combined", "paper(g/c/a/comb)"],
        data,
        title="Table 3: frequently used patterns (greedy = mean over random orders)",
    ))


def _print_table4(args) -> None:
    rows = exp.table4()
    data = [
        (r["pattern"], r["type"], r["connections"], r["description"])
        for r in rows
    ]
    print(format_table(
        ["pattern", "type", "conns", "description"],
        data,
        title="Table 4: application communication patterns",
    ))


def _print_table5(args) -> None:
    params = SimParams(seed=args.seed)
    rows = exp.table5(
        params=params,
        gs_grids=tuple(args.gs_grids),
        p3m_grids=tuple(args.p3m_grids),
    )
    data = []
    for r in rows:
        paper = exp.PAPER_TABLE5.get((r["pattern"], r["problem"]))
        data.append((
            r["pattern"], r["problem"], r["compiled_degree"], r["compiled"],
            r["dynamic_1"], r["dynamic_2"], r["dynamic_5"], r["dynamic_10"],
            "/".join(str(v) for v in paper) if paper else "-",
        ))
    print(format_table(
        ["pattern", "problem", "K", "compiled", "dyn1", "dyn2", "dyn5", "dyn10",
         "paper(comp/d1/d2/d5/d10)"],
        data,
        title="Table 5: compiled vs dynamic communication time (slots)",
    ))


def _print_fig1(args) -> None:
    print("Fig. 1 example configuration on the 4x4 torus:", exp.fig1())


def _print_fig3(args) -> None:
    print("Fig. 3 greedy order sensitivity:", exp.fig3())


def _print_ablation(args) -> None:
    rows = exp.ablation_schedulers(patterns_per_row=args.patterns, seed=args.seed)
    headers = ["conns", *exp.ABLATION_SCHEDULERS]
    data = [
        (int(r["connections"]), *(r[s] for s in exp.ABLATION_SCHEDULERS))
        for r in rows
    ]
    print(format_table(headers, data, title="Scheduler ablation (mean degree)"))


def _print_aapc(args) -> None:
    from repro.aapc.phases import aapc_decomposition
    from repro.topology.torus import Torus2D

    topo = Torus2D(args.width, args.height)
    dec = aapc_decomposition(topo)
    print(
        f"AAPC decomposition for {topo.signature}: {dec.num_phases} phases "
        f"(lower bound {dec.lower_bound()}), built by {dec.schedule.scheduler}"
    )


def _print_schedule(args) -> None:
    from repro.compiler.recognition import recognize
    from repro.core.paths import route_requests
    from repro.core.registry import get_scheduler
    from repro.topology.torus import Torus2D

    topo = Torus2D(args.width, args.height)
    requests = recognize(json.loads(args.spec))
    connections = route_requests(topo, requests)
    for name in ("greedy", "coloring", "aapc", "combined"):
        schedule = get_scheduler(name)(connections, topo)
        schedule.validate(connections)
        print(f"{name:10s} degree={schedule.degree}")


def _print_programs(args) -> None:
    rows = exp.table5_programs(params=SimParams(seed=args.seed))
    print(format_table(
        ["program", "phases", "per-phase K", "compiled", "dyn1", "dyn2",
         "dyn5", "dyn10"],
        [
            (
                r["program"], r["phases"],
                "/".join(str(k) for k in r["degrees"]), r["compiled"],
                r["dynamic_1"], r["dynamic_2"], r["dynamic_5"], r["dynamic_10"],
            )
            for r in rows
        ],
        title="Whole-program communication time (slots per iteration)",
    ))


def _print_trace(args) -> None:
    from repro.compiler.recognition import recognize
    from repro.simulator.dynamic import ProtocolTrace, simulate_dynamic
    from repro.topology.torus import Torus2D

    topo = Torus2D(args.width, args.height)
    requests = recognize(json.loads(args.spec))
    trace = ProtocolTrace(record_hops=not args.no_hops)
    result = simulate_dynamic(
        topo, requests, args.degree, SimParams(seed=args.seed), trace=trace
    )
    trace.check_wellformed()
    print(trace.render(limit=args.limit))
    print(
        f"\n{len(result.messages)} messages in {result.completion_time} slots, "
        f"{result.total_retries} failed reservations"
    )


def _parse_endpoints(spec: str) -> list[tuple[str, int]]:
    """``host:p1,host:p2`` -> endpoint list (host defaults to loopback)."""
    endpoints = []
    for part in spec.split(","):
        host, _, port = part.strip().rpartition(":")
        endpoints.append((host or "127.0.0.1", int(port)))
    return endpoints


def _compile_artifact(args) -> None:
    from repro.compiler.recognition import recognize
    from repro.compiler.serialize import save_artifact, schedule_from_dict
    from repro.service import ArtifactCache, compile_pattern
    from repro.topology.torus import Torus2D

    topo = Torus2D(args.width, args.height)
    if args.routers:
        # Remote compile through the farm's router endpoint list: the
        # client rotates to a surviving router on any transport failure.
        from repro.service.client import CompileClient

        topology = {"kind": "torus", "width": args.width,
                    "height": args.height}
        with CompileClient(endpoints=_parse_endpoints(args.routers)) as cc:
            reply = cc.compile(
                topology, pattern=json.loads(args.spec),
                scheduler=args.algorithm,
            )
        print(
            f"compiled remotely via {args.routers} "
            f"({args.algorithm}, cache {reply.get('cache', '?')}, "
            f"{cc.failovers} router failover(s))"
        )
        if args.output:
            schedule, _ = schedule_from_dict(topo, reply["schedule"])
            save_artifact(args.output, topo, schedule, name=args.spec)
            print(f"wrote {args.output}")
        return
    requests = recognize(json.loads(args.spec))
    cache = ArtifactCache(args.cache) if args.cache else None
    result = compile_pattern(
        topo, requests, cache=cache, scheduler=args.algorithm
    )
    outcome = f"cache {result.cache}" if cache is not None else "no cache"
    print(
        f"compiled {len(requests)} connections at degree {result.degree} "
        f"({args.algorithm}, {outcome}, {result.seconds * 1e3:.1f} ms)"
    )
    if args.output:
        schedule, _ = schedule_from_dict(topo, result.schedule_doc)
        save_artifact(args.output, topo, schedule, name=args.spec)
        print(f"wrote {args.output}")


def _print_protect(args) -> None:
    from collections import Counter

    from repro.compiler.recognition import recognize
    from repro.core.protection import ProtectionError
    from repro.service import ArtifactCache
    from repro.service.protect import protect_pattern
    from repro.topology.torus import Torus2D

    topo = Torus2D(args.width, args.height)
    requests = recognize(json.loads(args.spec))
    cache = ArtifactCache(args.cache) if args.cache else None
    result = protect_pattern(
        topo, requests, cache=cache, scheduler=args.algorithm
    )
    protected = result.protected
    report = protected.overhead_report()
    outcome = f"cache {result.cache}" if cache is not None else "no cache"
    print(
        f"protected {len(requests)} connections at degree "
        f"{report['base_degree']} ({args.algorithm}, {outcome}, "
        f"{result.seconds * 1e3:.1f} ms)"
    )
    print(format_table(
        ["metric", "value"],
        [
            ("fault scenarios", report["scenarios"]),
            ("covered (failover-capable)", report["covered"]),
            ("uncovered (reactive fallback)", report["uncovered"]),
            ("degree-preserving repairs", report["degree_preserving"]),
            ("max ΔK", report["max_delta_k"]),
            ("mean ΔK", f"{report['mean_delta_k']:.2f}"),
        ],
        title=(
            f"Single-fiber protection of {args.spec} on the "
            f"{args.width}x{args.height} torus"
        ),
    ))
    histogram = Counter(r["delta_k"] for r in report["rows"])
    print(format_table(
        ["ΔK", "scenarios"],
        sorted(histogram.items()),
        title="Backup-frame overhead histogram",
    ))
    worst = sorted(
        report["rows"], key=lambda r: (-r["delta_k"], -r["affected"])
    )[:5]
    if worst and worst[0]["delta_k"]:
        print(format_table(
            ["link", "kind", "affected", "ΔK"],
            [(r["link"], r["kind"], r["affected"], r["delta_k"])
             for r in worst],
            title="Worst scenarios",
        ))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result.doc, fh, indent=1, sort_keys=True)
        print(f"wrote {args.output}")
    if args.verify:
        from repro.core.configuration import ScheduleValidationError

        try:
            protected.validate()
        except (ProtectionError, ScheduleValidationError) as exc:
            print(f"VERIFY FAILED: {exc}", file=sys.stderr)
            raise SystemExit(70)  # EX_SOFTWARE: an illegal backup plan
        print(
            "verified: every covered backup schedule is conflict-free on "
            "its faulted topology and covers all connections"
        )


def _print_perf(args) -> None:
    from repro.analysis.perfbench import BENCH_SCHEDULERS, kernel_benchmark
    from repro.analysis.stats import perf_rows
    from repro.core.linkmask import KERNELS

    kernels = list(KERNELS) if args.kernel == "both" else [args.kernel]
    reports = [
        kernel_benchmark(kernel=k, repeats=args.repeats) for k in kernels
    ]
    data = []
    for report in reports:
        for name in BENCH_SCHEDULERS:
            s = report["schedulers"][name]
            data.append((
                report["kernel"], name, int(s["degree"]),
                f"{s['seconds'] * 1e3:.1f} ms",
                f"{s['mean_seconds'] * 1e3:.1f} "
                f"± {s['stddev_seconds'] * 1e3:.1f} ms",
                f"{s['ops_per_sec']:,.0f}",
            ))
    print(format_table(
        ["kernel", "scheduler", "K", "best time", "mean ± σ", "conns/s"],
        data,
        title=(
            f"Scheduling kernel benchmark: all-to-all on "
            f"{reports[0]['topology']} ({reports[0]['connections']} "
            f"connections, best of {args.repeats})"
        ),
    ))
    print()
    print(format_table(
        ["counter", "value"],
        perf_rows(reports[-1]["counters"]),
        title=f"Perf counters (kernel={reports[-1]['kernel']} run)",
    ))
    if args.output:
        from repro.analysis.benchsuite import report_header

        payload = {
            "schema": "repro-tdm-perf/2",
            "header": report_header(),
            "reports": reports,
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.output}")


def _print_faults(args) -> None:
    params = SimParams(seed=args.seed).with_(
        recompile_latency=args.recompile_latency,
        failover_latency=args.failover_latency,
    )
    cache = None
    if args.cache:
        from repro.service import ArtifactCache

        cache = ArtifactCache(args.cache)
    rows = exp.fault_campaign(
        pattern=args.pattern,
        size=args.size,
        degree=args.degree,
        fault_counts=tuple(args.faults),
        repair_after=args.repair_after,
        protocol=args.protocol,
        params=params,
        seed=args.seed,
        cache=cache,
        recovery=args.recovery,
    )
    data = [
        (
            r["faults"], r["compiled"], f"{r['compiled_slowdown_pct']:+.1f}%",
            r["compiled_ttr"], int(r["compiled_degree_inflation"]),
            int(r["compiled_failovers"]), int(r["compiled_reschedules"]),
            int(r["compiled_lost"]), r["dynamic"],
            f"{r['dynamic_slowdown_pct']:+.1f}%", r["dynamic_ttr"],
            int(r["dynamic_fault_retries"]), int(r["dynamic_lost"]),
        )
        for r in rows
    ]
    recovery_note = (
        f"failover latency {args.failover_latency}"
        if args.recovery == "protected"
        else f"recompile latency {args.recompile_latency}"
    )
    print(format_table(
        ["faults", "comp", "comp%", "comp-ttr", "comp-K+", "comp-fo",
         "comp-rs", "comp-lost", "dyn", "dyn%", "dyn-ttr", "dyn-fretry",
         "dyn-lost"],
        data,
        title=(
            f"Fault campaign: {args.pattern} on the "
            f"{args.size}x{args.size} torus "
            f"(dynamic K={args.degree}, {args.protocol} protocol, "
            f"{args.recovery} recovery, {recovery_note})"
        ),
    ))
    if cache is not None:
        s = cache.stats
        print(
            f"\nartifact cache: {s.hits} hits / {s.misses} misses "
            f"({s.stores} stored)"
        )
    if args.output:
        from repro.analysis.benchsuite import report_header

        payload = {
            "schema": "repro-tdm-faults/2",
            "header": report_header(),
            "rows": rows,
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.output}")


def _serve(args) -> None:
    import asyncio

    from repro.service.policy import ServerPolicy
    from repro.service.server import CompileServer

    async def run() -> None:
        server = CompileServer(
            cache=args.cache,
            workers=args.workers if args.workers is not None else 0,
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            scheduler=args.algorithm,
            policy=ServerPolicy(
                request_deadline=args.deadline,
                max_pending=args.max_pending,
            ),
            amend_streams=args.amend_streams,
        )
        await server.start()
        where = server.address
        if isinstance(where, tuple):
            where = f"{where[0]}:{where[1]}"
        cache_where = args.cache or "memory only"
        print(f"compile server on {where} (cache: {cache_where})", flush=True)
        try:
            await server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            await server.shutdown()

    asyncio.run(run())


def _print_cachebench(args) -> None:
    from repro.analysis.perfbench import cache_benchmark

    report = cache_benchmark(repeats=args.repeats)
    print(format_table(
        ["phase", "time", "outcome"],
        [
            ("cold compile", f"{report['cold_seconds'] * 1e3:.1f} ms", "miss"),
            ("warm compile", f"{report['warm_seconds'] * 1e3:.1f} ms", "hit"),
            ("translated warm", f"{report['translated_seconds'] * 1e3:.1f} ms",
             "hit"),
        ],
        title=(
            f"Artifact cache: all-to-all on {report['topology']} "
            f"(best of {args.repeats}; warm speedup "
            f"{report['speedup']:.1f}x)"
        ),
    ))
    if args.output:
        from repro.analysis.benchsuite import report_header

        payload = {
            "schema": "repro-tdm-cache/2",
            "header": report_header(),
            "report": report,
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.output}")


def _print_chaos(args) -> None:
    import tempfile

    from repro.service.chaos import ChaosConfig, run_chaos_campaign

    config = ChaosConfig(
        drop_rate=args.drop,
        delay_rate=args.delay,
        delay_seconds=args.delay_seconds,
        truncate_rate=args.truncate,
        garble_rate=args.garble,
        seed=args.seed,
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as fallback:
        report = run_chaos_campaign(
            args.requests,
            config=config,
            cache_dir=args.cache or fallback,
            kill_writer=not args.no_kill_writer,
            seed=args.seed,
            deadline=args.deadline,
        )
    typed = sum(report["typed_failures"].values())
    rows = [
        ("requests", report["requests"], ""),
        ("completed byte-identical", report["completed"], ""),
        ("typed failures", typed,
         ", ".join(f"{k}={v}" for k, v in
                   sorted(report["typed_failures"].items())) or "-"),
        ("UNTYPED failures", len(report["untyped_failures"]),
         "; ".join(report["untyped_failures"][:3]) or "-"),
        ("CORRUPTED replies", len(report["corrupted"]), ""),
        ("client retries", report["client_retries"], ""),
        ("frames mauled", report["proxy"]["frames"],
         f"drop={report['proxy']['dropped']} "
         f"delay={report['proxy']['delayed']} "
         f"trunc={report['proxy']['truncated']} "
         f"garble={report['proxy']['garbled']}"),
        ("server shed / deadline", report["server"]["shed"],
         f"cancels={report['server']['deadline_cancels']}"),
        ("cache verify scan", report["verify_scan"]["ok"],
         f"of {report['verify_scan']['checked']} "
         f"(quarantined: {len(report['verify_scan']['quarantined'])})"),
    ]
    if "kill_mid_write" in report:
        k = report["kill_mid_write"]
        rows.append((
            "kill-mid-write recovery", k["stats"]["recovered"],
            f"quarantined={k['stats']['quarantined']} "
            f"torn-served={k['torn_digest_served']}",
        ))
    print(format_table(
        ["check", "count", "detail"],
        rows,
        title=(
            f"Chaos campaign: {args.requests} requests through "
            f"drop/delay/truncate/garble proxy (seed {args.seed}) -- "
            + ("INVARIANT HOLDS" if report["ok"] else "INVARIANT VIOLATED")
        ),
    ))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"\nwrote {args.output}")
    if not report["ok"]:
        raise SystemExit(70)  # EX_SOFTWARE: the service corrupted data


def _print_farm_ha(args) -> None:
    from repro.service.chaos import run_farm_ha_campaign

    report = run_farm_ha_campaign(
        args.requests,
        nodes=args.nodes,
        replication=args.replication,
        seed=args.seed,
        cache_dir=args.cache,
        drop_rate=args.drop_rate,
        max_restore_sweeps=args.max_sweeps,
        amend_steps=args.amend_steps,
    )
    typed = sum(report["typed_failures"].values())
    phases = report["phases"]
    repl = report["replication_stats"]
    rows = [
        ("scored requests", report["attempted"],
         f"{report['nodes']} nodes, replication {report['replication']}"),
        ("completed", report["completed"],
         f"availability {report['availability']:.3f}"),
        ("typed failures", typed,
         ", ".join(f"{k}={v}" for k, v in
                   sorted(report["typed_failures"].items())) or "-"),
        ("UNTYPED failures", len(report["untyped_failures"]),
         "; ".join(report["untyped_failures"][:3]) or "-"),
        ("CORRUPTED replies", len(report["corrupted"]), ""),
        ("replica pushes dropped", phases["drop"]["pushes_dropped"],
         f"restored in {phases['drop']['restore_sweeps']} sweep(s)"),
        ("partition", "->".join(phases["partition"]["pair"]),
         f"restored in {phases['partition']['restore_sweeps']} sweep(s)"),
        ("amend failover", phases["amend_failover"]["killed"],
         f"epoch {phases['amend_failover']['epoch']}, "
         f"takeovers {phases['amend_failover']['takeovers']}"),
        ("rejoin", phases["rejoin"]["node"],
         f"{phases['rejoin']['owned_digests']} owned digests, "
         f"{phases['rejoin']['missing_after']} still missing"),
        ("leader promote", phases["promote"]["promoted_router"],
         f"{phases['promote']['promote_seconds']:.2f}s to epoch "
         f"{phases['promote']['epoch']}, stale pushes fenced "
         f"{phases['promote']['node_stale_epoch_rejections']}x"),
        ("graceful drain", phases["drain"]["node"],
         f"{phases['drain']['streams_handed_off']} streams handed off, "
         f"{phases['drain']['adoptions']} adopted, "
         f"{phases['drain']['replicas_repushed']} replicas repushed "
         f"({phases['drain']['repush_retries']} retries), "
         f"{len(phases['drain']['under_replicated'])} under-replicated"),
        ("anti-entropy", repl["repaired"],
         f"repaired over {repl['anti_entropy_rounds']} rounds; "
         f"push retries {repl['retries']}"),
        ("gates failed", sum(1 for ok in report["gates"].values() if not ok),
         ", ".join(sorted(k for k, ok in report["gates"].items()
                          if not ok)) or "-"),
    ]
    print(format_table(
        ["check", "count", "detail"],
        rows,
        title=(
            f"Farm HA campaign: drop/partition/kill-primary/rejoin/"
            f"router-restart/leader-kill/drain (seed {args.seed}) -- "
            + ("ALL GATES HOLD" if report["ok"] else "GATE VIOLATED")
        ),
    ))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"\nwrote {args.output}")
    if not report["ok"]:
        raise SystemExit(70)  # EX_SOFTWARE: the farm failed to self-heal


def _print_farm(args) -> None:
    from repro.service.chaos import run_farm_chaos_campaign

    if args.ha:
        _print_farm_ha(args)
        return

    report = run_farm_chaos_campaign(
        args.requests,
        nodes=args.nodes,
        replication=args.replication,
        kill_after=args.kill_after,
        seed=args.seed,
        cache_dir=args.cache,
    )
    typed = sum(report["typed_failures"].values())
    reb = report["rebalance"]
    rows = [
        ("requests", report["requests"],
         f"{report['nodes']} nodes, replication {report['replication']}"),
        ("completed byte-identical", report["completed"], ""),
        ("typed failures", typed,
         ", ".join(f"{k}={v}" for k, v in
                   sorted(report["typed_failures"].items())) or "-"),
        ("UNTYPED failures", len(report["untyped_failures"]),
         "; ".join(report["untyped_failures"][:3]) or "-"),
        ("CORRUPTED replies", len(report["corrupted"]), ""),
        ("node killed", reb["killed"],
         f"at request {report.get('killed_at', '-')}"),
        ("router failovers", reb["failovers"],
         f"map v{reb['map_version']}, {reb['live_nodes']} live"),
        ("victim demoted", int(reb["victim_removed"]),
         f"survivors adopted: {reb['survivors_adopted']}"),
        ("client routing", report["client"]["direct"],
         f"direct; via router: {report['client']['via_router']}, "
         f"map refreshes: {report['client']['map_refreshes']}"),
        ("replication", report["farm"]["replicas_pushed"],
         f"pushed; read repairs: {report['farm']['read_repairs']}, "
         f"wrong-shard redirects: {report['farm']['wrong_shard']}"),
    ]
    print(format_table(
        ["check", "count", "detail"],
        rows,
        title=(
            f"Farm chaos campaign: {args.requests} requests, "
            f"shard killed mid-run (seed {args.seed}) -- "
            + ("INVARIANT HOLDS" if report["ok"] else "INVARIANT VIOLATED")
        ),
    ))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"\nwrote {args.output}")
    if not report["ok"]:
        raise SystemExit(70)  # EX_SOFTWARE: the farm corrupted data


def _amend_service_campaign(args) -> dict:
    """Random churn pushed through a live server's ``amend`` verb.

    Spins up an in-process compile server on a unix socket, opens an
    amend stream, and drives ``--steps`` add/remove updates through the
    wire protocol.  Every epoch's returned schedule document is rebuilt
    and re-validated client-side (``schedule_from_dict`` re-routes and
    re-checks conflict-freeness, so a bad schedule cannot hide), and
    one deliberately stale epoch checks the conflict path.
    """
    import asyncio
    import random
    import tempfile
    from time import perf_counter

    from repro.compiler.serialize import ArtifactError, schedule_from_dict
    from repro.core.configuration import ScheduleValidationError
    from repro.service.errors import EpochConflict
    from repro.service.server import CompileServer
    from repro.service.client import AsyncCompileClient
    from repro.service.specs import topology_to_spec
    from repro.topology.torus import Torus2D

    topo = Torus2D(args.width)
    spec = topology_to_spec(topo)
    n = topo.num_nodes
    rng = random.Random(args.seed)
    pairs = [[i, (i + 1) % n] for i in range(n)]

    async def run() -> dict:
        validation_errors = 0
        conflicts = 0
        actions: dict[str, int] = {}
        latencies: list[float] = []
        with tempfile.TemporaryDirectory(prefix="repro-amend-") as tmp:
            server = CompileServer(
                cache=tmp, socket_path=f"{tmp}/amend.sock",
                scheduler=args.algorithm,
            )
            await server.start()
            client = AsyncCompileClient(socket_path=f"{tmp}/amend.sock")
            try:
                reply = await client.amend(spec, pairs=pairs)
                root, epoch = reply["root"], reply["epoch"]
                live = [list(p) for p in pairs]
                for _ in range(args.steps):
                    removal = live.pop(rng.randrange(len(live)))
                    src = rng.randrange(n)
                    dst = rng.randrange(n - 1)
                    if dst >= src:
                        dst += 1
                    t0 = perf_counter()
                    reply = await client.amend(
                        spec, root=root, epoch=epoch,
                        add=[[src, dst]], remove=[removal[:2]],
                    )
                    latencies.append(perf_counter() - t0)
                    epoch = reply["epoch"]
                    live.append([src, dst])
                    actions[reply["action"]] = actions.get(reply["action"], 0) + 1
                    try:
                        schedule_from_dict(topo, reply["schedule"])
                    except (ArtifactError, ScheduleValidationError):
                        validation_errors += 1
                # The conflict path: a stale epoch must be refused with
                # the current epoch attached, not silently fork.
                try:
                    await client.amend(
                        spec, root=root, epoch=0, add=[[0, 1]]
                    )
                except EpochConflict as exc:
                    conflicts = 1
                    assert exc.current_epoch == epoch
            finally:
                await client.close()
                await server.shutdown()
        latencies.sort()
        return {
            "width": args.width,
            "steps": args.steps,
            "epochs": epoch,
            "validation_errors": validation_errors,
            "conflict_detected": conflicts,
            "actions": actions,
            "amend_mean_us": 1e6 * sum(latencies) / len(latencies),
            "amend_median_us": 1e6 * latencies[len(latencies) // 2],
        }

    return asyncio.run(run())


def _print_amend(args) -> None:
    if args.via_service:
        report = _amend_service_campaign(args)
        print(format_table(
            ["metric", "value"],
            [
                ("epochs", report["epochs"]),
                ("validation errors", report["validation_errors"]),
                ("stale epoch refused", "yes" if report["conflict_detected"]
                 else "NO"),
                ("actions", ", ".join(
                    f"{k}={v}" for k, v in sorted(report["actions"].items()))),
                ("amend mean", f"{report['amend_mean_us']:.0f} us"),
                ("amend median", f"{report['amend_median_us']:.0f} us"),
            ],
            title=(
                f"Service churn: {args.steps} updates through the amend "
                f"verb on a {args.width}x{args.width} torus (seed {args.seed})"
            ),
        ))
        ok = (report["validation_errors"] == 0
              and report["conflict_detected"] == 1)
    else:
        report = exp.churn_campaign(
            sizes=tuple(args.sizes),
            pattern=args.pattern,
            steps=args.steps,
            update_size=args.update_size,
            scheduler=args.algorithm,
            seed=args.seed,
        )
        rows = [
            (
                f"{r['size']}x{r['size']}", r["connections"],
                f"{r['amend_mean_us']:.0f}", f"{r['amend_median_us']:.0f}",
                ", ".join(f"{k}={v}" for k, v in sorted(r["actions"].items())),
                r["degree"], r["full_recompile_degree"],
                r["validation_errors"],
            )
            for r in report["rows"]
        ]
        s = report["summary"]
        print(format_table(
            ["torus", "conns", "mean us", "median us", "actions", "K",
             "K full", "bad"],
            rows,
            title=(
                f"Churn campaign: {args.steps} x{args.update_size} updates "
                f"per size, pattern {report['pattern']!r} -- flatness "
                f"{s['flatness']:.2f}x over {s['pattern_growth']:.0f}x "
                f"pattern growth"
            ),
        ))
        ok = s["validation_errors"] == 0 and s["bound_ok"]
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"\nwrote {args.output}")
    if not ok:
        print("repro-tdm amend: campaign invariants FAILED", file=sys.stderr)
        raise SystemExit(70)  # EX_SOFTWARE: an invariant was breached


def _print_bench(args) -> None:
    from repro.analysis import benchsuite as bs

    try:
        if args.action == "run":
            if not args.suite:
                raise bs.SuiteError("bench run needs --suite")
            suite = bs.load_suite(args.suite)
            baselines = bs.load_baselines(args.baseline_dir)
            report = bs.run_suite(
                suite,
                baselines=baselines,
                only=args.only or None,
                progress=lambda msg: print(msg, flush=True),
            )
        elif args.action == "compare":
            if not args.report:
                raise bs.SuiteError("bench compare needs --report")
            with open(args.report) as fh:
                saved = json.load(fh)
            baselines = bs.load_baselines(args.baseline_dir)
            report = bs.reevaluate(saved, baselines)
        else:  # update-baseline
            if not args.report:
                raise bs.SuiteError("bench update-baseline needs --report")
            with open(args.report) as fh:
                saved = json.load(fh)
            for path in bs.update_baselines(saved, args.baseline_dir):
                print(f"wrote {path}")
            return
    except bs.SuiteError as exc:
        print(f"repro-tdm bench: {exc}", file=sys.stderr)
        raise SystemExit(65)  # EX_DATAERR: malformed suite/report

    data = []
    for case in report["cases"]:
        m, v = case["metrics"], case["validation"]
        data.append((
            case["name"], case["kind"],
            f"{m.get('seconds', 0.0):.3f}s",
            f"{m['throughput']:,.0f}" if "throughput" in m else "-",
            int(m["degree"]) if "degree" in m else "-",
            v["errors"], v["warnings"],
            "pass" if v["passed"] else "FAIL",
        ))
    s = report["summary"]
    print(format_table(
        ["case", "kind", "best", "conns/s", "K", "err", "warn", "result"],
        data,
        title=(
            f"Bench suite {report['suite']!r}: {s['passed']}/{s['cases']} "
            f"cases passed ({s['errors']} errors, {s['warnings']} warnings)"
        ),
    ))
    if args.action == "run" and args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"\nwrote {args.report}")
    if not s["gate_ok"] and not args.no_gate:
        print("repro-tdm bench: assertion gate FAILED", file=sys.stderr)
        raise SystemExit(70)  # EX_SOFTWARE: a perf gate was breached


def _print_all(args) -> None:
    for fn in (_print_table1, _print_table2, _print_table3, _print_table4,
               _print_table5, _print_fig1, _print_fig3):
        fn(args)
        print()


def main(argv: list[str] | None = None) -> int:
    """Entry point (installed as ``repro-tdm``)."""
    parser = argparse.ArgumentParser(
        prog="repro-tdm",
        description="Reproduce the tables and figures of 'Compiled "
        "Communication for All-optical TDM Networks' (SC'96).",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="random patterns")
    p1.add_argument("--patterns", type=int, default=20, help="patterns per row (paper: 100)")
    p1.add_argument("--workers", type=_workers_arg, default=None,
                    help="worker processes (an int, or 'auto' = one per CPU)")
    p1.set_defaults(fn=_print_table1)

    p2 = sub.add_parser("table2", help="random redistributions")
    p2.add_argument("--samples", type=int, default=100, help="redistributions (paper: 500)")
    p2.add_argument("--workers", type=_workers_arg, default=None,
                    help="worker processes (an int, or 'auto' = one per CPU)")
    p2.set_defaults(fn=_print_table2)

    p3 = sub.add_parser("table3", help="frequently used patterns")
    p3.set_defaults(fn=_print_table3)

    p4 = sub.add_parser("table4", help="application pattern inventory")
    p4.set_defaults(fn=_print_table4)

    p5 = sub.add_parser("table5", help="compiled vs dynamic simulation")
    p5.add_argument("--gs-grids", type=int, nargs="+", default=[64, 128, 256])
    p5.add_argument("--p3m-grids", type=int, nargs="+", default=[32, 64])
    p5.set_defaults(fn=_print_table5)

    sub.add_parser("fig1", help="Fig. 1 configuration check").set_defaults(fn=_print_fig1)
    sub.add_parser("fig3", help="Fig. 3 order sensitivity").set_defaults(fn=_print_fig3)

    pa = sub.add_parser("ablation", help="extra-scheduler comparison")
    pa.add_argument("--patterns", type=int, default=3)
    pa.set_defaults(fn=_print_ablation)

    pq = sub.add_parser("aapc", help="AAPC decomposition stats")
    pq.add_argument("--width", type=int, default=8)
    pq.add_argument("--height", type=int, default=8)
    pq.set_defaults(fn=_print_aapc)

    ps = sub.add_parser("schedule", help="schedule a JSON pattern spec")
    ps.add_argument("--spec", required=True, help='e.g. {"pattern": "ring", "nodes": 64}')
    ps.add_argument("--width", type=int, default=8)
    ps.add_argument("--height", type=int, default=8)
    ps.set_defaults(fn=_print_schedule)

    sub.add_parser(
        "programs", help="whole-program compiled vs dynamic comparison"
    ).set_defaults(fn=_print_programs)

    pt = sub.add_parser("trace", help="protocol trace of a dynamic run")
    pt.add_argument("--spec", required=True)
    pt.add_argument("--degree", type=int, default=1)
    pt.add_argument("--limit", type=int, default=60)
    pt.add_argument("--no-hops", action="store_true")
    pt.add_argument("--width", type=int, default=8)
    pt.add_argument("--height", type=int, default=8)
    pt.set_defaults(fn=_print_trace)

    pc = sub.add_parser("compile", help="compile a pattern spec to an artifact file")
    pc.add_argument("--spec", required=True)
    pc.add_argument("--output", default=None, help="artifact JSON path")
    pc.add_argument("--algorithm", default="combined")
    pc.add_argument("--cache", default=None,
                    help="artifact cache directory (reused across runs)")
    pc.add_argument("--width", type=int, default=8)
    pc.add_argument("--height", type=int, default=8)
    pc.add_argument("--routers", default=None, metavar="HOST:P1,HOST:P2",
                    help="compile remotely via a farm router endpoint "
                         "list (fails over to a surviving router)")
    pc.set_defaults(fn=_compile_artifact)

    pv = sub.add_parser("serve", help="run the batch compile server")
    pv.add_argument("--socket", default=None, help="unix socket path")
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument("--port", type=int, default=7853)
    pv.add_argument("--cache", default=None, help="artifact cache directory")
    pv.add_argument("--workers", type=_workers_arg, default=None,
                    help="compile worker processes (default: in-process)")
    pv.add_argument("--algorithm", default="combined")
    pv.add_argument("--deadline", type=float, default=60.0,
                    help="per-request compile budget in seconds")
    pv.add_argument("--max-pending", type=_pos_arg, default=64,
                    help="admission high-water mark before load shedding")
    pv.add_argument("--amend-streams", type=_pos_arg, default=None,
                    help="LRU cap on live amend streams (default 256)")
    pv.set_defaults(fn=_serve)

    px = sub.add_parser(
        "chaos",
        help="fault-injection campaign against the compile service",
    )
    px.add_argument("--requests", type=_pos_arg, default=200)
    px.add_argument("--drop", type=float, default=0.05,
                    help="per-frame probability of drop + connection cut")
    px.add_argument("--delay", type=float, default=0.10,
                    help="per-frame probability of an injected delay")
    px.add_argument("--delay-seconds", type=float, default=0.05,
                    help="max injected delay per frame")
    px.add_argument("--truncate", type=float, default=0.05,
                    help="per-frame probability of truncation + cut")
    px.add_argument("--garble", type=float, default=0.05,
                    help="per-frame probability of byte corruption")
    px.add_argument("--deadline", type=float, default=30.0,
                    help="server-side per-request budget")
    px.add_argument("--cache", default=None,
                    help="artifact cache dir (default: fresh temp dir)")
    px.add_argument("--no-kill-writer", action="store_true",
                    help="skip the kill-mid-write cache crash test")
    px.add_argument("--output", default=None, help="write the report as JSON")
    px.set_defaults(fn=_print_chaos)

    pfm = sub.add_parser(
        "farm",
        help="node-kill chaos campaign against the sharded compile farm",
    )
    pfm.add_argument("--requests", type=_pos_arg, default=100)
    pfm.add_argument("--nodes", type=_pos_arg, default=3,
                     help="farm nodes behind the shard router")
    pfm.add_argument("--replication", type=_pos_arg, default=2,
                     help="replicas per artifact")
    pfm.add_argument("--kill-after", type=float, default=0.5,
                     help="fraction of the campaign before the shard kill")
    pfm.add_argument("--seed", type=int, default=0)
    pfm.add_argument("--cache", default=None,
                     help="per-node artifact cache root (default: memory)")
    pfm.add_argument("--ha", action="store_true",
                     help="run the high-availability campaign instead: "
                          "replica-push loss, partition, kill-primary-"
                          "mid-amend, rejoin, router restart")
    pfm.add_argument("--drop-rate", type=float, default=0.5,
                     help="[--ha] per-push replica drop probability")
    pfm.add_argument("--max-sweeps", type=_pos_arg, default=3,
                     help="[--ha] anti-entropy sweeps allowed to restore R")
    pfm.add_argument("--amend-steps", type=_pos_arg, default=6,
                     help="[--ha] epoch updates before the primary kill")
    pfm.add_argument("--output", default=None, help="write the report as JSON")
    pfm.set_defaults(fn=_print_farm)

    pcb = sub.add_parser(
        "cachebench", help="cold vs warm artifact-cache compile benchmark"
    )
    pcb.add_argument("--repeats", type=int, default=3)
    pcb.add_argument("--output", default=None, help="write the report as JSON")
    pcb.set_defaults(fn=_print_cachebench)

    pp = sub.add_parser("perf", help="scheduling-kernel benchmark + perf counters")
    pp.add_argument("--kernel", choices=["bitmask", "set", "both"], default="both")
    pp.add_argument("--repeats", type=int, default=3)
    pp.add_argument("--output", default=None,
                    help="write the report as JSON (e.g. BENCH_kernel.json)")
    pp.set_defaults(fn=_print_perf)

    pf = sub.add_parser(
        "faults",
        help="runtime fiber-cut campaign: compiled vs dynamic degradation",
    )
    pf.add_argument(
        "--pattern", default="all-to-all",
        choices=list(exp.FAULT_CAMPAIGN_PATTERNS),
    )
    pf.add_argument("--size", type=int, default=4, help="elements per message")
    pf.add_argument("--degree", type=int, default=2,
                    help="dynamic network's multiplexing degree")
    pf.add_argument("--faults", type=int, nargs="+", default=[0, 1, 2, 4],
                    help="fiber-cut counts to sweep (0 = healthy baseline)")
    pf.add_argument("--repair-after", type=_pos_arg, default=None,
                    help="restore each cut fiber after this many slots")
    pf.add_argument("--protocol", choices=["dropping", "holding"],
                    default="dropping")
    pf.add_argument("--recompile-latency", type=_nonneg_arg, default=3,
                    help="slots the compiled model pays per reschedule")
    pf.add_argument("--recovery", choices=["reactive", "protected"],
                    default="reactive",
                    help="compiled fault recovery: recompile at run time, "
                    "or fail over to precomputed backup configurations")
    pf.add_argument("--failover-latency", type=_nonneg_arg, default=1,
                    help="slots a protected failover pays to swap register "
                    "images")
    pf.add_argument("--cache", default=None,
                    help="artifact cache directory for recompilations")
    pf.add_argument("--output", default=None, help="write rows as JSON")
    pf.set_defaults(fn=_print_faults)

    pr = sub.add_parser(
        "protect",
        help="plan single-fiber backup configurations for a pattern spec",
    )
    pr.add_argument("--spec", required=True,
                    help='e.g. {"pattern": "all-to-all", "nodes": 64}')
    pr.add_argument("--algorithm", default="combined")
    pr.add_argument("--cache", default=None,
                    help="artifact cache directory (protection artifacts)")
    pr.add_argument("--verify", action="store_true",
                    help="deep-validate every backup schedule "
                    "(exit 70 on violation)")
    pr.add_argument("--output", default=None,
                    help="write the protection document as JSON")
    pr.add_argument("--width", type=int, default=8)
    pr.add_argument("--height", type=int, default=8)
    pr.set_defaults(fn=_print_protect)

    pm = sub.add_parser(
        "amend",
        help="incremental-compilation churn campaign (delta scheduling)",
    )
    pm.add_argument("--sizes", type=_pos_arg, nargs="+", default=[8, 16, 32],
                    help="torus widths to sweep (in-process campaign)")
    pm.add_argument("--pattern", default="ring",
                    choices=list(exp.FAULT_CAMPAIGN_PATTERNS),
                    help="initial pattern each stream compiles")
    pm.add_argument("--steps", type=_pos_arg, default=50,
                    help="updates per stream")
    pm.add_argument("--update-size", type=_pos_arg, default=2,
                    help="connections added and removed per update")
    pm.add_argument("--algorithm", default="greedy")
    pm.add_argument("--seed", type=int, default=0)
    pm.add_argument("--via-service", action="store_true",
                    help="drive the updates through a live server's "
                    "amend verb instead of the in-process engine")
    pm.add_argument("--width", type=_pos_arg, default=8,
                    help="torus width for --via-service")
    pm.add_argument("--output", default=None, help="write the report as JSON")
    pm.set_defaults(fn=_print_amend)

    pb = sub.add_parser(
        "bench",
        help="declarative benchmark suites with committed baselines",
    )
    pb.add_argument(
        "action", choices=["run", "compare", "update-baseline"],
        help="run a suite, re-gate a saved report, or commit its "
        "metrics as the new baselines",
    )
    pb.add_argument("--suite", default=None,
                    help="suite JSON (see benchmarks/suites/)")
    pb.add_argument("--report", default=None,
                    help="report JSON: written by run, read by "
                    "compare/update-baseline")
    pb.add_argument("--baseline-dir", default=".",
                    help="directory of the committed BENCH_*.json baselines")
    pb.add_argument("--only", action="append", default=None, metavar="CASE",
                    help="restrict to the named case (repeatable)")
    pb.add_argument("--no-gate", action="store_true",
                    help="report failures but exit 0 anyway")
    pb.set_defaults(fn=_print_bench)

    pall = sub.add_parser("all", help="run every table and figure (quick settings)")
    pall.add_argument("--patterns", type=int, default=5)
    pall.add_argument("--samples", type=int, default=30)
    pall.add_argument("--gs-grids", type=int, nargs="+", default=[64, 128, 256])
    pall.add_argument("--p3m-grids", type=int, nargs="+", default=[32, 64])
    pall.set_defaults(fn=_print_all)

    args = parser.parse_args(argv)
    try:
        args.fn(args)
    except Exception as exc:
        # Typed service failures become their conventional exit codes
        # (65 protocol, 69 unavailable, 75 overloaded/breaker, 124
        # timeout) so scripts can branch without parsing stderr.
        from repro.service.errors import ServiceError

        if isinstance(exc, ServiceError):
            print(f"repro-tdm: {exc.code}: {exc}", file=sys.stderr)
            return exc.exit_code
        raise
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
