"""Runtime fault schedules: mid-run fiber cuts and repairs.

`repro.topology.faults` handles *pre-run* failures: wrap the topology,
reroute, reschedule, done.  A :class:`FaultSchedule` extends that to
**runtime**: a list of ``(slot, fail|restore, link)`` events consumed
by both simulators while a pattern is in flight.

The two control models recover very differently, which is the point of
injecting the same schedule into both:

* the **dynamic** protocol tears down every circuit and in-flight
  reservation crossing the dead fiber, requeues the affected messages
  and re-reserves over a freshly routed path (whole-message retransmit:
  the reservation protocol keeps no delivery ledger);
* the **compiled** model reschedules the undelivered remainder on the
  degraded topology, paying ``SimParams.recompile_latency`` slots but
  resuming at element granularity (the schedule records exactly what
  was delivered when).

Only transit fibers may fail -- injection/ejection fibers are part of
the PE attachment, same rule as :class:`~repro.topology.faults.FaultyTopology`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.topology.base import Topology
from repro.topology.links import LinkKind

#: The two event kinds a schedule may contain.
ACTIONS = ("fail", "restore")


@dataclass(frozen=True)
class FaultEvent:
    """One runtime topology change."""

    slot: int
    action: str  # "fail" | "restore"
    link: int

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"fault action must be one of {ACTIONS}, got {self.action!r}"
            )
        if self.slot < 0:
            raise ValueError(f"fault slot must be >= 0, got {self.slot}")


class FaultSchedule:
    """An ordered list of fail/restore events applied during a run.

    Events are kept sorted by slot; **within a slot, restores apply
    before failures** (stable among events of the same kind).  The slot
    boundary therefore has one deterministic meaning: repairs land
    first, then cuts -- a fiber restored and a *different* fiber cut in
    the same slot never depend on input order, and a same-slot
    fail+restore of one fiber is rejected as inconsistent (the restore
    would precede its failure).  The schedule is immutable once built.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(
            enumerate(events),
            key=lambda iv: (iv[1].slot, 0 if iv[1].action == "restore" else 1, iv[0]),
        )
        self._events: tuple[FaultEvent, ...] = tuple(e for _, e in ordered)
        self._check_consistency()

    @classmethod
    def from_tuples(
        cls, tuples: Iterable[tuple[int, str, int]]
    ) -> "FaultSchedule":
        """Build from ``(slot, action, link)`` triples."""
        return cls(FaultEvent(slot=s, action=a, link=l) for s, a, l in tuples)

    def _check_consistency(self) -> None:
        down: set[int] = set()
        for e in self._events:
            if e.action == "fail":
                if e.link in down:
                    raise ValueError(
                        f"link {e.link} failed twice without a restore "
                        f"(second failure at slot {e.slot})"
                    )
                down.add(e.link)
            else:
                if e.link not in down:
                    raise ValueError(
                        f"restore of link {e.link} at slot {e.slot} "
                        "without a preceding failure"
                    )
                down.discard(e.link)

    # -- container protocol -------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({list(self._events)!r})"

    # -- queries ------------------------------------------------------------
    def failed_at(self, slot: int) -> frozenset[int]:
        """Links down after every event with ``event.slot <= slot``."""
        down: set[int] = set()
        for e in self._events:
            if e.slot > slot:
                break
            (down.add if e.action == "fail" else down.discard)(e.link)
        return frozenset(down)

    def links(self) -> frozenset[int]:
        """Every link the schedule ever touches."""
        return frozenset(e.link for e in self._events)

    def validate_for(self, topology: Topology) -> None:
        """Check every event names a transit fiber of ``topology``."""
        for e in self._events:
            info = topology.link_info(e.link)
            if info.kind is not LinkKind.TRANSIT:
                raise ValueError(
                    f"only transit fibers can fail; link {e.link} "
                    f"is {info.kind.value}"
                )


def random_fault_schedule(
    topology: Topology,
    num_faults: int,
    horizon: int,
    *,
    repair_after: int | None = None,
    seed: int | np.random.Generator = 0,
) -> FaultSchedule:
    """``num_faults`` distinct transit fibers cut at uniform slots.

    Failure slots are drawn uniformly from ``[1, horizon]``; with
    ``repair_after`` set, each cut fiber is restored that many slots
    later (an intermittent-fault model; default: cuts are permanent).
    ``repair_after`` must be at least 1: a same-slot fail+restore of
    one fiber is meaningless under the schedule's restore-first slot
    ordering and is rejected.  Deterministic in ``seed``.
    """
    if num_faults < 0:
        raise ValueError("num_faults must be >= 0")
    if repair_after is not None and repair_after < 1:
        raise ValueError("repair_after must be >= 1 (restores apply first in a slot)")
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if num_faults > topology.num_transit_links:
        raise ValueError(
            f"cannot cut {num_faults} of {topology.num_transit_links} fibers"
        )
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    links = topology.transit_link_base + rng.choice(
        topology.num_transit_links, size=num_faults, replace=False
    )
    events = []
    for link in sorted(int(l) for l in links):
        slot = 1 + int(rng.integers(0, horizon))
        events.append(FaultEvent(slot=slot, action="fail", link=link))
        if repair_after is not None:
            events.append(
                FaultEvent(slot=slot + repair_after, action="restore", link=link)
            )
    return FaultSchedule(events)
