"""Compiled-communication network model.

Under compiled communication the compiler has already partitioned the
pattern's connections into K configurations (we use the paper's
*combined* scheduler by default); at run time the switch registers are
preloaded, the network cycles through the K states, and every message
simply streams during its connection's slot -- no reservations, no
headers, no control traffic.  The communication time of a pattern is
the makespan over its messages:

    ``startup + finish(slot, K, ceil(size / slot_payload))``

where a message owning slot ``s`` transmits ``slot_payload`` elements
each time the frame reaches ``s``.

Both an analytic evaluation and a literal slot-stepped simulation are
provided; they agree exactly (asserted in the test suite), which
cross-validates the closed form the benches rely on for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import ConfigurationSet
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler
from repro.core.requests import RequestSet
from repro.simulator.messages import Message, messages_from_requests
from repro.simulator.params import SimParams
from repro.topology.base import Topology


def transfer_chunks(size: int, slot_payload: int) -> int:
    """Number of owned slots needed to move ``size`` elements."""
    if size < 1:
        raise ValueError("message size must be >= 1 element")
    return -(-size // slot_payload)


def transfer_finish(start: int, slot: int, degree: int, chunks: int) -> int:
    """Completion time of a transfer that may begin at ``start``.

    The connection owns slot index ``slot`` of a ``degree``-slot frame;
    the first usable slot is the earliest time >= ``start`` congruent to
    ``slot`` (mod ``degree``), and one chunk moves per frame after that.
    """
    first = start + (slot - start) % degree
    return first + (chunks - 1) * degree + 1


@dataclass
class CompiledResult:
    """Outcome of a compiled-communication run of one pattern."""

    completion_time: int
    degree: int
    schedule: ConfigurationSet
    messages: list[Message]
    params: SimParams

    @property
    def makespan(self) -> int:
        """Alias for ``completion_time`` (slots)."""
        return self.completion_time


def compiled_completion_time(
    topology: Topology,
    requests: RequestSet,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "combined",
) -> CompiledResult:
    """Analytic compiled-communication time of ``requests``.

    Schedules the pattern (computing the minimal multiplexing degree
    the chosen algorithm finds), assigns each message its slot, and
    evaluates the closed-form makespan.
    """
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    slot_map = schedule.slot_map()
    messages = messages_from_requests(requests)
    degree = max(schedule.degree, 1)
    completion = params.compiled_startup
    for m in messages:
        m.first_attempt = 0
        m.established = params.compiled_startup
        m.slot = slot_map[m.mid]
        chunks = transfer_chunks(m.size, params.slot_payload)
        m.delivered = transfer_finish(
            params.compiled_startup, m.slot, degree, chunks
        )
        completion = max(completion, m.delivered)
    return CompiledResult(
        completion_time=completion,
        degree=schedule.degree,
        schedule=schedule,
        messages=messages,
        params=params,
    )


def simulate_compiled(
    topology: Topology,
    requests: RequestSet,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "combined",
) -> CompiledResult:
    """Slot-stepped simulation of the same model (cross-validation).

    Walks time slot by slot, streaming ``slot_payload`` elements for
    every connection whose slot matches the frame position.  Slower but
    makes no closed-form assumptions.
    """
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    slot_map = schedule.slot_map()
    messages = messages_from_requests(requests)
    degree = max(schedule.degree, 1)

    remaining = {m.mid: m.size for m in messages}
    for m in messages:
        m.first_attempt = 0
        m.established = params.compiled_startup
        m.slot = slot_map[m.mid]
    t = params.compiled_startup
    completion = t
    while remaining:
        if t - params.compiled_startup > params.max_slots:
            raise RuntimeError("compiled simulation exceeded max_slots")
        active = t % degree
        done = []
        for mid in remaining:
            m = messages[mid]
            if m.slot == active:
                remaining[mid] -= params.slot_payload
                if remaining[mid] <= 0:
                    m.delivered = t + 1
                    completion = max(completion, t + 1)
                    done.append(mid)
        for mid in done:
            del remaining[mid]
        t += 1
    return CompiledResult(
        completion_time=completion,
        degree=schedule.degree,
        schedule=schedule,
        messages=messages,
        params=params,
    )
