"""Compiled-communication network model.

Under compiled communication the compiler has already partitioned the
pattern's connections into K configurations (we use the paper's
*combined* scheduler by default); at run time the switch registers are
preloaded, the network cycles through the K states, and every message
simply streams during its connection's slot -- no reservations, no
headers, no control traffic.  The communication time of a pattern is
the makespan over its messages:

    ``startup + finish(slot, K, ceil(size / slot_payload))``

where a message owning slot ``s`` transmits ``slot_payload`` elements
each time the frame reaches ``s``.

Both an analytic evaluation and a literal slot-stepped simulation are
provided; they agree exactly (asserted in the test suite), which
cross-validates the closed form the benches rely on for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import perf
from repro.core.configuration import ConfigurationSet
from repro.core.paths import Connection, route_requests
from repro.core.registry import get_scheduler
from repro.core.requests import RequestSet
from repro.simulator.messages import Message, messages_from_requests
from repro.simulator.params import SimParams
from repro.topology.base import Topology


def transfer_chunks(size: int, slot_payload: int) -> int:
    """Number of owned slots needed to move ``size`` elements."""
    if size < 1:
        raise ValueError("message size must be >= 1 element")
    return -(-size // slot_payload)


def transfer_finish(start: int, slot: int, degree: int, chunks: int) -> int:
    """Completion time of a transfer that may begin at ``start``.

    The connection owns slot index ``slot`` of a ``degree``-slot frame;
    the first usable slot is the earliest time >= ``start`` congruent to
    ``slot`` (mod ``degree``), and one chunk moves per frame after that.
    """
    first = start + (slot - start) % degree
    return first + (chunks - 1) * degree + 1


def chunks_in_window(start: int, end: int, slot: int, degree: int) -> int:
    """Chunks a connection owning ``slot`` moves during ``[start, end)``.

    The closed-form count of slot times congruent to ``slot`` (mod
    ``degree``) in the window -- the fault simulator uses it to advance
    partial transfers exactly between reschedule points.
    """
    if end <= start:
        return 0
    first = start + (slot - start) % degree
    if first >= end:
        return 0
    return (end - 1 - first) // degree + 1


@dataclass
class CompiledResult:
    """Outcome of a compiled-communication run of one pattern."""

    completion_time: int
    degree: int
    schedule: ConfigurationSet
    messages: list[Message]
    params: SimParams

    @property
    def makespan(self) -> int:
        """Alias for ``completion_time`` (slots)."""
        return self.completion_time


def compiled_completion_time(
    topology: Topology,
    requests: RequestSet,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "combined",
) -> CompiledResult:
    """Analytic compiled-communication time of ``requests``.

    Schedules the pattern (computing the minimal multiplexing degree
    the chosen algorithm finds), assigns each message its slot, and
    evaluates the closed-form makespan.
    """
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    slot_map = schedule.slot_map()
    messages = messages_from_requests(requests)
    degree = max(schedule.degree, 1)
    completion = params.compiled_startup
    for m in messages:
        m.first_attempt = 0
        m.established = params.compiled_startup
        m.slot = slot_map[m.mid]
        chunks = transfer_chunks(m.size, params.slot_payload)
        m.delivered = transfer_finish(
            params.compiled_startup, m.slot, degree, chunks
        )
        completion = max(completion, m.delivered)
    return CompiledResult(
        completion_time=completion,
        degree=schedule.degree,
        schedule=schedule,
        messages=messages,
        params=params,
    )


@dataclass
class CompiledFaultResult:
    """Outcome of a compiled run through a runtime fault schedule.

    Each mid-run fiber cut that touches an undelivered connection
    triggers a **reschedule**: the compiler reroutes and reslots the
    remainder on the degraded topology, pays
    ``SimParams.recompile_latency`` slots of global pause (the switch
    shift-registers are reloaded network-wide), and resumes at element
    granularity -- the schedule records exactly what was delivered
    when, so nothing is retransmitted.  Cuts that miss every remaining
    route cost nothing, and repairs are absorbed lazily at the next
    reschedule (re-establishing circuits just to use a repaired fiber
    rarely pays for the reconfiguration).
    """

    completion_time: int
    #: schedule degree of the initial (pre-fault) compilation.
    initial_degree: int
    #: largest degree any reschedule needed -- the fault's footprint.
    max_degree: int
    #: degree of the last active schedule.
    final_degree: int
    reschedules: int
    #: total slots spent paused in recompilation.
    recompile_slots: int
    #: messages unroutable on the degraded network (partitioned).
    lost: int
    messages: list[Message]
    #: one entry per ``fail`` event: slot, link, messages rescheduled,
    #: time-to-recover (slots until transfers resumed; 0 for misses),
    #: and ``recovery`` (``"failover"``/``"recompile"``/``"none"``).
    fault_log: list[dict]
    params: SimParams
    #: recovery mode the run used (``"reactive"`` or ``"protected"``).
    recovery: str = "reactive"
    #: protected failovers executed (backup register-image swaps).
    failovers: int = 0
    #: total slots spent paused in failovers.
    failover_slots: int = 0
    #: protected-mode faults that had to fall back to recompilation
    #: (uncovered scenario, or backup routes blocked by other cuts).
    uncovered: int = 0

    @property
    def makespan(self) -> int:
        """Alias for ``completion_time`` (slots)."""
        return self.completion_time

    @property
    def degree_inflation(self) -> int:
        """Extra slots per frame the faults forced on the schedule."""
        return self.max_degree - self.initial_degree


def simulate_compiled_faulty(
    topology: Topology,
    requests: RequestSet,
    faults,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "combined",
    cache=None,
    recovery: str = "reactive",
    protection=None,
) -> CompiledFaultResult:
    """Compiled run of ``requests`` under a runtime fault schedule.

    Advances transfers in closed form between fault events; a ``fail``
    whose fiber carries an undelivered connection pauses the network,
    recompiles the remainder (remaining element counts, degraded
    routes) and resumes ``recompile_latency`` slots later.  Events at
    slot 0 degrade the topology *before* the initial compile, making
    them equivalent to scheduling on a pre-run
    :class:`~repro.topology.faults.FaultyTopology`.  With an empty
    schedule this reduces exactly to :func:`compiled_completion_time`.

    ``cache`` (an :class:`repro.service.cache.ArtifactCache`) routes
    every (re)compilation through the artifact cache: repeated faults
    that leave the network in a previously-compiled degraded state --
    common in long campaigns that cut and repair the same fibers --
    reuse the stored schedule and pay only the simulated
    ``recompile_latency``, no host-side scheduler run.  Cached compiles
    schedule the *canonical* form of the remainder, so slot numbering
    (not validity or simulated cost model) can differ from an uncached
    run when the scheduler is sensitive to request order.

    ``recovery="protected"`` precomputes (or accepts via ``protection``,
    a :class:`~repro.core.protection.ProtectedSchedule` built over the
    same request set) a backup configuration set for every single-fiber
    fault at compile time.  A cut that hits a live route then **fails
    over**: the precomputed backup register images for that scenario are
    selected and the run resumes ``failover_latency`` slots later --
    zero run-time scheduling.  Recompilation remains only as the
    fallback for uncovered scenarios: a partitioning cut, or a backup
    plan whose routes cross *another* fiber that is currently down
    (double faults).  A failover is legal from any simulator state
    because each scenario's backup schedule is a complete conflict-free
    schedule of the whole pattern on the degraded topology -- delivered
    messages just leave their slots dark.
    """
    from repro.topology.base import RoutingError
    from repro.topology.faults import FaultyTopology

    if recovery not in ("reactive", "protected"):
        raise ValueError(
            f"recovery must be 'reactive' or 'protected', got {recovery!r}"
        )
    if isinstance(topology, FaultyTopology):
        topo = FaultyTopology(topology.base, topology.failed_links)
    else:
        topo = FaultyTopology(topology)
    faults.validate_for(topo)
    messages = messages_from_requests(requests)
    remaining = {m.mid: m.size for m in messages}
    for m in messages:
        m.first_attempt = 0

    lost_count = 0
    degrees: list[int] = []
    fault_log: list[dict] = []
    reschedules = 0
    recompile_slots = 0
    failovers = 0
    failover_slots = 0
    uncovered_hits = 0
    slots: dict[int, int] = {}
    routes: dict[int, frozenset[int]] = {}
    degree = 1
    protected_sched = None  # ProtectedSchedule once compiled
    idx_to_mid: dict[int, int] = {}  # protection connection index -> mid

    def drop_unroutable(start: int) -> list[int]:
        """Declare partitioned messages lost; return the routable mids."""
        nonlocal lost_count
        live: list[int] = []
        for mid in sorted(remaining):
            m = messages[mid]
            try:
                topo.route(m.src, m.dst)
            except RoutingError:
                m.lost = start
                lost_count += 1
                continue
            live.append(mid)
        for mid in list(remaining):
            if messages[mid].lost is not None:
                del remaining[mid]
        return live

    def compile_remaining(start: int) -> None:
        """(Re)schedule every undelivered message on the current topology."""
        nonlocal slots, routes, degree
        live = drop_unroutable(start)
        slots, routes = {}, {}
        if not live:
            degrees.append(degree)
            return
        # A pristine wrapper routes identically to its base but hides
        # the concrete type from structure-aware schedulers (AAPC), so
        # compile on the base until a failure is actually in force.
        sched_topo = topo if topo.failed_links else topo.base
        if cache is not None:
            from repro.service.compile import compile_pattern

            # Tag each sub-request with its message id so the cached
            # (canonical, detranslated) slot entries map back to
            # messages regardless of request order.
            tuples = [
                (messages[mid].src, messages[mid].dst, remaining[mid], mid)
                for mid in live
            ]
            try:
                result = compile_pattern(
                    sched_topo, tuples, cache=cache, scheduler=scheduler
                )
            except RoutingError:
                result = compile_pattern(
                    sched_topo, tuples, cache=cache, scheduler="coloring"
                )
            degree = max(result.degree, 1)
            degrees.append(result.degree)
            for slot_idx, entries in enumerate(result.schedule_doc["slots"]):
                for e in entries:
                    mid = e["tag"]
                    slots[mid] = slot_idx
                    messages[mid].slot = slot_idx
                    messages[mid].established = start
            for mid in live:
                routes[mid] = frozenset(
                    sched_topo.route(messages[mid].src, messages[mid].dst)
                )
            return
        sub = RequestSet.from_sized_pairs(
            [(messages[mid].src, messages[mid].dst, remaining[mid]) for mid in live]
        )
        connections = route_requests(sched_topo, sub)
        try:
            schedule = get_scheduler(scheduler)(connections, sched_topo)
        except RoutingError:
            # Structure-aware schedulers (AAPC) route node pairs beyond
            # the surviving connections; a partition can disconnect
            # those even when every live message is routable.
            schedule = get_scheduler("coloring")(connections, sched_topo)
        slot_map = schedule.slot_map()
        degree = max(schedule.degree, 1)
        degrees.append(schedule.degree)
        for i, mid in enumerate(live):
            slots[mid] = slot_map[i]
            routes[mid] = connections[i].link_set
            messages[mid].slot = slot_map[i]
            messages[mid].established = start

    def advance(t0: int, t1: int | None) -> None:
        """Move data during ``[t0, t1)`` (``t1=None``: run to drain)."""
        for mid in list(remaining):
            m = messages[mid]
            chunks = transfer_chunks(remaining[mid], params.slot_payload)
            if t1 is not None:
                got = chunks_in_window(t0, t1, slots[mid], degree)
                if got < chunks:
                    remaining[mid] -= got * params.slot_payload
                    continue
            m.delivered = transfer_finish(t0, slots[mid], degree, chunks)
            del remaining[mid]

    def compile_initial_protected(start: int) -> None:
        """Initial compile + protection planning (protected mode only).

        Tags every sub-request with its message id, so the protection's
        connection indices map back to messages no matter how the cache
        canonicalizes the pattern.
        """
        nonlocal slots, routes, degree, protected_sched, idx_to_mid
        live = drop_unroutable(start)
        slots, routes = {}, {}
        if not live:
            degrees.append(degree)
            return
        sched_topo = topo if topo.failed_links else topo.base
        if protection is not None:
            ptopo = protection.topology
            pfailed = frozenset(getattr(ptopo, "failed_links", ()))
            pbase = getattr(ptopo, "base", ptopo)
            if topo.failed_links or pfailed:
                raise ValueError(
                    "an external protection requires an undegraded start "
                    "(no slot-0 fault events, pristine topologies)"
                )
            if pbase.signature != topo.base.signature:
                raise ValueError(
                    f"protection built for {pbase.signature!r}, "
                    f"simulating {topo.base.signature!r}"
                )
            conns = protection.connections
            if len(conns) != len(live) or any(
                c.pair != (messages[mid].src, messages[mid].dst)
                for c, mid in zip(conns, live)
            ):
                raise ValueError(
                    "protection does not cover this request set "
                    "(endpoints differ)"
                )
            protected_sched = protection
            idx_to_mid = {c.index: mid for c, mid in zip(conns, live)}
        elif cache is not None:
            from repro.service.protect import protect_pattern

            tuples = [
                (messages[mid].src, messages[mid].dst, remaining[mid], mid)
                for mid in live
            ]
            try:
                presult = protect_pattern(
                    sched_topo, tuples, cache=cache, scheduler=scheduler
                )
            except RoutingError:
                presult = protect_pattern(
                    sched_topo, tuples, cache=cache, scheduler="coloring"
                )
            protected_sched = presult.protected
            idx_to_mid = {
                c.index: c.request.tag for c in protected_sched.connections
            }
        else:
            from repro.core.protection import build_protection
            from repro.core.requests import Request

            sub = RequestSet(
                (
                    Request(
                        messages[mid].src, messages[mid].dst,
                        size=remaining[mid], tag=mid,
                    )
                    for mid in live
                ),
                allow_duplicates=True,
            )
            connections = route_requests(sched_topo, sub)
            try:
                schedule = get_scheduler(scheduler)(connections, sched_topo)
            except RoutingError:
                schedule = get_scheduler("coloring")(connections, sched_topo)
            protected_sched = build_protection(sched_topo, connections, schedule)
            idx_to_mid = {c.index: c.request.tag for c in connections}
        base_slots = protected_sched.base_slot_map()
        degree = max(protected_sched.base_degree, 1)
        degrees.append(protected_sched.base_degree)
        for c in protected_sched.connections:
            mid = idx_to_mid[c.index]
            slots[mid] = base_slots[c.index]
            routes[mid] = c.link_set
            messages[mid].slot = slots[mid]
            messages[mid].established = start

    def plan_failover(link: int):
        """Backup state for ``link``, or None if failover is unsafe.

        Unsafe: no covered plan, a remaining message outside the
        protection's scope, or a backup route crossing *another* fiber
        that is currently down (the plan assumed only ``link`` failed).
        """
        prot = protected_sched
        if prot is None or not prot.covers(link):
            return None
        slot_map = prot.slot_map_for(link)
        route_map = prot.routes_for(link)
        mid_to_idx = {mid: idx for idx, mid in idx_to_mid.items()}
        bad = topo.failed_links
        new_slots: dict[int, int] = {}
        new_routes: dict[int, frozenset[int]] = {}
        for mid in remaining:
            idx = mid_to_idx.get(mid)
            if idx is None:
                return None
            r = route_map[idx]
            if not r.isdisjoint(bad):
                return None
            new_slots[mid] = slot_map[idx]
            new_routes[mid] = r
        plan = prot.plan(link)
        return new_slots, new_routes, prot.degree_for(link), plan.delta_k

    events = list(faults)
    applied = 0
    while applied < len(events) and events[applied].slot <= 0:
        ev = events[applied]  # pre-run failures: degrade before compiling
        (topo.fail_link if ev.action == "fail" else topo.restore_link)(ev.link)
        applied += 1

    t = params.compiled_startup
    if recovery == "protected":
        compile_initial_protected(t)
    else:
        compile_remaining(t)
    initial_degree = degrees[0]

    for ev in events[applied:]:
        if ev.slot > t:
            if remaining:
                advance(t, ev.slot)
            t = ev.slot
        if ev.action == "restore":
            # Keep streaming on the current (still valid) schedule; the
            # repaired fiber is picked up by the next recompilation or
            # failover (both recheck the live failed-link set).
            topo.restore_link(ev.link)
            continue
        topo.fail_link(ev.link)
        hit = any(ev.link in routes[mid] for mid in remaining)
        if remaining and hit:
            at = max(t, ev.slot)
            swap = plan_failover(ev.link) if recovery == "protected" else None
            if swap is not None:
                new_slots, new_routes, new_degree, delta_k = swap
                resume = at + params.failover_latency
                slots, routes = new_slots, new_routes
                degree = max(new_degree, 1)
                degrees.append(new_degree)
                for mid in remaining:
                    messages[mid].slot = slots[mid]
                    messages[mid].established = resume
                failovers += 1
                failover_slots += resume - at
                perf.COUNTERS.protect_failovers += 1
                perf.COUNTERS.protect_delta_k += delta_k
                fault_log.append(
                    {"slot": ev.slot, "link": ev.link,
                     "rescheduled": len(remaining),
                     "time_to_recover": resume - ev.slot,
                     "recovery": "failover", "delta_k": delta_k}
                )
            else:
                if recovery == "protected":
                    uncovered_hits += 1
                    perf.COUNTERS.protect_uncovered += 1
                resume = at + params.recompile_latency
                compile_remaining(resume)
                reschedules += 1
                recompile_slots += resume - at
                fault_log.append(
                    {"slot": ev.slot, "link": ev.link,
                     "rescheduled": len(remaining),
                     "time_to_recover": resume - ev.slot,
                     "recovery": "recompile"}
                )
            t = resume
        else:
            fault_log.append(
                {"slot": ev.slot, "link": ev.link, "rescheduled": 0,
                 "time_to_recover": 0, "recovery": "none"}
            )
    if remaining:
        advance(t, None)

    completion = max(
        (m.delivered for m in messages if m.delivered is not None),
        default=params.compiled_startup,
    )
    return CompiledFaultResult(
        completion_time=max(completion, params.compiled_startup),
        initial_degree=initial_degree,
        max_degree=max(degrees),
        final_degree=degrees[-1],
        reschedules=reschedules,
        recompile_slots=recompile_slots,
        lost=lost_count,
        messages=messages,
        fault_log=fault_log,
        params=params,
        recovery=recovery,
        failovers=failovers,
        failover_slots=failover_slots,
        uncovered=uncovered_hits,
    )


@dataclass(frozen=True)
class EpochUpdate:
    """One pattern change applied to a running compiled pattern.

    ``add`` rows are ``(src, dst)`` or ``(src, dst, size)`` request
    tuples; ``remove`` names existing messages by mid.  Updates are
    applied at ``slot`` (clamped to the current simulation time if the
    network is already past it).
    """

    slot: int
    add: tuple = ()
    remove: tuple = ()


@dataclass
class CompiledEpochResult:
    """Outcome of a compiled run through a sequence of epoch updates.

    Each :class:`EpochUpdate` pauses the network at an **epoch
    boundary**: the delta scheduler amends the live schedule (removals
    free slack in place, additions pack into it, the cost model may
    repack or recompile), the amended register image is swapped in, and
    the run resumes ``SimParams.amend_latency`` slots later.  Transfers
    advance in closed form between boundaries, so nothing delivered is
    retransmitted; messages removed before delivery are **cancelled**.
    """

    completion_time: int
    #: schedule degree of the initial (epoch-0) compilation.
    initial_degree: int
    #: largest degree any epoch needed.
    max_degree: int
    #: degree of the final epoch's schedule.
    final_degree: int
    #: number of amends applied (final epoch number).
    epochs: int
    #: total slots spent paused swapping schedules.
    amend_slots: int
    #: undelivered messages removed by an update.
    cancelled: int
    messages: list[Message]
    #: one entry per update: slot, epoch, cost-model action, delta_k,
    #: degree after the amend, and added/removed/cancelled counts.
    epoch_log: list[dict]
    params: SimParams

    @property
    def makespan(self) -> int:
        """Alias for ``completion_time`` (slots)."""
        return self.completion_time


def simulate_compiled_epochs(
    topology: Topology,
    requests: RequestSet,
    updates,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "combined",
    policy=None,
    kernel: str | None = None,
    validate: bool = True,
) -> CompiledEpochResult:
    """Compiled run of ``requests`` through a sequence of epoch updates.

    The compiled model's answer to a pattern that *changes* mid-run:
    instead of stopping the network and recompiling from scratch, each
    update is amended into the live schedule by
    :class:`repro.core.delta.DeltaScheduler` and the network pays only
    ``amend_latency`` slots of pause (plus whatever slot reshuffling the
    cost model's chosen action implies -- surviving transfers keep their
    delivered element counts either way).  With no updates this reduces
    exactly to :func:`compiled_completion_time`.

    New messages get fresh mids (``len(messages)`` onward); removal of
    an already-delivered message just frees its slot for later packing,
    while removal of an in-flight message **cancels** it (``lost`` is
    stamped with the boundary slot).  With ``validate=True`` (default)
    every epoch's schedule is re-checked against its connection set, so
    a campaign doubles as a correctness gate.
    """
    from repro.core.delta import DEFAULT_POLICY, DeltaScheduler
    from repro.core.requests import Request

    if policy is None:
        policy = DEFAULT_POLICY
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    engine = DeltaScheduler(
        schedule, num_links=topology.num_links, policy=policy, kernel=kernel
    )
    messages = messages_from_requests(requests)
    remaining = {m.mid: m.size for m in messages}
    slots = engine.schedule.slot_map()  # mid == connection index
    degree = max(engine.degree, 1)
    t = params.compiled_startup
    for m in messages:
        m.first_attempt = 0
        m.established = t
        m.slot = slots[m.mid]

    initial_degree = engine.degree
    max_degree = engine.degree
    amend_slots = 0
    cancelled = 0
    epoch_log: list[dict] = []
    epoch = 0

    def advance(t0: int, t1: int | None) -> None:
        """Move data during ``[t0, t1)`` (``t1=None``: run to drain)."""
        for mid in list(remaining):
            m = messages[mid]
            chunks = transfer_chunks(remaining[mid], params.slot_payload)
            if t1 is not None:
                got = chunks_in_window(t0, t1, slots[mid], degree)
                if got < chunks:
                    remaining[mid] -= got * params.slot_payload
                    continue
            m.delivered = transfer_finish(t0, slots[mid], degree, chunks)
            del remaining[mid]

    events = sorted(updates, key=lambda u: u.slot)
    for ev in events:
        if ev.slot > t:
            if remaining:
                advance(t, ev.slot)
            t = ev.slot
        at = max(t, ev.slot)
        removed_here = 0
        cancelled_here = 0
        for mid in ev.remove:
            if not 0 <= mid < len(messages):
                raise ValueError(f"remove names unknown mid {mid}")
            removed_here += 1
            if mid in remaining:
                messages[mid].lost = at
                del remaining[mid]
                cancelled_here += 1
        new_msgs: list[Message] = []
        new_conns = []
        for row in ev.add:
            src, dst, *rest = row
            size = int(rest[0]) if rest else 1
            mid = len(messages) + len(new_msgs)
            new_msgs.append(Message(mid=mid, src=src, dst=dst, size=size))
            new_conns.append(Connection(
                mid, Request(src, dst, size=size), topology.route(src, dst)
            ))
        result = engine.amend(add=new_conns, remove=list(ev.remove))
        if validate:
            engine.schedule.validate(engine.connections())
        epoch += 1
        resume = at + params.amend_latency
        slots = engine.schedule.slot_map()
        degree = max(engine.degree, 1)
        max_degree = max(max_degree, engine.degree)
        for m in new_msgs:
            m.first_attempt = at
            remaining[m.mid] = m.size
        messages.extend(new_msgs)
        for mid in remaining:
            messages[mid].slot = slots[mid]
            messages[mid].established = resume
        amend_slots += resume - at
        cancelled += cancelled_here
        epoch_log.append({
            "slot": ev.slot, "epoch": epoch, "action": result.action,
            "delta_k": result.delta_k, "degree": engine.degree,
            "added": len(new_msgs), "removed": removed_here,
            "cancelled": cancelled_here,
        })
        t = resume
    if remaining:
        advance(t, None)

    completion = max(
        (m.delivered for m in messages if m.delivered is not None),
        default=params.compiled_startup,
    )
    return CompiledEpochResult(
        completion_time=max(completion, params.compiled_startup),
        initial_degree=initial_degree,
        max_degree=max_degree,
        final_degree=engine.degree,
        epochs=epoch,
        amend_slots=amend_slots,
        cancelled=cancelled,
        messages=messages,
        epoch_log=epoch_log,
        params=params,
    )


def simulate_compiled(
    topology: Topology,
    requests: RequestSet,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "combined",
) -> CompiledResult:
    """Slot-stepped simulation of the same model (cross-validation).

    Walks time slot by slot, streaming ``slot_payload`` elements for
    every connection whose slot matches the frame position.  Slower but
    makes no closed-form assumptions.
    """
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    slot_map = schedule.slot_map()
    messages = messages_from_requests(requests)
    degree = max(schedule.degree, 1)

    remaining = {m.mid: m.size for m in messages}
    for m in messages:
        m.first_attempt = 0
        m.established = params.compiled_startup
        m.slot = slot_map[m.mid]
    t = params.compiled_startup
    completion = t
    while remaining:
        if t - params.compiled_startup > params.max_slots:
            raise RuntimeError("compiled simulation exceeded max_slots")
        active = t % degree
        done = []
        for mid in remaining:
            m = messages[mid]
            if m.slot == active:
                remaining[mid] -= params.slot_payload
                if remaining[mid] <= 0:
                    m.delivered = t + 1
                    completion = max(completion, t + 1)
                    done.append(mid)
        for mid in done:
            del remaining[mid]
        t += 1
    return CompiledResult(
        completion_time=completion,
        degree=schedule.degree,
        schedule=schedule,
        messages=messages,
        params=params,
    )
