"""Cycle-level simulator for time-multiplexed all-optical networks.

Reproduces the section-4 evaluation: the same TDM data-network model is
driven either by **compiled communication** (switch registers preloaded
from an off-line schedule; zero control traffic) or by **dynamic
control** (a distributed path-reservation protocol over an electronic
shadow network).  Time is measured in *slots* -- the paper's time unit.

The paper's simulator parameter list was lost from the archived text;
:class:`repro.simulator.params.SimParams` documents our choices.  The
defaults are calibrated so the compiled-communication model reproduces
the paper's GS column exactly (a ``G``-element boundary exchange at
multiplexing degree 2 costs ``2*ceil(G/4) + 3`` slots = 35/67/131 for
G = 64/128/256), and every parameter is an explicit knob.
"""

from repro.simulator.params import SimParams
from repro.simulator.messages import Message, messages_from_requests
from repro.simulator.tdm import LinkSlotState, TDMNetwork
from repro.simulator.compiled import (
    CompiledEpochResult,
    CompiledFaultResult,
    CompiledResult,
    EpochUpdate,
    compiled_completion_time,
    simulate_compiled,
    simulate_compiled_epochs,
    simulate_compiled_faulty,
)
from repro.simulator.dynamic import DynamicResult, simulate_dynamic
from repro.simulator.faults import FaultEvent, FaultSchedule, random_fault_schedule
from repro.simulator.metrics import recovery_summary, summarize
from repro.simulator.wdm import (
    WDMCompiledResult,
    simulate_dynamic_wdm,
    wdm_compiled_completion_time,
)
from repro.simulator.register_sim import simulate_registers, weighted_registers

__all__ = [
    "SimParams",
    "Message",
    "messages_from_requests",
    "LinkSlotState",
    "TDMNetwork",
    "CompiledEpochResult",
    "CompiledFaultResult",
    "CompiledResult",
    "EpochUpdate",
    "simulate_compiled",
    "simulate_compiled_epochs",
    "simulate_compiled_faulty",
    "compiled_completion_time",
    "DynamicResult",
    "simulate_dynamic",
    "FaultEvent",
    "FaultSchedule",
    "random_fault_schedule",
    "recovery_summary",
    "summarize",
    "WDMCompiledResult",
    "simulate_dynamic_wdm",
    "wdm_compiled_completion_time",
    "simulate_registers",
    "weighted_registers",
]
