"""Result summarisation helpers shared by benches, CLI and examples."""

from __future__ import annotations

import statistics
from collections.abc import Sequence

from repro.simulator.messages import Message


def summarize(
    messages: Sequence[Message], *, allow_lost: bool = False
) -> dict[str, float]:
    """Per-message statistics of a finished run.

    Returns a dict with the makespan, mean/median/max latency, mean
    establishment delay (dynamic runs) and total retries.  Raises if a
    message was never delivered -- a run that silently dropped traffic
    must not summarise cleanly.  ``allow_lost`` admits messages a fault
    run explicitly declared lost (counted under ``"lost"``, excluded
    from the latency statistics); silent drops still raise.
    """
    if not messages:
        return {"makespan": 0.0, "messages": 0.0}
    latencies = []
    establish = []
    retries = 0
    lost = 0
    makespan = 0
    for m in messages:
        if m.delivered is None:
            if allow_lost and m.lost is not None:
                lost += 1
                retries += m.retries
                continue
            raise ValueError(f"message {m.mid} was never delivered")
        makespan = max(makespan, m.delivered)
        if m.latency is not None:
            latencies.append(m.latency)
        if m.established is not None and m.first_attempt is not None:
            establish.append(m.established - m.first_attempt)
        retries += m.retries
    out: dict[str, float] = {
        "makespan": float(makespan),
        "messages": float(len(messages)),
        "retries": float(retries),
    }
    if allow_lost:
        out["lost"] = float(lost)
    if latencies:
        out["latency_mean"] = statistics.fmean(latencies)
        out["latency_median"] = float(statistics.median(latencies))
        out["latency_max"] = float(max(latencies))
    if establish:
        out["establish_mean"] = statistics.fmean(establish)
    return out


def recovery_summary(result) -> dict[str, float]:
    """Fault-recovery statistics of a run under a fault schedule.

    Accepts a :class:`~repro.simulator.dynamic.DynamicResult` or a
    :class:`~repro.simulator.compiled.CompiledFaultResult` -- the
    common recovery vocabulary (delivered/lost accounting and
    time-to-recover over the run's ``fault_log``) plus each control
    model's own costs: retries attributable to faults for the
    reservation protocol, reschedules and degree inflation for the
    compiled model.
    """
    messages = result.messages
    log = getattr(result, "fault_log", None) or []
    out: dict[str, float] = {
        "makespan": float(result.completion_time),
        "messages": float(len(messages)),
        "delivered": float(
            sum(1 for m in messages if m.delivered is not None)
        ),
        "lost": float(sum(1 for m in messages if m.lost is not None)),
        "fault_events": float(len(log)),
    }
    recoveries = [float(e["time_to_recover"]) for e in log]
    if recoveries:
        out["time_to_recover_mean"] = statistics.fmean(recoveries)
        out["time_to_recover_max"] = float(max(recoveries))
    if hasattr(result, "fault_retries"):  # dynamic control
        out["fault_retries"] = float(result.fault_retries)
    if hasattr(result, "degree_inflation"):  # compiled control
        out["degree_inflation"] = float(result.degree_inflation)
        out["reschedules"] = float(result.reschedules)
        out["recompile_slots"] = float(result.recompile_slots)
    if getattr(result, "recovery", None) == "protected":
        out["failovers"] = float(result.failovers)
        out["failover_slots"] = float(result.failover_slots)
        out["uncovered"] = float(result.uncovered)
    return out
