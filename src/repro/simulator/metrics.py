"""Result summarisation helpers shared by benches, CLI and examples."""

from __future__ import annotations

import statistics
from collections.abc import Sequence

from repro.simulator.messages import Message


def summarize(messages: Sequence[Message]) -> dict[str, float]:
    """Per-message statistics of a finished run.

    Returns a dict with the makespan, mean/median/max latency, mean
    establishment delay (dynamic runs) and total retries.  Raises if a
    message was never delivered -- a run that silently dropped traffic
    must not summarise cleanly.
    """
    if not messages:
        return {"makespan": 0.0, "messages": 0.0}
    latencies = []
    establish = []
    retries = 0
    makespan = 0
    for m in messages:
        if m.delivered is None:
            raise ValueError(f"message {m.mid} was never delivered")
        makespan = max(makespan, m.delivered)
        if m.latency is not None:
            latencies.append(m.latency)
        if m.established is not None and m.first_attempt is not None:
            establish.append(m.established - m.first_attempt)
        retries += m.retries
    out: dict[str, float] = {
        "makespan": float(makespan),
        "messages": float(len(messages)),
        "retries": float(retries),
    }
    if latencies:
        out["latency_mean"] = statistics.fmean(latencies)
        out["latency_median"] = float(statistics.median(latencies))
        out["latency_max"] = float(max(latencies))
    if establish:
        out["establish_mean"] = statistics.fmean(establish)
    return out
