"""Wavelength-division multiplexing (WDM) models -- extension.

The paper develops compiled communication for *time*-division
multiplexing but frames it against the WDM literature (refs [1, 4, 12,
17]): wavelengths are the other way to put K virtual channels on a
fiber.  Scheduling is **identical** -- a configuration set of size K is
realised by K wavelengths instead of K time slots, and the wavelength-
continuity constraint of all-optical switching is exactly the slot-
continuity constraint our reservation protocol already enforces.  What
changes is the *transfer model*:

* under TDM, a connection owns 1 slot in K and moves ``slot_payload``
  elements per frame: transfer time ``K * chunks``;
* under WDM, a connection owns a wavelength *continuously* and moves
  ``slot_payload`` elements every slot: transfer time ``chunks``,
  independent of K -- provided the node can drive that many wavelengths
  at once.

The hardware caveat is the interesting part (Melhem's "why does TDM pay
off" argument [12]): WDM needs either one transmitter per wavelength
per node (``transmitters="per-wavelength"``, expensive) or a single
tunable transmitter (``transmitters="single"``), in which case a node
must *serialise its own sends* and dense patterns lose most of the WDM
advantage.  Both variants are modelled, plus a dynamic WDM mode reusing
the TDM reservation protocol with the continuous transfer model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import ConfigurationSet
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler
from repro.core.requests import RequestSet
from repro.simulator.compiled import transfer_chunks
from repro.simulator.dynamic.control import DynamicResult, _DynamicSimulator
from repro.simulator.messages import Message, messages_from_requests
from repro.simulator.params import SimParams
from repro.topology.base import Topology

TRANSMITTER_MODELS = ("per-wavelength", "single")


@dataclass
class WDMCompiledResult:
    """Outcome of a compiled-communication run on a WDM network."""

    completion_time: int
    num_wavelengths: int
    schedule: ConfigurationSet
    messages: list[Message]
    transmitters: str


def wdm_compiled_completion_time(
    topology: Topology,
    requests: RequestSet,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "combined",
    transmitters: str = "per-wavelength",
) -> WDMCompiledResult:
    """Compiled communication over wavelengths instead of time slots.

    The scheduler's configurations become wavelength assignments.  With
    per-wavelength transmitters every message streams concurrently at
    full bandwidth; with a single tunable transmitter each node sends
    its messages back to back (ordered by wavelength index, matching
    the deterministic TDM slot order).
    """
    if transmitters not in TRANSMITTER_MODELS:
        raise ValueError(
            f"transmitters must be one of {TRANSMITTER_MODELS}, got {transmitters!r}"
        )
    connections = route_requests(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    wavelength = schedule.slot_map()
    messages = messages_from_requests(requests)
    completion = params.compiled_startup
    if transmitters == "per-wavelength":
        for m in messages:
            m.first_attempt = 0
            m.established = params.compiled_startup
            m.slot = wavelength[m.mid]
            m.delivered = params.compiled_startup + transfer_chunks(
                m.size, params.slot_payload
            )
            completion = max(completion, m.delivered)
    else:
        # Single tunable transmitter: a node's sends serialise, in
        # wavelength order.  (Receivers are assumed wavelength-parallel,
        # as in broadcast-and-select node designs.)
        by_src: dict[int, list[Message]] = {}
        for m in messages:
            m.slot = wavelength[m.mid]
            by_src.setdefault(m.src, []).append(m)
        for queue in by_src.values():
            queue.sort(key=lambda m: m.slot)
            t = params.compiled_startup
            for m in queue:
                m.first_attempt = 0
                m.established = t
                t += transfer_chunks(m.size, params.slot_payload)
                m.delivered = t
            completion = max(completion, t)
    return WDMCompiledResult(
        completion_time=completion,
        num_wavelengths=schedule.degree,
        schedule=schedule,
        messages=messages,
        transmitters=transmitters,
    )


class _WDMDynamicSimulator(_DynamicSimulator):
    """Dynamic control on WDM: continuous transfer once established."""

    def _established(self, t: int, rid: int) -> None:  # noqa: D401
        res = self.reservations[rid]
        m = res.message
        m.established = t
        m.slot = res.chosen
        self.queues[m.src].popleft()
        self.outstanding.discard(m.src)
        self._post(t, "node", (m.src,))
        finish = t + transfer_chunks(m.size, self.params.slot_payload)
        self._post(finish, "data_done", (rid,))


def simulate_dynamic_wdm(
    topology: Topology,
    requests: RequestSet,
    num_wavelengths: int,
    params: SimParams = SimParams(),
) -> DynamicResult:
    """The section-4.1 reservation protocol over a WDM data network.

    Identical control plane (RES collects the free-wavelength set along
    the path, ACK picks one -- wavelength continuity); the established
    lightpath then runs at full bandwidth regardless of the wavelength
    count.
    """
    sim = _WDMDynamicSimulator(topology, requests, num_wavelengths, params)
    sim.run()
    return DynamicResult(
        completion_time=sim.completion,
        degree=num_wavelengths,
        messages=sim.messages,
        total_retries=sim.total_retries,
        params=params,
    )
