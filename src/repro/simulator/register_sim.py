"""Register-driven network simulation: run the *artifact*, not the plan.

The compiled simulator trusts the schedule object; this module instead
drives the network from the **switch register images** the code
generator emitted -- the same words the hardware's circular shift
registers would hold -- and delivers data only over the circuits those
registers actually establish.  Agreement with the schedule-driven model
(asserted in the tests) closes the last gap between "the compiler
computed a schedule" and "the emitted configuration bits realise it".

It also naturally simulates *weighted* frames
(:func:`repro.core.weighted.weighted_schedule` +
:func:`weighted_registers`), where a configuration owns several slots
per frame.
"""

from __future__ import annotations

from repro.compiler.codegen import RegisterSchedule, decode_registers, generate_registers
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.requests import RequestSet
from repro.core.weighted import WeightedSchedule
from repro.simulator.compiled import CompiledResult
from repro.simulator.messages import messages_from_requests
from repro.simulator.params import SimParams
from repro.topology.base import Topology


def weighted_registers(
    topology: Topology, weighted: WeightedSchedule
) -> RegisterSchedule:
    """Register images for a weighted frame (one word per frame slot).

    Expands the frame into a slot-indexed configuration sequence --
    configurations repeat according to their multiplicities -- and
    generates registers for the whole frame.
    """
    expanded = ConfigurationSet(
        [
            Configuration(weighted.base[idx].connections)
            for idx in weighted.frame
        ],
        scheduler=weighted.base.scheduler + "+weighted",
    )
    return generate_registers(topology, expanded)


def simulate_registers(
    topology: Topology,
    regs: RegisterSchedule,
    requests: RequestSet,
    params: SimParams = SimParams(),
) -> CompiledResult:
    """Deliver ``requests`` over the circuits the registers establish.

    Traces each slot's register image into its circuit set once, then
    steps slot time: whenever the frame reaches a slot whose circuits
    include a message's (src, dst) pair, that message moves
    ``slot_payload`` elements.  Messages whose pair never appears in
    any slot can never be delivered -- that raises, because it means
    the register image does not serve the request set.
    """
    circuits_per_slot = decode_registers(regs)
    period = max(len(circuits_per_slot), 1)
    messages = messages_from_requests(requests)

    # Pair -> FIFO of message ids (duplicate pairs transfer in turn).
    pending: dict[tuple[int, int], list[int]] = {}
    for m in messages:
        m.first_attempt = 0
        m.established = params.compiled_startup
        pending.setdefault((m.src, m.dst), []).append(m.mid)
    served = set().union(*circuits_per_slot) if circuits_per_slot else set()
    unserved = [pair for pair in pending if pair not in served]
    if unserved:
        raise ValueError(
            f"register image establishes no circuit for pairs {unserved[:5]}"
        )

    remaining = {m.mid: m.size for m in messages}
    undelivered = len(messages)
    t = params.compiled_startup
    completion = t
    while undelivered:
        if t - params.compiled_startup > params.max_slots:
            raise RuntimeError("register simulation exceeded max_slots")
        slot = (t - params.compiled_startup) % period
        for pair in circuits_per_slot[slot]:
            queue = pending.get(pair)
            if not queue:
                continue
            mid = queue[0]
            remaining[mid] -= params.slot_payload
            if remaining[mid] <= 0:
                queue.pop(0)
                messages[mid].delivered = t + 1
                messages[mid].slot = slot
                completion = max(completion, t + 1)
                undelivered -= 1
        t += 1
    return CompiledResult(
        completion_time=completion,
        degree=period,
        schedule=ConfigurationSet([], scheduler="registers"),
        messages=messages,
        params=params,
    )
