"""Messages: the unit of traffic the simulator moves.

A static communication pattern turns into one :class:`Message` per
request, all ready at time zero (the paper simulates each pattern as a
phase in which every PE has its sends posted).  Messages keep their
request's size in elements; transfer time additionally depends on the
multiplexing degree and slot payload (see
:func:`repro.simulator.compiled.transfer_slots`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.requests import RequestSet


@dataclass
class Message:
    """One message to deliver.

    Mutable simulation state (timestamps, retry counts) lives here so
    the metrics module can report per-message statistics afterwards.
    """

    mid: int
    src: int
    dst: int
    size: int

    #: time the source first attempted a reservation (dynamic only).
    first_attempt: int | None = None
    #: time the path was established (ACK received; dynamic only).
    established: int | None = None
    #: time the last element arrived.
    delivered: int | None = None
    #: number of failed reservation attempts (dynamic only).
    retries: int = 0
    #: slot the message was declared lost (network partitioned past the
    #: fault retry limit), or None.  Lost and delivered are exclusive.
    lost: int | None = None
    #: slot index the connection was assigned.
    slot: int | None = None
    _path: tuple[int, ...] = field(default=(), repr=False)

    @property
    def latency(self) -> int | None:
        """Queueing + establishment + transfer time, if delivered."""
        if self.delivered is None or self.first_attempt is None:
            return None
        return self.delivered - self.first_attempt


def messages_from_requests(requests: RequestSet) -> list[Message]:
    """One message per request, in pattern order."""
    return [
        Message(mid=i, src=r.src, dst=r.dst, size=r.size)
        for i, r in enumerate(requests)
    ]
