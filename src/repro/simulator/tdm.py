"""TDM link state: slot occupancy and reservation locks.

Under TDM with multiplexing degree K every directed link carries K
virtual channels, one per time slot of the frame.  An all-optical
circuit must use the **same slot index on every link of its path**
(slot continuity: an optical switch cannot buffer a signal into a later
slot), which is why the reservation protocol intersects availability
sets along the path.

:class:`LinkSlotState` tracks, per (link, slot):

* ``owner`` -- the established circuit using the channel, if any;
* ``lock`` -- the in-flight reservation holding the channel while its
  RES packet is still travelling (released by the ACK/NACK pass).

:class:`TDMNetwork` aggregates one state per link of a topology.
"""

from __future__ import annotations

from repro.topology.base import Topology

#: Sentinel for "channel free".
FREE = -1


class LinkSlotState:
    """Occupancy of one link's K virtual channels."""

    __slots__ = ("owner", "lock")

    def __init__(self, degree: int) -> None:
        self.owner = [FREE] * degree
        self.lock = [FREE] * degree

    def free_slots(self) -> list[int]:
        """Slots neither owned nor locked."""
        return [
            k
            for k in range(len(self.owner))
            if self.owner[k] == FREE and self.lock[k] == FREE
        ]

    def lock_slots(self, slots: list[int], rid: int) -> None:
        """Lock ``slots`` for reservation ``rid`` (must be free)."""
        for k in slots:
            if self.owner[k] != FREE or self.lock[k] != FREE:
                raise RuntimeError(f"slot {k} not free to lock")
            self.lock[k] = rid

    def release_locks(self, rid: int, keep: int | None = None) -> None:
        """Drop ``rid``'s locks; if ``keep`` is given, that slot becomes owned."""
        for k, holder in enumerate(self.lock):
            if holder == rid:
                self.lock[k] = FREE
                if k == keep:
                    self.owner[k] = rid

    def release_owner(self, rid: int) -> None:
        """Tear down ``rid``'s established channel(s)."""
        for k, holder in enumerate(self.owner):
            if holder == rid:
                self.owner[k] = FREE


class TDMNetwork:
    """Per-link slot state for a whole topology at degree K."""

    def __init__(self, topology: Topology, degree: int) -> None:
        if degree < 1:
            raise ValueError("multiplexing degree must be >= 1")
        self.topology = topology
        self.degree = degree
        self._links: dict[int, LinkSlotState] = {}

    def link(self, link_id: int) -> LinkSlotState:
        """State of ``link_id`` (lazily created -- most links of a
        sparse pattern are never touched)."""
        state = self._links.get(link_id)
        if state is None:
            state = self._links[link_id] = LinkSlotState(self.degree)
        return state

    def occupied_channels(self) -> int:
        """Total owned (link, slot) channels -- a utilisation probe."""
        return sum(
            sum(1 for o in st.owner if o != FREE) for st in self._links.values()
        )
