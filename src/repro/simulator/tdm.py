"""TDM link state: slot occupancy and reservation locks.

Under TDM with multiplexing degree K every directed link carries K
virtual channels, one per time slot of the frame.  An all-optical
circuit must use the **same slot index on every link of its path**
(slot continuity: an optical switch cannot buffer a signal into a later
slot), which is why the reservation protocol intersects availability
sets along the path.

:class:`LinkSlotState` tracks, per (link, slot):

* ``owner`` -- the established circuit using the channel, if any;
* ``lock`` -- the in-flight reservation holding the channel while its
  RES packet is still travelling (released by the ACK/NACK pass).

:class:`TDMNetwork` aggregates one state per link of a topology.
"""

from __future__ import annotations

from repro.topology.base import Topology

#: Sentinel for "channel free".
FREE = -1


class LinkSlotState:
    """Occupancy of one link's K virtual channels."""

    __slots__ = ("owner", "lock")

    def __init__(self, degree: int) -> None:
        self.owner = [FREE] * degree
        self.lock = [FREE] * degree

    def free_slots(self) -> list[int]:
        """Slots neither owned nor locked."""
        return [
            k
            for k in range(len(self.owner))
            if self.owner[k] == FREE and self.lock[k] == FREE
        ]

    def lock_slots(self, slots: list[int], rid: int) -> None:
        """Lock ``slots`` for reservation ``rid`` (must be free)."""
        for k in slots:
            if self.owner[k] != FREE or self.lock[k] != FREE:
                raise RuntimeError(f"slot {k} not free to lock")
            self.lock[k] = rid

    def release_locks(self, rid: int, keep: int | None = None) -> int:
        """Drop ``rid``'s locks; if ``keep`` is given, that slot becomes owned.

        Returns the number of channels that became free (the kept slot
        turns into an owned circuit, so it does not count) -- the
        holding protocol wakes at most that many parked reservations.
        """
        freed = 0
        for k, holder in enumerate(self.lock):
            if holder == rid:
                self.lock[k] = FREE
                if k == keep:
                    self.owner[k] = rid
                else:
                    freed += 1
        return freed

    def release_owner(self, rid: int) -> int:
        """Tear down ``rid``'s established channel(s); returns channels freed."""
        freed = 0
        for k, holder in enumerate(self.owner):
            if holder == rid:
                self.owner[k] = FREE
                freed += 1
        return freed

    def clear_reservation(self, rid: int) -> int:
        """Forcibly drop every trace of ``rid`` -- locks *and* owners.

        Fault recovery uses this to tear a dead link's circuits and
        in-flight reservations out of the slot state regardless of which
        protocol phase (RES walk, ACK walk, streaming, REL walk) the
        reservation was in.  Returns the number of channels freed.
        """
        return self.release_locks(rid) + self.release_owner(rid)


class TDMNetwork:
    """Per-link slot state for a whole topology at degree K."""

    def __init__(self, topology: Topology, degree: int) -> None:
        if degree < 1:
            raise ValueError("multiplexing degree must be >= 1")
        self.topology = topology
        self.degree = degree
        self._links: dict[int, LinkSlotState] = {}

    def link(self, link_id: int) -> LinkSlotState:
        """State of ``link_id`` (lazily created -- most links of a
        sparse pattern are never touched)."""
        state = self._links.get(link_id)
        if state is None:
            state = self._links[link_id] = LinkSlotState(self.degree)
        return state

    def occupied_channels(self) -> int:
        """Total owned (link, slot) channels -- a utilisation probe."""
        return sum(
            sum(1 for o in st.owner if o != FREE) for st in self._links.values()
        )

    def orphans(self) -> list[tuple[int, int, str, int]]:
        """Every non-free (link, slot) channel as ``(link, slot, kind, holder)``.

        A drained network must return ``[]``: any surviving lock or
        owner is a leaked reservation (the fault-recovery property suite
        asserts this after arbitrary fault schedules).
        """
        out: list[tuple[int, int, str, int]] = []
        for link_id, st in self._links.items():
            for k, holder in enumerate(st.owner):
                if holder != FREE:
                    out.append((link_id, k, "owner", holder))
            for k, holder in enumerate(st.lock):
                if holder != FREE:
                    out.append((link_id, k, "lock", holder))
        return out
