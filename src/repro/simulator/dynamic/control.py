"""Event-driven simulation of the distributed reservation protocol.

Implementation of the protocol described in the package docstring as a
discrete-event simulation in slot time.  Control packets advance one
hop (one link of the route) per ``control_hop_latency`` slots; data
moves on the optical network per the TDM transfer model shared with the
compiled simulator.  All races (two RES packets contending for the same
virtual channel) are resolved by event order, which is deterministic:
ties in time break by event sequence number, and the only randomness --
retry backoff -- comes from a generator seeded by ``SimParams.seed``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.requests import RequestSet
from repro.simulator.compiled import transfer_chunks, transfer_finish
from repro.simulator.messages import Message, messages_from_requests
from repro.simulator.dynamic.trace import ProtocolTrace
from repro.simulator.params import SimParams
from repro.simulator.tdm import TDMNetwork
from repro.topology.base import Topology


@dataclass
class _Reservation:
    """In-flight reservation state for one message attempt."""

    rid: int
    message: Message
    path: tuple[int, ...]
    carried: list[int] = field(default_factory=list)
    chosen: int = -1
    #: hop index where the RES is parked (holding protocol), or -1.
    parked_hop: int = -1
    #: invalidates stale park-timeout events after a wake-up.
    park_generation: int = 0


@dataclass
class DynamicResult:
    """Outcome of a dynamically controlled run of one pattern."""

    completion_time: int
    degree: int
    messages: list[Message]
    total_retries: int
    params: SimParams
    trace: "ProtocolTrace | None" = None

    @property
    def makespan(self) -> int:
        """Alias for ``completion_time`` (slots)."""
        return self.completion_time


class _DynamicSimulator:
    def __init__(
        self,
        topology: Topology,
        requests: RequestSet,
        degree: int,
        params: SimParams,
        arrivals: list[int] | None = None,
        trace: "ProtocolTrace | None" = None,
        protocol: str = "dropping",
    ) -> None:
        if protocol not in ("dropping", "holding"):
            raise ValueError(
                f"protocol must be 'dropping' or 'holding', got {protocol!r}"
            )
        self.topology = topology
        self.trace = trace
        self.protocol = protocol
        #: holding protocol: link id -> parked reservation ids (FIFO).
        self.parked: dict[int, deque[int]] = {}
        self.params = params
        self.degree = degree
        self.net = TDMNetwork(topology, degree)
        self.rng = np.random.default_rng(params.seed)
        self.messages = messages_from_requests(requests)
        if arrivals is not None and len(arrivals) != len(self.messages):
            raise ValueError("one arrival time per request required")
        self.arrivals = arrivals or [0] * len(self.messages)
        self.queues: dict[int, deque[Message]] = {}
        for m in self.messages:
            m._path = topology.route(m.src, m.dst)
            self.queues.setdefault(m.src, deque())
        self.outstanding: set[int] = set()  # nodes with a RES in flight
        self.events: list[tuple[int, int, str, tuple]] = []
        self._seq = itertools.count()
        self._rid = itertools.count()
        self.reservations: dict[int, _Reservation] = {}
        self.delivered_count = 0
        self.completion = 0
        self.total_retries = 0

    # -- event machinery -------------------------------------------------
    def _post(self, time: int, kind: str, payload: tuple) -> None:
        heapq.heappush(self.events, (time, next(self._seq), kind, payload))

    def run(self) -> None:
        for m in self.messages:
            self._post(self.arrivals[m.mid], "arrive", (m.mid,))
        handlers = {
            "arrive": self._on_arrive,
            "node": self._on_node,
            "res": self._on_res,
            "nack": self._on_nack,
            "ack": self._on_ack,
            "data_done": self._on_data_done,
            "rel": self._on_rel,
            "park_timeout": self._on_park_timeout,
        }
        # Run until the event queue drains: the trailing REL chains
        # after the last delivery still tear their circuits down, so
        # the network ends clean (asserted by the property suite).
        while self.events:
            time, _, kind, payload = heapq.heappop(self.events)
            if time > self.params.max_slots:
                raise RuntimeError(
                    f"dynamic simulation exceeded max_slots="
                    f"{self.params.max_slots} with "
                    f"{len(self.messages) - self.delivered_count} messages pending"
                )
            handlers[kind](time, *payload)
        if self.delivered_count < len(self.messages):
            raise RuntimeError("event queue drained with undelivered messages")

    # -- handlers ---------------------------------------------------------
    def _on_arrive(self, t: int, mid: int) -> None:
        """A message becomes ready at its source's control queue."""
        m = self.messages[mid]
        m.first_attempt = t
        if self.trace:
            self.trace.emit(t, "arrive", mid, f"{m.src}->{m.dst} ({m.size} elems)")
        self.queues[m.src].append(m)
        self._on_node(t, m.src)

    def _on_node(self, t: int, node: int) -> None:
        """Try to start a reservation for the node's head-of-line message."""
        if node in self.outstanding:
            return
        queue = self.queues.get(node)
        if not queue:
            return
        m = queue[0]
        self.outstanding.add(node)
        rid = next(self._rid)
        res = _Reservation(rid=rid, message=m, path=m._path)
        res.carried = list(range(self.degree))
        self.reservations[rid] = res
        if self.trace:
            self.trace.emit(t, "res-start", m.mid, f"rid {rid}, {len(m._path)} links")
        # RES reaches (and processes) link i after i+1 hop latencies.
        self._post(t + self.params.control_hop_latency, "res", (rid, 0))

    def _on_res(self, t: int, rid: int, hop: int) -> None:
        res = self.reservations[rid]
        link = self.net.link(res.path[hop])
        avail = [
            k
            for k in res.carried
            if link.owner[k] == -1 and link.lock[k] == -1
        ]
        if not avail:
            if self.protocol == "holding":
                # Park at this switch: wait for a channel to free, with
                # a timeout to break hold-and-wait deadlock cycles.
                res.parked_hop = hop
                res.park_generation += 1
                self.parked.setdefault(res.path[hop], deque()).append(rid)
                if self.trace:
                    self.trace.emit(
                        t, "res-park", res.message.mid,
                        f"rid {rid} at link {res.path[hop]}",
                    )
                self._post(
                    t + self.params.hold_timeout,
                    "park_timeout",
                    (rid, res.park_generation),
                )
                return
            # Dropping protocol: NACK walks back releasing locks.
            if hop == 0:
                self._fail(t, rid)
            else:
                self._post(
                    t + self.params.control_hop_latency, "nack", (rid, hop - 1)
                )
            return
        link.lock_slots(avail, rid)
        res.carried = avail
        if self.trace:
            self.trace.emit(
                t, "res-hop", res.message.mid,
                f"rid {rid} link {res.path[hop]}: {len(avail)} slots carried",
            )
        if hop + 1 < len(res.path):
            self._post(t + self.params.control_hop_latency, "res", (rid, hop + 1))
        else:
            # Destination: pick the lowest-numbered surviving channel and
            # send the ACK back along the path.
            res.chosen = res.carried[0]
            self._post(
                t + self.params.control_hop_latency,
                "ack",
                (rid, len(res.path) - 1),
            )

    def _on_nack(self, t: int, rid: int, hop: int) -> None:
        res = self.reservations[rid]
        self.net.link(res.path[hop]).release_locks(res.rid)
        self._wake_parked(t, res.path[hop])
        if hop == 0:
            self._fail(t + self.params.control_hop_latency, rid)
        else:
            self._post(t + self.params.control_hop_latency, "nack", (rid, hop - 1))

    def _wake_parked(self, t: int, link_id: int) -> None:
        """A channel on ``link_id`` freed: re-run parked reservations."""
        queue = self.parked.get(link_id)
        if not queue:
            return
        while queue:
            rid = queue.popleft()
            res = self.reservations.get(rid)
            if res is None or res.parked_hop < 0:
                continue
            hop = res.parked_hop
            res.parked_hop = -1
            res.park_generation += 1  # cancel the pending timeout
            self._post(t, "res", (rid, hop))

    def _on_park_timeout(self, t: int, rid: int, generation: int) -> None:
        res = self.reservations.get(rid)
        if res is None or res.parked_hop < 0 or res.park_generation != generation:
            return  # already woken or resolved
        hop = res.parked_hop
        res.parked_hop = -1
        link_id = res.path[hop]
        queue = self.parked.get(link_id)
        if queue and rid in queue:
            queue.remove(rid)
        if hop == 0:
            self._fail(t, rid)
        else:
            self._post(t + self.params.control_hop_latency, "nack", (rid, hop - 1))

    def _fail(self, t: int, rid: int) -> None:
        """Reservation failed: requeue with randomised backoff."""
        res = self.reservations.pop(rid)
        m = res.message
        m.retries += 1
        self.total_retries += 1
        if self.trace:
            self.trace.emit(t, "res-fail", m.mid, f"rid {rid}, retry {m.retries}")
        self.outstanding.discard(m.src)
        backoff = 1 + int(self.rng.integers(0, self.params.retry_backoff))
        self._post(t + backoff, "node", (m.src,))

    def _on_ack(self, t: int, rid: int, hop: int) -> None:
        res = self.reservations[rid]
        self.net.link(res.path[hop]).release_locks(rid, keep=res.chosen)
        self._wake_parked(t, res.path[hop])
        if hop > 0:
            self._post(t + self.params.control_hop_latency, "ack", (rid, hop - 1))
        else:
            # Hop 0 is the injection link at the source's own switch, so
            # the source learns of the established circuit immediately:
            # establishment costs exactly 2 * path length * hop latency.
            self._established(t, rid)

    def _established(self, t: int, rid: int) -> None:
        res = self.reservations[rid]
        m = res.message
        m.established = t
        m.slot = res.chosen
        if self.trace:
            self.trace.emit(t, "established", m.mid, f"slot {res.chosen}")
        self.queues[m.src].popleft()
        self.outstanding.discard(m.src)
        # The node may reserve for its next message while data streams.
        self._post(t, "node", (m.src,))
        chunks = transfer_chunks(m.size, self.params.slot_payload)
        finish = transfer_finish(t, res.chosen, self.degree, chunks)
        self._post(finish, "data_done", (rid,))

    def _on_data_done(self, t: int, rid: int) -> None:
        res = self.reservations[rid]
        m = res.message
        m.delivered = t
        self.delivered_count += 1
        self.completion = max(self.completion, t)
        if self.trace:
            self.trace.emit(t, "delivered", m.mid)
        # REL walks the path tearing the circuit down.
        self._post(t + self.params.control_hop_latency, "rel", (rid, 0))

    def _on_rel(self, t: int, rid: int, hop: int) -> None:
        res = self.reservations[rid]
        self.net.link(res.path[hop]).release_owner(rid)
        self._wake_parked(t, res.path[hop])
        if hop + 1 < len(res.path):
            self._post(t + self.params.control_hop_latency, "rel", (rid, hop + 1))
        else:
            if self.trace:
                self.trace.emit(t, "released", res.message.mid)
            del self.reservations[rid]


def simulate_dynamic(
    topology: Topology,
    requests: RequestSet,
    degree: int,
    params: SimParams = SimParams(),
    *,
    arrivals: list[int] | None = None,
    trace: "ProtocolTrace | None" = None,
    protocol: str = "dropping",
) -> DynamicResult:
    """Simulate ``requests`` under dynamic control at a fixed degree.

    ``degree`` is the network's fixed multiplexing degree (the paper
    evaluates 1, 2, 5 and 10; distributed control cannot adapt it per
    pattern, which is one of compiled communication's advantages).
    ``arrivals`` optionally staggers message readiness (one slot time
    per request; default: everything ready at 0, the paper's static-
    pattern setting).

    ``protocol`` selects the blocked-reservation policy: ``"dropping"``
    (the paper's section 4.1: fail, NACK back, retry after backoff) or
    ``"holding"`` (park the RES at the blocked switch until a channel
    frees, with ``SimParams.hold_timeout`` breaking hold-and-wait
    deadlocks -- the design space of the paper's refs [15, 17]).
    """
    sim = _DynamicSimulator(
        topology, requests, degree, params, arrivals, trace, protocol
    )
    sim.run()
    return DynamicResult(
        completion_time=sim.completion,
        degree=degree,
        messages=sim.messages,
        total_retries=sim.total_retries,
        params=params,
        trace=trace,
    )
