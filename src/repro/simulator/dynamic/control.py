"""Event-driven simulation of the distributed reservation protocol.

Implementation of the protocol described in the package docstring as a
discrete-event simulation in slot time.  Control packets advance one
hop (one link of the route) per ``control_hop_latency`` slots; data
moves on the optical network per the TDM transfer model shared with the
compiled simulator.  All races (two RES packets contending for the same
virtual channel) are resolved by event order, which is deterministic:
ties in time break by event sequence number, and the only randomness --
retry backoff -- comes from a generator seeded by ``SimParams.seed``.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.requests import RequestSet
from repro.simulator.compiled import transfer_chunks, transfer_finish
from repro.simulator.faults import FaultSchedule
from repro.simulator.messages import Message, messages_from_requests
from repro.simulator.dynamic.trace import ProtocolTrace
from repro.simulator.params import SimParams
from repro.simulator.tdm import TDMNetwork
from repro.topology.base import RoutingError, Topology


@dataclass
class _Reservation:
    """In-flight reservation state for one message attempt."""

    rid: int
    message: Message
    path: tuple[int, ...]
    carried: list[int] = field(default_factory=list)
    chosen: int = -1
    #: hop index where the RES is parked (holding protocol), or -1.
    parked_hop: int = -1
    #: invalidates stale park-timeout events after a wake-up.
    park_generation: int = 0
    #: absolute slot the holding protocol gives up waiting; preserved
    #: across wake/re-park churn so the deadlock-breaking deadline
    #: cannot be postponed indefinitely.  Reset on hop progress.
    park_deadline: int = -1


@dataclass
class DynamicResult:
    """Outcome of a dynamically controlled run of one pattern."""

    completion_time: int
    degree: int
    messages: list[Message]
    #: failed reservations due to channel contention (NACKs/timeouts).
    total_retries: int
    params: SimParams
    trace: "ProtocolTrace | None" = None
    #: extra attempts attributable to runtime fiber cuts: circuits and
    #: reservations torn down plus re-route retries while partitioned.
    fault_retries: int = 0
    #: messages abandoned because the network stayed partitioned past
    #: ``SimParams.fault_retry_limit`` consecutive routing failures.
    lost: int = 0
    #: one entry per ``fail`` event: slot, link, circuits torn down,
    #: requeued message ids and time-to-recover (slots until the last
    #: affected message was delivered or declared lost).
    fault_log: list[dict] = field(default_factory=list)

    @property
    def makespan(self) -> int:
        """Alias for ``completion_time`` (slots)."""
        return self.completion_time

    @property
    def delivered(self) -> int:
        """Messages that completed (``len(messages) - lost``)."""
        return sum(1 for m in self.messages if m.delivered is not None)


class _DynamicSimulator:
    def __init__(
        self,
        topology: Topology,
        requests: RequestSet,
        degree: int,
        params: SimParams,
        arrivals: list[int] | None = None,
        trace: "ProtocolTrace | None" = None,
        protocol: str = "dropping",
        faults: FaultSchedule | None = None,
    ) -> None:
        if protocol not in ("dropping", "holding"):
            raise ValueError(
                f"protocol must be 'dropping' or 'holding', got {protocol!r}"
            )
        self.topology = topology
        self.trace = trace
        self.protocol = protocol
        #: holding protocol: link id -> parked reservation ids (FIFO).
        self.parked: dict[int, deque[int]] = {}
        self.params = params
        self.degree = degree
        self.net = TDMNetwork(topology, degree)
        self.rng = np.random.default_rng(params.seed)
        self.messages = messages_from_requests(requests)
        if arrivals is not None and len(arrivals) != len(self.messages):
            raise ValueError("one arrival time per request required")
        self.arrivals = arrivals or [0] * len(self.messages)
        self.faults = faults if faults else None
        #: mutable routing view when runtime faults are scheduled; the
        #: caller's topology is never modified (a FaultyTopology input
        #: is re-wrapped so its failure set stays untouched).
        self.route_topo = None
        if self.faults is not None:
            from repro.topology.faults import FaultyTopology

            self.faults.validate_for(topology)
            if isinstance(topology, FaultyTopology):
                self.route_topo = FaultyTopology(
                    topology.base, topology.failed_links
                )
            else:
                self.route_topo = FaultyTopology(topology)
        self.queues: dict[int, deque[Message]] = {}
        for m in self.messages:
            if self.route_topo is None:
                m._path = topology.route(m.src, m.dst)
            self.queues.setdefault(m.src, deque())
        self.outstanding: set[int] = set()  # nodes with a RES in flight
        self.events: list[tuple[int, int, str, tuple]] = []
        self._seq = itertools.count()
        self._rid = itertools.count()
        self.reservations: dict[int, _Reservation] = {}
        #: reservation ids torn down by a fault -- their in-flight
        #: control packets (RES/ACK/NACK/REL/data_done) evaporate.
        self.killed: set[int] = set()
        #: message id -> consecutive routing failures (partitioned).
        self._route_failures: dict[int, int] = {}
        self.delivered_count = 0
        self.lost_count = 0
        self.completion = 0
        self.total_retries = 0
        self.fault_retries = 0
        self.fault_log: list[dict] = []

    # -- event machinery -------------------------------------------------
    def _post(self, time: int, kind: str, payload: tuple) -> None:
        heapq.heappush(self.events, (time, next(self._seq), kind, payload))

    @property
    def pending_count(self) -> int:
        """Messages neither delivered nor declared lost."""
        return len(self.messages) - self.delivered_count - self.lost_count

    def run(self) -> None:
        if self.faults is not None:
            # Posted before the arrivals so a slot-0 failure is in
            # force before any reservation starts (this makes a fault
            # schedule at slot 0 bit-identical to a pre-run
            # FaultyTopology, asserted in the test suite).
            for ev in self.faults:
                self._post(ev.slot, "fault", (ev.action, ev.link))
        for m in self.messages:
            self._post(self.arrivals[m.mid], "arrive", (m.mid,))
        handlers = {
            "arrive": self._on_arrive,
            "node": self._on_node,
            "res": self._on_res,
            "nack": self._on_nack,
            "ack": self._on_ack,
            "data_done": self._on_data_done,
            "rel": self._on_rel,
            "park_timeout": self._on_park_timeout,
            "fault": self._on_fault,
        }
        # Run until the event queue drains: the trailing REL chains
        # after the last delivery still tear their circuits down, so
        # the network ends clean (asserted by the property suite).
        # max_slots only guards *undelivered* traffic: the teardown
        # tail after the final delivery may legitimately cross it.
        while self.events:
            time, _, kind, payload = heapq.heappop(self.events)
            if time > self.params.max_slots and self.pending_count:
                raise RuntimeError(
                    f"dynamic simulation exceeded max_slots="
                    f"{self.params.max_slots} with "
                    f"{self.pending_count} messages pending"
                )
            handlers[kind](time, *payload)
        if self.pending_count:
            raise RuntimeError("event queue drained with undelivered messages")

    # -- handlers ---------------------------------------------------------
    def _on_arrive(self, t: int, mid: int) -> None:
        """A message becomes ready at its source's control queue."""
        m = self.messages[mid]
        m.first_attempt = t
        if self.trace:
            self.trace.emit(t, "arrive", mid, f"{m.src}->{m.dst} ({m.size} elems)")
        self.queues[m.src].append(m)
        self._on_node(t, m.src)

    def _current_path(self, m: Message) -> tuple[int, ...]:
        """The message's route on the network as it is *now*.

        Static runs keep the paths computed at init; under a fault
        schedule every attempt re-routes on the current degraded
        topology (memoised by the route cache, invalidated on each
        fail/restore), which is what lets the protocol steer around a
        mid-run fiber cut.
        """
        if self.route_topo is None:
            return m._path
        return self.route_topo.route(m.src, m.dst)

    def _on_node(self, t: int, node: int) -> None:
        """Try to start a reservation for the node's head-of-line message."""
        if node in self.outstanding:
            return
        queue = self.queues.get(node)
        if not queue:
            return
        m = queue[0]
        try:
            path = self._current_path(m)
        except RoutingError:
            self._no_route(t, m)
            return
        self._route_failures.pop(m.mid, None)
        self.outstanding.add(node)
        rid = next(self._rid)
        res = _Reservation(rid=rid, message=m, path=path)
        res.carried = list(range(self.degree))
        self.reservations[rid] = res
        if self.trace:
            self.trace.emit(t, "res-start", m.mid, f"rid {rid}, {len(path)} links")
        # RES reaches (and processes) link i after i+1 hop latencies.
        self._post(t + self.params.control_hop_latency, "res", (rid, 0))

    def _no_route(self, t: int, m: Message) -> None:
        """Source and destination are disconnected by the current cuts.

        Retry after backoff (a restore may reconnect them) up to
        ``fault_retry_limit`` consecutive failures, then declare the
        message lost so a permanently partitioned network still drains.
        """
        failures = self._route_failures.get(m.mid, 0) + 1
        self._route_failures[m.mid] = failures
        if failures > self.params.fault_retry_limit:
            m.lost = t
            self.lost_count += 1
            if self.trace:
                self.trace.emit(
                    t, "lost", m.mid, f"no route after {failures - 1} retries"
                )
            self.queues[m.src].popleft()
            self._post(t, "node", (m.src,))  # serve the next message
            return
        m.retries += 1
        self.fault_retries += 1
        backoff = 1 + int(self.rng.integers(0, self.params.retry_backoff))
        self._post(t + backoff, "node", (m.src,))

    # -- runtime faults ---------------------------------------------------
    def _on_fault(self, t: int, action: str, link_id: int) -> None:
        if action == "restore":
            self.route_topo.restore_link(link_id)
            # Partitioned messages get a fresh retry budget: the
            # repaired fiber may have reconnected them.
            self._route_failures.clear()
            if self.trace:
                self.trace.emit(t, "link-restore", -1, f"link {link_id}")
            return
        self.route_topo.fail_link(link_id)
        if self.trace:
            self.trace.emit(t, "link-fail", -1, f"link {link_id}")
        affected = [
            rid
            for rid, res in list(self.reservations.items())
            if link_id in res.path
        ]
        requeued = []
        for rid in affected:
            mid = self._kill(t, rid)
            if mid is not None:
                requeued.append(mid)
        self.fault_log.append(
            {"slot": t, "link": link_id, "torn": len(affected),
             "requeued": requeued}
        )

    def _kill(self, t: int, rid: int) -> int | None:
        """Tear reservation ``rid`` out of the network after a cut.

        Scrubs its locks *and* owners from every link of its path
        (whatever protocol phase it was in: RES walk, parked, ACK walk,
        streaming, REL walk), wakes parked reservations on the freed
        channels, and requeues the message for a fresh attempt.
        Returns the requeued message id, or None when the message had
        already fully delivered (only its REL teardown was interrupted).
        """
        res = self.reservations.pop(rid)
        self.killed.add(rid)
        m = res.message
        if res.parked_hop >= 0:
            parked = self.parked.get(res.path[res.parked_hop])
            if parked and rid in parked:
                parked.remove(rid)
        for link_id in res.path:
            freed = self.net.link(link_id).clear_reservation(rid)
            if freed:
                self._wake_parked(t, link_id, freed)
        if m.delivered is not None:
            return None
        if self.trace:
            self.trace.emit(t, "fault-kill", m.mid, f"rid {rid}")
        m.retries += 1
        self.fault_retries += 1
        if m.established is not None:
            # The circuit died mid-stream.  The protocol keeps no
            # delivery ledger, so the whole message is retransmitted;
            # requeue at the head so recovery does not wait behind the
            # source's queued traffic.
            m.established = None
            m.slot = None
            self.queues[m.src].appendleft(m)
        else:
            # Not yet established: the message is still at its queue
            # head with this reservation outstanding.
            self.outstanding.discard(m.src)
        backoff = 1 + int(self.rng.integers(0, self.params.retry_backoff))
        self._post(t + backoff, "node", (m.src,))
        return m.mid

    def _on_res(self, t: int, rid: int, hop: int) -> None:
        if rid in self.killed:
            return
        res = self.reservations[rid]
        link = self.net.link(res.path[hop])
        avail = [
            k
            for k in res.carried
            if link.owner[k] == -1 and link.lock[k] == -1
        ]
        if not avail:
            if self.protocol == "holding":
                # Park at this switch: wait for a channel to free, with
                # a timeout to break hold-and-wait deadlock cycles.
                # The deadline is fixed at the *first* park since the
                # last hop progress: a woken reservation that re-parks
                # keeps it, otherwise churn on the link would postpone
                # the deadlock-breaking timeout indefinitely.
                res.parked_hop = hop
                res.park_generation += 1
                if res.park_deadline < 0:
                    res.park_deadline = t + self.params.hold_timeout
                self.parked.setdefault(res.path[hop], deque()).append(rid)
                if self.trace:
                    self.trace.emit(
                        t, "res-park", res.message.mid,
                        f"rid {rid} at link {res.path[hop]}",
                    )
                self._post(
                    res.park_deadline,
                    "park_timeout",
                    (rid, res.park_generation),
                )
                return
            # Dropping protocol: NACK walks back releasing locks.
            if hop == 0:
                self._fail(t, rid)
            else:
                self._post(
                    t + self.params.control_hop_latency, "nack", (rid, hop - 1)
                )
            return
        link.lock_slots(avail, rid)
        res.carried = avail
        res.park_deadline = -1  # hop progress resets the deadlock clock
        if self.trace:
            self.trace.emit(
                t, "res-hop", res.message.mid,
                f"rid {rid} link {res.path[hop]}: {len(avail)} slots carried",
            )
        if hop + 1 < len(res.path):
            self._post(t + self.params.control_hop_latency, "res", (rid, hop + 1))
        else:
            # Destination: pick the lowest-numbered surviving channel and
            # send the ACK back along the path.
            res.chosen = res.carried[0]
            self._post(
                t + self.params.control_hop_latency,
                "ack",
                (rid, len(res.path) - 1),
            )

    def _on_nack(self, t: int, rid: int, hop: int) -> None:
        if rid in self.killed:
            return
        res = self.reservations[rid]
        freed = self.net.link(res.path[hop]).release_locks(res.rid)
        self._wake_parked(t, res.path[hop], freed)
        if hop == 0:
            self._fail(t + self.params.control_hop_latency, rid)
        else:
            self._post(t + self.params.control_hop_latency, "nack", (rid, hop - 1))

    def _wake_parked(self, t: int, link_id: int, freed: int) -> None:
        """``freed`` channels on ``link_id`` freed: wake that many
        parked reservations, FIFO.  Draining the whole queue would be a
        thundering herd -- every woken RES beyond the freed channels
        re-parks immediately, which both contradicts the documented
        FIFO fairness and (before the deadline fix) kept refreshing the
        hold timeout."""
        queue = self.parked.get(link_id)
        if not queue or freed <= 0:
            return
        woken = 0
        while queue and woken < freed:
            rid = queue.popleft()
            res = self.reservations.get(rid)
            if res is None or res.parked_hop < 0:
                continue
            hop = res.parked_hop
            res.parked_hop = -1
            res.park_generation += 1  # cancel the pending timeout
            self._post(t, "res", (rid, hop))
            woken += 1

    def _on_park_timeout(self, t: int, rid: int, generation: int) -> None:
        res = self.reservations.get(rid)
        if res is None or res.parked_hop < 0 or res.park_generation != generation:
            return  # already woken or resolved
        hop = res.parked_hop
        res.parked_hop = -1
        link_id = res.path[hop]
        queue = self.parked.get(link_id)
        if queue and rid in queue:
            queue.remove(rid)
        if hop == 0:
            self._fail(t, rid)
        else:
            self._post(t + self.params.control_hop_latency, "nack", (rid, hop - 1))

    def _fail(self, t: int, rid: int) -> None:
        """Reservation failed: requeue with randomised backoff."""
        res = self.reservations.pop(rid)
        m = res.message
        m.retries += 1
        self.total_retries += 1
        if self.trace:
            self.trace.emit(t, "res-fail", m.mid, f"rid {rid}, retry {m.retries}")
        self.outstanding.discard(m.src)
        backoff = 1 + int(self.rng.integers(0, self.params.retry_backoff))
        self._post(t + backoff, "node", (m.src,))

    def _on_ack(self, t: int, rid: int, hop: int) -> None:
        if rid in self.killed:
            return
        res = self.reservations[rid]
        freed = self.net.link(res.path[hop]).release_locks(rid, keep=res.chosen)
        self._wake_parked(t, res.path[hop], freed)
        if hop > 0:
            self._post(t + self.params.control_hop_latency, "ack", (rid, hop - 1))
        else:
            # Hop 0 is the injection link at the source's own switch, so
            # the source learns of the established circuit immediately:
            # establishment costs exactly 2 * path length * hop latency.
            self._established(t, rid)

    def _established(self, t: int, rid: int) -> None:
        res = self.reservations[rid]
        m = res.message
        m.established = t
        m.slot = res.chosen
        if self.trace:
            self.trace.emit(t, "established", m.mid, f"slot {res.chosen}")
        queue = self.queues[m.src]
        if queue and queue[0] is m:
            queue.popleft()
        else:
            # A fault requeued a killed transfer at the head while this
            # reservation's ACK was in flight for a later message.
            queue.remove(m)
        self.outstanding.discard(m.src)
        # The node may reserve for its next message while data streams.
        self._post(t, "node", (m.src,))
        chunks = transfer_chunks(m.size, self.params.slot_payload)
        finish = transfer_finish(t, res.chosen, self.degree, chunks)
        self._post(finish, "data_done", (rid,))

    def _on_data_done(self, t: int, rid: int) -> None:
        if rid in self.killed:
            return
        res = self.reservations[rid]
        m = res.message
        m.delivered = t
        self.delivered_count += 1
        self.completion = max(self.completion, t)
        if self.trace:
            self.trace.emit(t, "delivered", m.mid)
        # REL walks the path tearing the circuit down.
        self._post(t + self.params.control_hop_latency, "rel", (rid, 0))

    def _on_rel(self, t: int, rid: int, hop: int) -> None:
        if rid in self.killed:
            return
        res = self.reservations[rid]
        freed = self.net.link(res.path[hop]).release_owner(rid)
        self._wake_parked(t, res.path[hop], freed)
        if hop + 1 < len(res.path):
            self._post(t + self.params.control_hop_latency, "rel", (rid, hop + 1))
        else:
            if self.trace:
                self.trace.emit(t, "released", res.message.mid)
            del self.reservations[rid]


def simulate_dynamic(
    topology: Topology,
    requests: RequestSet,
    degree: int,
    params: SimParams = SimParams(),
    *,
    arrivals: list[int] | None = None,
    trace: "ProtocolTrace | None" = None,
    protocol: str = "dropping",
    faults: FaultSchedule | None = None,
) -> DynamicResult:
    """Simulate ``requests`` under dynamic control at a fixed degree.

    ``degree`` is the network's fixed multiplexing degree (the paper
    evaluates 1, 2, 5 and 10; distributed control cannot adapt it per
    pattern, which is one of compiled communication's advantages).
    ``arrivals`` optionally staggers message readiness (one slot time
    per request; default: everything ready at 0, the paper's static-
    pattern setting).

    ``protocol`` selects the blocked-reservation policy: ``"dropping"``
    (the paper's section 4.1: fail, NACK back, retry after backoff) or
    ``"holding"`` (park the RES at the blocked switch until a channel
    frees, with ``SimParams.hold_timeout`` breaking hold-and-wait
    deadlocks -- the design space of the paper's refs [15, 17]).

    ``faults`` optionally injects runtime fiber cuts and repairs (see
    :class:`repro.simulator.faults.FaultSchedule`): a ``fail`` event
    tears down every circuit and in-flight reservation crossing the
    dead link, requeues the affected messages, and subsequent attempts
    re-route around the cut; messages whose endpoints stay partitioned
    past ``SimParams.fault_retry_limit`` routing attempts are declared
    lost rather than simulated forever.
    """
    sim = _DynamicSimulator(
        topology, requests, degree, params, arrivals, trace, protocol, faults
    )
    sim.run()
    for entry in sim.fault_log:
        ends = []
        for mid in entry["requeued"]:
            m = sim.messages[mid]
            ends.append(m.delivered if m.delivered is not None else m.lost)
        entry["time_to_recover"] = (
            max(ends) - entry["slot"] if ends else 0
        )
    return DynamicResult(
        completion_time=sim.completion,
        degree=degree,
        messages=sim.messages,
        total_retries=sim.total_retries,
        params=params,
        trace=trace,
        fault_retries=sim.fault_retries,
        lost=sim.lost_count,
        fault_log=sim.fault_log,
    )
