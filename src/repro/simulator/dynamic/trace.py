"""Protocol event tracing for the dynamic simulator.

A :class:`ProtocolTrace` records the reservation protocol's visible
events -- message arrival, reservation start, per-hop progress,
failures, establishment, delivery, teardown -- as structured entries,
for debugging and for tests that assert protocol ordering ("ACK never
precedes the RES reaching the destination", "every established circuit
is eventually released", ...).

Enable it by passing ``trace=ProtocolTrace()`` to
:func:`repro.simulator.dynamic.simulate_dynamic`; the filled trace is
attached to the result.  Tracing every hop of a dense run is large, so
it is opt-in and the RES per-hop events can be disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event."""

    time: int
    kind: str   # arrive | res-start | res-hop | res-park | res-fail
    #             | established | delivered | released | fault-kill
    #             | lost | link-fail | link-restore
    mid: int    # message id; -1 for network-level events (link-fail/-restore)
    detail: str = ""


@dataclass
class ProtocolTrace:
    """Chronological protocol event record."""

    #: record per-hop RES progress (verbose on dense runs).
    record_hops: bool = True
    events: list[TraceEvent] = field(default_factory=list)

    def emit(self, time: int, kind: str, mid: int, detail: str = "") -> None:
        if kind == "res-hop" and not self.record_hops:
            return
        self.events.append(TraceEvent(time=time, kind=kind, mid=mid, detail=detail))

    # -- queries -----------------------------------------------------------
    def of_message(self, mid: int) -> list[TraceEvent]:
        """All events of one message, in order."""
        return [e for e in self.events if e.mid == mid]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def check_wellformed(self) -> None:
        """Assert per-message protocol ordering invariants.

        For every message: exactly one ``arrive``; at most one
        ``delivered`` and one ``lost`` (never both); no establishment
        after delivery and no reservation failure after the *final*
        establishment.  A message may establish more than once only
        when a runtime fault killed its circuit mid-transfer (the
        ``fault-kill`` event between the establishments records why).
        Network-level events (``mid == -1``, link fail/restore) are
        exempt from per-message checks.
        """
        mids = {e.mid for e in self.events if e.mid >= 0}
        for mid in mids:
            seq = self.of_message(mid)
            kinds = [e.kind for e in seq]
            if kinds.count("arrive") != 1:
                raise AssertionError(f"message {mid}: {kinds.count('arrive')} arrivals")
            if kinds.count("delivered") > 1:
                raise AssertionError(f"message {mid}: delivered twice")
            if kinds.count("lost") > 1:
                raise AssertionError(f"message {mid}: lost twice")
            if "delivered" in kinds and "lost" in kinds:
                raise AssertionError(f"message {mid}: both delivered and lost")
            times = {k: [e.time for e in seq if e.kind == k] for k in set(kinds)}
            if "established" in times:
                if kinds.count("established") > kinds.count("fault-kill") + 1:
                    raise AssertionError(
                        f"message {mid}: re-established without a fault kill"
                    )
                t_est = max(times["established"])
                if any(t > t_est for t in times.get("res-fail", [])):
                    raise AssertionError(f"message {mid}: failure after establishment")
                if "delivered" in times:
                    (t_del,) = times["delivered"]
                    if t_del < t_est:
                        raise AssertionError(f"message {mid}: delivered before established")

    def render(self, *, limit: int = 50) -> str:
        """Human-readable listing (first ``limit`` events)."""
        lines = [f"{e.time:>6}  {e.kind:<12} msg {e.mid:<4} {e.detail}"
                 for e in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
