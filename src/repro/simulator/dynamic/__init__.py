"""Dynamically controlled communication (the paper's section 4.1).

The data network is the same TDM torus as in the compiled case, but
paths are established at run time by a **distributed path reservation
protocol** over an electronic shadow network:

1. a source with a pending message sends a RES packet along the
   (deterministic) route, locking the virtual channels (time slots)
   still available on every link and carrying their intersection;
2. if the intersection empties, a NACK returns, releasing the locks --
   the source retries after a randomised backoff;
3. otherwise the destination picks one slot and returns an ACK that
   releases the surplus locks, sets the switches, and establishes the
   circuit;
4. the source streams the message at 1/K of the link bandwidth (its
   slot comes round once per frame), then sends a REL that tears the
   circuit down.

One reservation may be outstanding per node (the single control queue
whose head-of-line blocking the paper cites as a weakness of dynamic
control), but established circuits overlap freely.
"""

from repro.simulator.dynamic.control import DynamicResult, simulate_dynamic
from repro.simulator.dynamic.trace import ProtocolTrace, TraceEvent

__all__ = ["DynamicResult", "simulate_dynamic", "ProtocolTrace", "TraceEvent"]
