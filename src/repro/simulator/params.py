"""Simulation parameters.

The unit of time throughout the simulator is one **TDM slot**: the
interval during which one network configuration is held and one
channel's worth of data crosses each lit link.  The paper reports all
Table 5 communication times in slots but its parameter list did not
survive in the archived text, so the knobs below are *our* documented
substitutions (see DESIGN.md section 3):

``slot_payload``
    Array elements a connection transfers per owned slot.  4 makes the
    compiled model land exactly on the paper's GS numbers
    (``2 * ceil(G/4) + 3`` = 35/67/131 slots for G = 64/128/256).

``compiled_startup``
    Slots to load the switch shift-registers and synchronise before a
    compiled pattern starts (the paper's compiled runs reconfigure once
    per pattern).  3, from the same GS calibration.

``control_hop_latency``
    Slots for a control packet (RES/ACK/REL) to advance one hop on the
    electronic shadow network, including the per-switch processing the
    paper identifies as the expensive part of dynamic control.  2, a
    calibration that lands the dynamic GS column within a few percent
    of the paper's (106/109/133/213 vs 105/118/171/251 for K=1/2/5/10)
    and preserves its "K=1 is best for GS" observation.

``retry_backoff``
    A failed reservation retries after ``1 + uniform(0, retry_backoff)``
    slots; randomised (seeded) to break livelock between colliding
    reservations.

``hold_timeout``
    Holding-protocol variant only: slots a blocked reservation may wait
    at a switch for a channel to free before giving up (breaks
    hold-and-wait deadlock cycles).

``recompile_latency``
    Slots the compiled model pays to reschedule the undelivered
    remainder of a pattern after a **mid-run** fiber cut: recompute
    routes and slots on the degraded topology and reload the switch
    shift-registers.  Defaults to ``compiled_startup`` (the reload is
    the same operation); the fault campaign sweeps it to ask when
    re-establishing circuits pays off at all.

``failover_latency``
    Slots a **protected** failover pays to swap to a precomputed backup
    configuration set after a fiber cut: select the scenario's register
    images (already distributed at load time) and resynchronise.  1 --
    no routes or slots are computed at run time, so the swap is an
    image-select plus one sync slot, an order cheaper than
    ``recompile_latency`` and independent of pattern size.

``amend_latency``
    Slots a running compiled pattern pays to swap schedules at an
    **epoch boundary** (the incremental ``amend`` path): distribute the
    amended register image and resynchronise.  1 -- an amend touches
    O(update) switch states and the image swap is the same operation as
    a protected failover, an order cheaper than ``recompile_latency``.

``fault_retry_limit``
    Dynamic control under faults: consecutive routing failures (source
    and destination disconnected by the current fiber cuts) a message
    tolerates before it is declared **lost**.  Retries due to channel
    contention are never bounded -- only a partitioned network can
    exhaust this.

``max_slots``
    Safety horizon: the dynamic simulator raises if a workload has not
    drained by then (a protocol bug, not a result).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimParams:
    """Knobs of the TDM network simulator (see module docstring)."""

    slot_payload: int = 4
    compiled_startup: int = 3
    control_hop_latency: int = 2
    retry_backoff: int = 16
    hold_timeout: int = 64
    recompile_latency: int = 3
    failover_latency: int = 1
    amend_latency: int = 1
    fault_retry_limit: int = 32
    seed: int = 0
    max_slots: int = 10_000_000

    def __post_init__(self) -> None:
        if self.slot_payload < 1:
            raise ValueError("slot_payload must be >= 1")
        if self.compiled_startup < 0:
            raise ValueError("compiled_startup must be >= 0")
        if self.control_hop_latency < 1:
            raise ValueError("control_hop_latency must be >= 1")
        if self.retry_backoff < 1:
            raise ValueError("retry_backoff must be >= 1")
        if self.hold_timeout < 1:
            raise ValueError("hold_timeout must be >= 1")
        if self.recompile_latency < 0:
            raise ValueError("recompile_latency must be >= 0")
        if self.failover_latency < 0:
            raise ValueError("failover_latency must be >= 0")
        if self.amend_latency < 0:
            raise ValueError("amend_latency must be >= 0")
        if self.fault_retry_limit < 1:
            raise ValueError("fault_retry_limit must be >= 1")
        if self.max_slots < 1:
            raise ValueError("max_slots must be >= 1")

    def with_(self, **changes) -> "SimParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
