"""The graph-coloring connection scheduling algorithm (paper Fig. 4).

The request set is modelled as a **conflict graph** (one node per
connection, edges between conflicting pairs); a proper coloring is a
partition into configurations, so minimising colors minimises the
multiplexing degree.  Coloring is NP-complete, so the paper uses a
priority heuristic.  Each round builds one configuration: walk the
uncolored nodes in priority order, color the highest-priority workable
node, and knock its uncolored neighbours out of the round's work list.
When a node is colored, the degrees of its uncolored neighbours
decrease; those neighbours are exactly the nodes removed from the work
list, so within a round the priority order of the *remaining* work list
is unaffected (which is why a single sort per round, as in the paper's
Fig. 4, suffices).

Priority rules -- a reproduction note
-------------------------------------
The paper's prose defines the priority as *"the ratio of the number of
links in the connection to the degree of the corresponding node in the
uncolored conflict subgraph"*, processed highest-first, i.e.
fewest-conflicts-first.  Implemented literally, that rule produces
multiplexing degrees consistently *worse than the greedy algorithm* on
the paper's own Table 1 workloads (e.g. ~18 vs ~16 at 400 random
connections), contradicting the paper's central observation that "the
coloring algorithm is always better than the greedy algorithm".

Processing **most-constrained connections first** -- priority = degree
in the uncolored conflict subgraph, descending (the Welsh-Powell
discipline) -- reproduces the paper's coloring column closely on every
reported workload (ring 2, nearest-neighbour 4, shuffle-exchange 4,
all-to-all 82 vs the paper's 83; random patterns tracking Table 1
within ~5%) and restores coloring <= greedy throughout.  We therefore
default to ``priority="most-constrained"`` and keep the literal rule
available as ``priority="paper-ratio"`` for comparison; the ablation
bench quantifies the difference, and EXPERIMENTS.md discusses it.

Implementation notes: adjacency is built from per-link buckets (see
:mod:`repro.core.conflicts`) and stored as deduplicated numpy index
arrays, so degree updates vectorise; the densest evaluation instance
(all-to-all on the 8x8 torus: 4032 connections, ~1.4M conflict edges)
colors in under a second.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.conflicts import links_to_connections
from repro.core.paths import Connection

#: Valid ``priority`` arguments of :func:`coloring_schedule`.
PRIORITY_RULES = ("most-constrained", "paper-ratio")


def _adjacency_arrays(connections: Sequence[Connection]) -> list[np.ndarray]:
    """Conflict adjacency as sorted, deduplicated int32 arrays."""
    n = len(connections)
    raw: list[list[int]] = [[] for _ in range(n)]
    for members in links_to_connections(connections).values():
        if len(members) > 1:
            for i in members:
                raw[i].extend(members)
    adj: list[np.ndarray] = []
    for i, lst in enumerate(raw):
        if lst:
            a = np.unique(np.asarray(lst, dtype=np.int32))
            a = a[a != i]
        else:
            a = np.empty(0, dtype=np.int32)
        adj.append(a)
    return adj


def coloring_schedule(
    connections: Sequence[Connection],
    *,
    priority: str = "most-constrained",
) -> ConfigurationSet:
    """Schedule ``connections`` with the Fig. 4 coloring heuristic.

    Parameters
    ----------
    connections:
        Routed request set, indexed ``0..n-1``.
    priority:
        ``"most-constrained"`` (default; degree descending -- see the
        module docstring for why) or ``"paper-ratio"`` (the paper's
        literal links/degree rule, fewest conflicts first).

    Returns a validated-by-construction :class:`ConfigurationSet`
    (every ``Configuration.add`` re-checks link-disjointness).
    """
    if priority not in PRIORITY_RULES:
        raise ValueError(f"priority must be one of {PRIORITY_RULES}, got {priority!r}")
    n = len(connections)
    if n == 0:
        return ConfigurationSet([], scheduler="coloring")
    for i, c in enumerate(connections):
        if c.index != i:
            raise ValueError("connections must be indexed 0..n-1 in order")

    adj = _adjacency_arrays(connections)
    deg = np.array([len(a) for a in adj], dtype=np.int64)
    lengths = np.array([c.num_links for c in connections], dtype=np.float64)
    uncolored = np.ones(n, dtype=bool)
    n_left = n

    configs: list[Configuration] = []
    while n_left > 0:
        if priority == "paper-ratio":
            prio = np.where(deg > 0, lengths / np.maximum(deg, 1), np.inf)
        else:
            prio = deg.astype(np.float64)
        idxs = np.nonzero(uncolored)[0]
        # Primary key: priority descending; secondary: index ascending
        # (deterministic tie-break).
        order = idxs[np.lexsort((idxs, -prio[idxs]))]
        in_work = uncolored.copy()
        cfg = Configuration()
        for i in order:
            if not in_work[i]:
                continue
            cfg.add(connections[i])
            uncolored[i] = False
            in_work[i] = False
            n_left -= 1
            nbrs = adj[i]
            if nbrs.size:
                still = nbrs[uncolored[nbrs]]
                deg[still] -= 1
                in_work[still] = False
        configs.append(cfg)
    return ConfigurationSet(configs, scheduler="coloring")
