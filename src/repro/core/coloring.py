"""The graph-coloring connection scheduling algorithm (paper Fig. 4).

The request set is modelled as a **conflict graph** (one node per
connection, edges between conflicting pairs); a proper coloring is a
partition into configurations, so minimising colors minimises the
multiplexing degree.  Coloring is NP-complete, so the paper uses a
priority heuristic.  Each round builds one configuration: walk the
uncolored nodes in priority order, color the highest-priority workable
node, and knock its uncolored neighbours out of the round's work list.
When a node is colored, the degrees of its uncolored neighbours
decrease; those neighbours are exactly the nodes removed from the work
list, so within a round the priority order of the *remaining* work list
is unaffected (which is why a single sort per round, as in the paper's
Fig. 4, suffices).

Priority rules -- a reproduction note
-------------------------------------
The paper's prose defines the priority as *"the ratio of the number of
links in the connection to the degree of the corresponding node in the
uncolored conflict subgraph"*, processed highest-first, i.e.
fewest-conflicts-first.  Implemented literally, that rule produces
multiplexing degrees consistently *worse than the greedy algorithm* on
the paper's own Table 1 workloads (e.g. ~18 vs ~16 at 400 random
connections), contradicting the paper's central observation that "the
coloring algorithm is always better than the greedy algorithm".

Processing **most-constrained connections first** -- priority = degree
in the uncolored conflict subgraph, descending (the Welsh-Powell
discipline) -- reproduces the paper's coloring column closely on every
reported workload (ring 2, nearest-neighbour 4, shuffle-exchange 4,
all-to-all 82 vs the paper's 83; random patterns tracking Table 1
within ~5%) and restores coloring <= greedy throughout.  We therefore
default to ``priority="most-constrained"`` and keep the literal rule
available as ``priority="paper-ratio"`` for comparison; the ablation
bench quantifies the difference, and EXPERIMENTS.md discusses it.

Implementation notes: adjacency is built from per-link buckets (see
:mod:`repro.core.conflicts`) and stored as deduplicated numpy index
arrays, so degree updates vectorise; the densest evaluation instance
(all-to-all on the 8x8 torus: 4032 connections, ~1.4M conflict edges)
colors in under a second.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core import perf
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.conflicts import links_to_connections
from repro.core.linkmask import ConflictMatrix, resolve_kernel
from repro.core.paths import Connection

#: Valid ``priority`` arguments of :func:`coloring_schedule`.
PRIORITY_RULES = ("most-constrained", "paper-ratio")


def _adjacency_arrays(connections: Sequence[Connection]) -> list[np.ndarray]:
    """Conflict adjacency as sorted, deduplicated int32 arrays.

    The ``kernel="set"`` reference build; the bitmask kernel gets the
    same structure from :class:`repro.core.linkmask.ConflictMatrix`.
    """
    t0 = perf.perf_timer()
    n = len(connections)
    raw: list[list[int]] = [[] for _ in range(n)]
    for members in links_to_connections(connections).values():
        if len(members) > 1:
            for i in members:
                raw[i].extend(members)
    adj: list[np.ndarray] = []
    for i, lst in enumerate(raw):
        if lst:
            a = np.unique(np.asarray(lst, dtype=np.int32))
            a = a[a != i]
        else:
            a = np.empty(0, dtype=np.int32)
        adj.append(a)
    perf.COUNTERS.adjacency_builds += 1
    perf.COUNTERS.adjacency_seconds += perf.perf_timer() - t0
    return adj


def coloring_schedule(
    connections: Sequence[Connection],
    *,
    priority: str = "most-constrained",
    kernel: str | None = None,
) -> ConfigurationSet:
    """Schedule ``connections`` with the Fig. 4 coloring heuristic.

    Parameters
    ----------
    connections:
        Routed request set, indexed ``0..n-1``.
    priority:
        ``"most-constrained"`` (default; degree descending -- see the
        module docstring for why) or ``"paper-ratio"`` (the paper's
        literal links/degree rule, fewest conflicts first).
    kernel:
        ``"bitmask"`` builds the conflict adjacency as a packed bit
        matrix (:class:`~repro.core.linkmask.ConflictMatrix`);
        ``"set"`` uses the per-link-bucket reference build.  The
        resulting schedules are identical (``None`` = process default).

    Returns a :class:`ConfigurationSet` whose conflict-freeness is
    guaranteed by the adjacency knock-outs (and re-checkable with
    ``validate()``).
    """
    if priority not in PRIORITY_RULES:
        raise ValueError(f"priority must be one of {PRIORITY_RULES}, got {priority!r}")
    kernel = resolve_kernel(kernel)
    n = len(connections)
    if n == 0:
        return ConfigurationSet([], scheduler="coloring")
    for i, c in enumerate(connections):
        if c.index != i:
            raise ValueError("connections must be indexed 0..n-1 in order")

    if kernel == "bitmask":
        return _coloring_bitmask(connections, priority)

    adj = _adjacency_arrays(connections)
    deg = np.array([len(a) for a in adj], dtype=np.int64)
    lengths = np.array([c.num_links for c in connections], dtype=np.float64)
    uncolored = np.ones(n, dtype=bool)
    n_left = n

    configs: list[Configuration] = []
    while n_left > 0:
        if priority == "paper-ratio":
            prio = np.where(deg > 0, lengths / np.maximum(deg, 1), np.inf)
        else:
            prio = deg.astype(np.float64)
        idxs = np.nonzero(uncolored)[0]
        # Primary key: priority descending; secondary: index ascending
        # (deterministic tie-break).
        order = idxs[np.lexsort((idxs, -prio[idxs]))]
        in_work = uncolored.copy()
        members: list[Connection] = []
        for i in order:
            if not in_work[i]:
                continue
            members.append(connections[i])
            uncolored[i] = False
            in_work[i] = False
            n_left -= 1
            nbrs = adj[i]
            still = nbrs[uncolored[nbrs]] if nbrs.size else nbrs
            if still.size:
                deg[still] -= 1
                in_work[still] = False
        cfg = Configuration()
        for c in members:
            cfg.add(c)
        configs.append(cfg)
    return ConfigurationSet(configs, scheduler="coloring")


#: Window width of the bitmask round walk (see :func:`_coloring_bitmask`).
_WALK_WINDOW = 64


def _coloring_bitmask(
    connections: Sequence[Connection], priority: str
) -> ConfigurationSet:
    """Bitmask-kernel coloring: identical output, vectorized bookkeeping.

    Three observations let the round loop drop the reference version's
    per-pick Python bookkeeping without changing a single pick:

    * The degree of an uncolored node in the uncolored subgraph only
      matters at round *starts* (the priority sort), and the nodes
      colored within one round are mutually non-adjacent, so the
      per-pick ``deg -= 1`` updates can be batched into one vectorized
      subtraction of the round's members' summed adjacency rows.
    * Within a round, skipping knocked-out nodes is a filter: keep the
      priority-ordered candidate array, and after each pick drop every
      candidate adjacent to it.  Doing that per *window* of
      ``_WALK_WINDOW`` candidates -- gather the window's conflict
      submatrix, pack its rows into per-candidate machine words, select
      greedily with integer bit tests, then knock the union of the
      picks' rows out of the tail once -- amortises the numpy call
      overhead over many picks.
    * ``lexsort((idxs, -prio))`` over an ascending index array equals a
      single stable argsort of ``-prio``.
    """
    n = len(connections)
    matrix = ConflictMatrix(connections)
    bits = matrix.bits
    B = matrix.unpacked()
    deg = matrix.degrees()
    lengths = None
    if priority == "paper-ratio":
        lengths = np.array([c.num_links for c in connections], dtype=np.float64)
    uncolored = np.ones(n, dtype=bool)
    n_left = n
    # Degrees only decrease, so ``maxd - deg`` is a non-negative sort
    # key whose ascending stable order equals descending-by-degree; for
    # n < 2**16 it fits uint16, where numpy's stable sort is radix
    # (linear-time) instead of mergesort.
    maxd = int(deg.max()) if n else 0
    radix = n < (1 << 16)

    configs: list[Configuration] = []
    while n_left > 0:
        idxs = np.nonzero(uncolored)[0]
        if priority == "paper-ratio":
            d = deg[idxs]
            prio = np.where(d > 0, lengths[idxs] / np.maximum(d, 1), np.inf)
            order = idxs[np.argsort(-prio, kind="stable")]
        elif radix:
            key = (maxd - deg[idxs]).astype(np.uint16)
            order = idxs[np.argsort(key, kind="stable")]
        else:
            order = idxs[np.argsort(-deg[idxs], kind="stable")]
        rem = order
        members: list[int] = []
        while rem.size:
            head = rem[:_WALK_WINDOW]
            h = len(head)
            window = B.take((head[:, None] * n + head).ravel()).reshape(h, h)
            packed = np.packbits(window, axis=1, bitorder="little")
            if packed.shape[1] < 8:  # short tail window: widen to one word
                buf = np.zeros((h, 8), dtype=np.uint8)
                buf[:, : packed.shape[1]] = packed
                packed = buf
            rowbits = packed.view(np.uint64).ravel().tolist()
            selbits, sel_local = 0, []
            for j in range(h):
                if not rowbits[j] & selbits:
                    sel_local.append(j)
                    selbits |= 1 << j
            sel = head[sel_local]
            members.extend(sel.tolist())
            tail = rem[h:]
            if not tail.size:
                break
            blocked = np.bitwise_or.reduce(bits[sel], axis=0)
            hit = (blocked[tail >> 3] >> (tail & 7).astype(np.uint8)) & 1
            rem = tail[hit == 0]
        marr = np.asarray(members)
        uncolored[marr] = False
        n_left -= len(members)
        deg -= B[marr].sum(axis=0, dtype=np.uint32)
        configs.append(
            Configuration._trusted([connections[i] for i in members])
        )
    return ConfigurationSet(configs, scheduler="coloring")
