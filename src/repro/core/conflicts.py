"""Conflict detection and conflict-graph construction.

Definitions (paper, section 3):

* two connection requests **conflict** if they cannot be simultaneously
  established -- on this substrate, iff their routed link sets
  intersect;
* the **conflict graph** has one node per connection and an edge per
  conflicting pair.  A proper coloring of the conflict graph is exactly
  a partition into configurations, so the chromatic number equals the
  minimum multiplexing degree for the (fixed-route) request set.

Building the graph pair-by-pair costs O(|R|^2) intersection tests; the
index-based builder here instead buckets connections by link and only
materialises edges between co-bucketed connections, which is
O(sum of path lengths + |E|) -- significantly faster for the sparse
patterns of Tables 1-2.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import networkx as nx

from repro.core.paths import Connection


def conflict(a: Connection, b: Connection) -> bool:
    """True iff connections ``a`` and ``b`` cannot share a time slot."""
    return not a.link_set.isdisjoint(b.link_set)


def links_to_connections(connections: Sequence[Connection]) -> dict[int, list[int]]:
    """Map each link id to the (indices of) connections traversing it."""
    index: dict[int, list[int]] = defaultdict(list)
    for c in connections:
        for link in c.links:
            index[link].append(c.index)
    return dict(index)


def link_load(connections: Sequence[Connection]) -> dict[int, int]:
    """Number of connections traversing each link.

    The maximum value is a lower bound on the multiplexing degree: a
    link carries at most one connection per time slot.
    """
    return {link: len(cs) for link, cs in links_to_connections(connections).items()}


def adjacency(connections: Sequence[Connection]) -> list[set[int]]:
    """Conflict adjacency sets, indexed by connection index.

    ``adjacency(cs)[i]`` is the set of connection indices conflicting
    with connection ``i``.  Connection indices must be ``0..n-1`` in
    order (as produced by :func:`repro.core.paths.route_requests`).
    """
    n = len(connections)
    for i, c in enumerate(connections):
        if c.index != i:
            raise ValueError("connections must be indexed 0..n-1 in order")
    adj: list[set[int]] = [set() for _ in range(n)]
    for members in links_to_connections(connections).values():
        if len(members) < 2:
            continue
        for i in members:
            for j in members:
                if i != j:
                    adj[i].add(j)
    return adj


def build_conflict_graph(connections: Sequence[Connection]) -> nx.Graph:
    """The conflict graph as a :class:`networkx.Graph`.

    Nodes are connection indices and carry the connection object as the
    ``"connection"`` attribute; useful for the networkx-based ablation
    colorers and for visual inspection in the examples.
    """
    g = nx.Graph()
    for c in connections:
        g.add_node(c.index, connection=c)
    for i, nbrs in enumerate(adjacency(connections)):
        for j in nbrs:
            if j > i:
                g.add_edge(i, j)
    return g
