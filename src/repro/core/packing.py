"""Shared packing primitives used by several schedulers.

Two building blocks live here:

:func:`first_fit`
    Place each connection (in a given order) into the first
    configuration it fits, opening a new configuration when none fits.
    This is *exactly* the paper's greedy algorithm (Fig. 2): the
    paper's formulation fills configuration C_k by one pass over the
    remaining requests before opening C_{k+1}, and a short induction
    shows both formulations assign every request to the same
    configuration -- a request joins C_k iff it conflicts with some
    earlier-ordered member of each of C_1..C_{k-1} and with none in
    C_k.  First-fit is the cheaper formulation, O(|R| * K) fit tests.

:func:`repack`
    A local-search improver: repeatedly try to dissolve the smallest
    configuration by moving each of its members into some other
    configuration.  Preserves validity by construction; used by the
    ablation schedulers and by the AAPC phase builder, *not* by the
    paper's three algorithms (they are reproduced faithfully).

Both take a ``kernel`` argument selecting the placement-test
implementation: ``"bitmask"`` (the default, see
:mod:`repro.core.linkmask`) or ``"set"`` (the reference hash-set
implementation).  The kernels produce *identical* schedules -- the
property suite asserts it -- so the knob only changes speed.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence
from itertools import chain

import numpy as np

from repro.core import perf
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.linkmask import (
    Occupancy,
    SlotMatrix,
    SlotOccupancy,
    mask_row,
    required_links,
    resolve_kernel,
)
from repro.core.paths import Connection


def validate_order(order: Sequence[int], n: int) -> None:
    """Raise ``ValueError`` unless ``order`` is a permutation of ``range(n)``.

    First-fit silently mis-schedules on a malformed order (a duplicate
    position schedules one connection twice; an omission breaks
    coverage), so every caller-supplied order is checked up front.
    """
    arr = np.asarray(order)
    if arr.ndim != 1 or arr.size != n:
        raise ValueError(
            f"order must be a permutation of range({n}): "
            f"got {arr.size} positions, expected {n}"
        )
    if n == 0:
        return
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(
            f"order must be a permutation of range({n}): "
            f"got non-integer positions (dtype {arr.dtype})"
        )
    if not np.array_equal(np.sort(arr), np.arange(n)):
        counts = np.bincount(arr[(arr >= 0) & (arr < n)], minlength=n)
        duplicated = np.nonzero(counts > 1)[0][:5].tolist()
        missing = np.nonzero(counts == 0)[0][:5].tolist()
        out_of_range = arr[(arr < 0) | (arr >= n)][:5].tolist()
        raise ValueError(
            f"order must be a permutation of range({n}): "
            f"duplicated positions {duplicated}, missing positions {missing}, "
            f"out-of-range positions {out_of_range} (first 5 of each shown)"
        )


def first_fit(
    connections: Sequence[Connection],
    order: Sequence[int] | None = None,
    *,
    scheduler: str = "first-fit",
    kernel: str | None = None,
    num_links: int | None = None,
    runs: Sequence[int] | None = None,
) -> ConfigurationSet:
    """Pack ``connections`` first-fit in the given order.

    Parameters
    ----------
    connections:
        The routed request set.
    order:
        Positions into ``connections`` giving the processing order;
        defaults to the natural (request) order.  Must be a permutation
        of ``range(len(connections))`` (``ValueError`` otherwise).
    kernel:
        ``"bitmask"`` or ``"set"`` placement tests (``None`` = the
        process default, see :mod:`repro.core.linkmask`).
    num_links:
        Size of the link-id space (``topology.num_links``); derived
        from the connections when omitted.
    runs:
        Optional lengths of consecutive blocks of the *ordered*
        sequence whose members are mutually link-disjoint (e.g. the
        AAPC phase blocks of :func:`repro.core.aapc_ordered.aapc_rank_order`).
        The bitmask kernel then places each block with one vectorized
        pass (:class:`repro.core.linkmask.SlotMatrix`) instead of a
        Python loop.  The result is *byte-identical* to the sequential
        kernel: within a link-disjoint run, placing one member never
        changes whether a later member fits any slot (their link sets
        cannot meet), and every member fitting no pre-run slot shares
        the single freshly opened slot -- exactly what the sequential
        scan does.  The precondition is verified up front
        (``ValueError`` on overlapping run members or lengths not
        summing to the sequence), so a wrong hint can never corrupt a
        schedule.  The set kernel ignores the hint and stays the
        sequential reference.
    """
    kernel = resolve_kernel(kernel)
    if order is None:
        seq = connections
    else:
        validate_order(order, len(connections))
        seq = [connections[i] for i in order]
    t0 = perf.perf_timer()
    if kernel == "bitmask":
        if runs is not None:
            result = _first_fit_bitmask_runs(seq, scheduler, num_links, runs)
        else:
            result = _first_fit_bitmask(seq, scheduler, num_links)
    else:
        result = _first_fit_set(seq, scheduler)
    perf.COUNTERS.kernel_calls += 1
    perf.COUNTERS.kernel_seconds += perf.perf_timer() - t0
    return result


def _first_fit_set(seq: Sequence[Connection], scheduler: str) -> ConfigurationSet:
    """Reference first-fit: hash-set disjointness per candidate slot."""
    configs: list[Configuration] = []
    tests = 0
    for c in seq:
        for cfg in configs:
            tests += 1
            if cfg.fits(c):
                cfg.add(c)
                break
        else:
            cfg = Configuration()
            cfg.add(c)
            configs.append(cfg)
    perf.COUNTERS.fit_tests += tests
    return ConfigurationSet(configs, scheduler=scheduler)


def _first_fit_bitmask(
    seq: Sequence[Connection], scheduler: str, num_links: int | None
) -> ConfigurationSet:
    """Bitmask first-fit: one OR over the path's slot masks per placement."""
    if num_links is None:
        num_links = required_links(seq)
    occ = SlotOccupancy(num_links)
    members: list[list[Connection]] = []
    for c in seq:
        slot = occ.first_fit_slot(c.links)
        if slot == len(members):
            members.append([])
        occ.place(c.links, slot)
        members[slot].append(c)
    return ConfigurationSet(
        [Configuration._trusted(m) for m in members], scheduler=scheduler
    )


def _first_fit_bitmask_runs(
    seq: Sequence[Connection],
    scheduler: str,
    num_links: int | None,
    runs: Sequence[int],
) -> ConfigurationSet:
    """Run-batched bitmask first-fit (see ``first_fit``'s ``runs=`` doc)."""
    runs_arr = np.asarray(runs, dtype=np.intp)
    n = len(seq)
    if runs_arr.ndim != 1 or (runs_arr.size > 0 and int(runs_arr.min()) < 1):
        raise ValueError(f"runs must be a flat sequence of positive lengths, got {runs!r}")
    if int(runs_arr.sum()) != n:
        raise ValueError(
            f"runs sum to {int(runs_arr.sum())} but the sequence has {n} connections"
        )
    if num_links is None:
        num_links = required_links(seq)
    lens = np.fromiter((len(c.links) for c in seq), dtype=np.intp, count=n)
    total = int(lens.sum())
    flat = np.fromiter(
        chain.from_iterable(c.links for c in seq), dtype=np.intp, count=total
    )
    # Verify the disjointness precondition: a (run, link) key occurring
    # twice is a link shared by two members of one run.
    run_of = np.repeat(np.arange(runs_arr.size, dtype=np.int64), runs_arr)
    key = np.repeat(run_of, lens) * np.int64(max(num_links, 1)) + flat
    key.sort()
    if key.size and bool((key[1:] == key[:-1]).any()):
        raise ValueError(
            "runs must partition the ordered sequence into mutually "
            "link-disjoint blocks; two members of one run share a link"
        )
    occ = SlotMatrix(num_links)
    members: list[list[Connection]] = []
    conn_starts = np.zeros(n, dtype=np.intp)
    np.cumsum(lens[:-1], out=conn_starts[1:])
    pos = 0
    for run_len in runs_arr:
        lo, hi = pos, pos + int(run_len)
        seg = slice(int(conn_starts[lo]), int(conn_starts[hi - 1] + lens[hi - 1]))
        slots = occ.place_run(flat[seg], lens[lo:hi])
        for off, s in enumerate(slots.tolist()):
            if s == len(members):
                members.append([])
            members[s].append(seq[lo + off])
        pos = hi
    return ConfigurationSet(
        [Configuration._trusted(m) for m in members], scheduler=scheduler
    )


# ----------------------------------------------------------------------
# repack
# ----------------------------------------------------------------------

class _SetDissolver:
    """Reference dissolution: per-configuration hash-set fit tests."""

    def __init__(self, configs: Sequence[Configuration]) -> None:
        pass

    def try_dissolve(
        self, victim: Configuration, configs: list[Configuration], victim_pos: int
    ) -> list[Configuration] | None:
        """Move every member of ``victim`` into some other configuration.

        All-or-nothing: on failure every tentative move is rolled back
        and ``victim`` is left exactly as found.  Returns the receiving
        configurations on success (for order maintenance), else None.
        """
        original = list(victim.connections)
        moves: list[tuple[Connection, Configuration]] = []
        tests = 0
        for c in original:
            for cfg in configs:
                if cfg is victim:
                    continue
                tests += 1
                if cfg.fits(c):
                    victim.remove(c)
                    cfg.add(c)
                    moves.append((c, cfg))
                    break
            else:
                # Roll back so the victim is left *exactly* as found --
                # members in their original order, not rotated (the
                # bitmask dissolver never touches the victim on failure,
                # and kernel equivalence requires identical state).
                for moved, cfg in moves:
                    cfg.remove(moved)
                    victim.used_links |= moved.link_set
                victim.connections[:] = original
                perf.COUNTERS.fit_tests += tests
                return None
        perf.COUNTERS.fit_tests += tests
        return [cfg for _, cfg in moves]

    def drop_config(self, victim_pos: int) -> None:
        pass


def _try_dissolve(victim: Configuration, others: Sequence[Configuration]) -> bool:
    """Move every member of ``victim`` into some configuration of ``others``.

    All-or-nothing with full rollback; the standalone entry point used
    by the AAPC degree optimiser (:mod:`repro.aapc.optimize`).
    """
    configs = [victim, *others]
    return _SetDissolver(configs).try_dissolve(victim, configs, 0) is not None


class _MaskDissolver:
    """Bitmask dissolution: one vectorized fit test over all configs."""

    def __init__(self, configs: Sequence[Configuration]) -> None:
        self.num_links = 1 + max(
            (max(cfg.used_links) for cfg in configs if cfg.used_links), default=-1
        )
        self.occ = Occupancy(self.num_links, capacity=max(len(configs), 1))
        for pos, cfg in enumerate(configs):
            self.occ.place(mask_row(cfg.used_links, self.num_links), pos)

    def try_dissolve(
        self, victim: Configuration, configs: list[Configuration], victim_pos: int
    ) -> list[Configuration] | None:
        saved = self.occ.snapshot()
        moves: list[tuple[Connection, int]] = []
        for c in victim.connections:
            mask = mask_row(c.links, self.num_links)
            fit = self.occ.fits(mask)
            fit[victim_pos] = False
            targets = np.nonzero(fit)[0]
            if targets.size == 0:
                self.occ.restore(saved)
                return None
            target = int(targets[0])
            self.occ.remove(mask, victim_pos)
            self.occ.place(mask, target)
            moves.append((c, target))
        # The trial succeeded on masks alone; apply it to the real
        # configurations (``add`` re-checks disjointness, so a kernel
        # bug surfaces as ScheduleValidationError, never silently).
        receivers = []
        for c, target in moves:
            victim.remove(c)
            configs[target].add(c)
            receivers.append(configs[target])
        return receivers

    def drop_config(self, victim_pos: int) -> None:
        rows = self.occ.snapshot()
        self.occ.restore(np.delete(rows, victim_pos, axis=0))


def repack(
    schedule: ConfigurationSet,
    *,
    max_rounds: int = 1000,
    kernel: str | None = None,
) -> ConfigurationSet:
    """Local-search improver: dissolve configurations where possible.

    Repeatedly walks the configurations smallest-first and attempts an
    all-or-nothing dissolution of each into the remaining ones; every
    success removes one time slot.  Stops at a local optimum (no
    configuration dissolvable) or after ``max_rounds`` successes.

    The candidate order (by size, creation order breaking ties) is
    maintained incrementally: the single up-front sort is patched after
    each successful dissolve instead of re-sorting every round.

    Copy-on-write: the input set is never mutated -- its configurations
    are cloned up front (O(total connections) pointer copies), so a
    schedule materialised from a cache-held artifact stays intact.
    Validity is preserved by construction --
    :meth:`Configuration.add` re-checks link-disjointness on every move.
    """
    kernel = resolve_kernel(kernel)
    configs = [cfg.clone() for cfg in schedule if len(cfg) > 0]
    dissolver = (_MaskDissolver if kernel == "bitmask" else _SetDissolver)(configs)
    # Creation-order ranks make (len, rank) a total order, so incremental
    # re-insertion reproduces the stable smallest-first sort exactly.
    rank = {id(cfg): pos for pos, cfg in enumerate(configs)}
    key = lambda cfg: (len(cfg), rank[id(cfg)])  # noqa: E731
    ordered = sorted(configs, key=key)
    # Slot position of every live configuration, by identity -- pop
    # maintenance is O(K - pos) decrements, replacing the O(K) identity
    # scan ``configs.index(victim)`` per dissolve candidate.
    position = {id(cfg): pos for pos, cfg in enumerate(configs)}

    for _ in range(max_rounds):
        if len(configs) <= 1:
            break
        for victim in ordered:
            victim_pos = position[id(victim)]
            receivers = dissolver.try_dissolve(victim, configs, victim_pos)
            if receivers is not None:
                dissolver.drop_config(victim_pos)
                configs.pop(victim_pos)
                del position[id(victim)]
                for cfg in configs[victim_pos:]:
                    position[id(cfg)] -= 1
                ordered.remove(victim)
                for cfg in {id(c): c for c in receivers}.values():
                    ordered.remove(cfg)
                    bisect.insort(ordered, cfg, key=key)
                break
        else:
            break
    return ConfigurationSet(configs, scheduler=schedule.scheduler + "+repack")
