"""Shared packing primitives used by several schedulers.

Two building blocks live here:

:func:`first_fit`
    Place each connection (in a given order) into the first
    configuration it fits, opening a new configuration when none fits.
    This is *exactly* the paper's greedy algorithm (Fig. 2): the
    paper's formulation fills configuration C_k by one pass over the
    remaining requests before opening C_{k+1}, and a short induction
    shows both formulations assign every request to the same
    configuration -- a request joins C_k iff it conflicts with some
    earlier-ordered member of each of C_1..C_{k-1} and with none in
    C_k.  First-fit is the cheaper formulation, O(|R| * K) fit tests.

:func:`repack`
    A local-search improver: repeatedly try to dissolve the smallest
    configuration by moving each of its members into some other
    configuration.  Preserves validity by construction; used by the
    ablation schedulers and by the AAPC phase builder, *not* by the
    paper's three algorithms (they are reproduced faithfully).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.paths import Connection


def first_fit(
    connections: Sequence[Connection],
    order: Sequence[int] | None = None,
    *,
    scheduler: str = "first-fit",
) -> ConfigurationSet:
    """Pack ``connections`` first-fit in the given order.

    Parameters
    ----------
    connections:
        The routed request set.
    order:
        Positions into ``connections`` giving the processing order;
        defaults to the natural (request) order.  Need not be a full
        permutation check here -- callers pass permutations.
    """
    configs: list[Configuration] = []
    seq = connections if order is None else [connections[i] for i in order]
    for c in seq:
        for cfg in configs:
            if cfg.fits(c):
                cfg.add(c)
                break
        else:
            cfg = Configuration()
            cfg.add(c)
            configs.append(cfg)
    return ConfigurationSet(configs, scheduler=scheduler)


def _try_dissolve(victim: Configuration, others: Sequence[Configuration]) -> bool:
    """Move every member of ``victim`` into some other configuration.

    All-or-nothing: on failure every tentative move is rolled back and
    ``victim`` is left exactly as found.
    """
    moves: list[tuple[Connection, Configuration]] = []
    for c in list(victim.connections):
        for cfg in others:
            if cfg.fits(c):
                victim.remove(c)
                cfg.add(c)
                moves.append((c, cfg))
                break
        else:
            for moved, cfg in reversed(moves):
                cfg.remove(moved)
                victim.add(moved)
            return False
    return True


def repack(schedule: ConfigurationSet, *, max_rounds: int = 1000) -> ConfigurationSet:
    """Local-search improver: dissolve configurations where possible.

    Repeatedly walks the configurations smallest-first and attempts an
    all-or-nothing dissolution of each into the remaining ones; every
    success removes one time slot.  Stops at a local optimum (no
    configuration dissolvable) or after ``max_rounds`` successes.

    The input set's configurations are mutated; the returned set shares
    them.  Validity is preserved by construction --
    :meth:`Configuration.add` re-checks link-disjointness on every move.
    """
    configs = [cfg for cfg in schedule if len(cfg) > 0]
    for _ in range(max_rounds):
        if len(configs) <= 1:
            break
        for victim in sorted(configs, key=len):
            others = [cfg for cfg in configs if cfg is not victim]
            if _try_dissolve(victim, others):
                configs.remove(victim)
                break
        else:
            break
    return ConfigurationSet(configs, scheduler=schedule.scheduler + "+repack")
