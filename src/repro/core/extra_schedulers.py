"""Ablation schedulers beyond the paper.

The paper's claim is that *any* reasonable off-line scheduler beats
dynamic control, and that ordering heuristics matter.  These extra
schedulers let the ablation bench quantify both claims against stronger
and weaker baselines:

``dsatur`` / ``largest_first``
    Classic graph-coloring orders via :func:`networkx.greedy_color`,
    applied to the conflict graph.  DSATUR is the textbook strong
    heuristic the paper's priority rule approximates.

``random_restart``
    The paper's greedy run on ``restarts`` random orders, keeping the
    best.  Quantifies how much of coloring's win is just "a better
    order exists".

``coloring_repack`` / ``combined_repack``
    The paper's algorithms followed by the local-search repacker of
    :mod:`repro.core.packing` -- a cheap post-optimisation the
    compile-time budget easily allows.

``longest_first`` / ``shortest_first``
    First-fit in path-length order, isolating the "long connections are
    hard to place" intuition inside the coloring priority.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.core.combined import combined_schedule
from repro.core.coloring import coloring_schedule
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.conflicts import build_conflict_graph
from repro.core.packing import first_fit, repack
from repro.core.paths import Connection
from repro.topology.base import Topology


def networkx_coloring_schedule(
    connections: Sequence[Connection],
    strategy: str = "DSATUR",
) -> ConfigurationSet:
    """Color the conflict graph with a networkx strategy.

    ``strategy`` is any :func:`networkx.greedy_color` strategy name;
    ``"DSATUR"`` maps to networkx's ``saturation_largest_first``.
    """
    nx_strategy = "saturation_largest_first" if strategy.upper() == "DSATUR" else strategy
    g = build_conflict_graph(connections)
    colors = nx.greedy_color(g, strategy=nx_strategy)
    ncolors = max(colors.values(), default=-1) + 1
    configs = [Configuration() for _ in range(ncolors)]
    for idx, color in sorted(colors.items()):
        configs[color].add(connections[idx])
    return ConfigurationSet(configs, scheduler=f"nx-{strategy.lower()}")


def dsatur_schedule(connections: Sequence[Connection]) -> ConfigurationSet:
    """DSATUR coloring of the conflict graph."""
    return networkx_coloring_schedule(connections, "DSATUR")


def largest_first_schedule(connections: Sequence[Connection]) -> ConfigurationSet:
    """Largest-degree-first coloring of the conflict graph."""
    return networkx_coloring_schedule(connections, "largest_first")


def random_restart_schedule(
    connections: Sequence[Connection],
    *,
    restarts: int = 20,
    seed: int = 0,
) -> ConfigurationSet:
    """Best of ``restarts`` random-order greedy runs."""
    rng = np.random.default_rng(seed)
    n = len(connections)
    best: ConfigurationSet | None = None
    for _ in range(max(restarts, 1)):
        order = rng.permutation(n)
        cand = first_fit(connections, order.tolist(), scheduler="random-restart")
        if best is None or cand.degree < best.degree:
            best = cand
    assert best is not None or n == 0
    return best if best is not None else ConfigurationSet([], scheduler="random-restart")


def longest_first_schedule(connections: Sequence[Connection]) -> ConfigurationSet:
    """First-fit, longest paths first."""
    order = sorted(range(len(connections)), key=lambda i: (-connections[i].num_links, i))
    return first_fit(connections, order, scheduler="longest-first")


def shortest_first_schedule(connections: Sequence[Connection]) -> ConfigurationSet:
    """First-fit, shortest paths first (a deliberately weak order)."""
    order = sorted(range(len(connections)), key=lambda i: (connections[i].num_links, i))
    return first_fit(connections, order, scheduler="shortest-first")


def coloring_repack_schedule(connections: Sequence[Connection]) -> ConfigurationSet:
    """Paper's coloring followed by local-search repacking."""
    return repack(coloring_schedule(connections))


def combined_repack_schedule(
    connections: Sequence[Connection],
    topology: Topology | None = None,
) -> ConfigurationSet:
    """Paper's combined algorithm followed by local-search repacking."""
    return repack(combined_schedule(connections, topology))
