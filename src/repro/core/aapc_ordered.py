"""The ordered-AAPC connection scheduling algorithm (paper Fig. 5).

For **dense** patterns the greedy and coloring heuristics can exceed the
multiplexing degree needed for full all-to-all personalized
communication (AAPC), which is absurd: any pattern embeds in AAPC.  The
ordered-AAPC algorithm guarantees the AAPC bound by construction:

1. take a *phased AAPC decomposition* of the topology -- a partition of
   all N(N-1) source/destination pairs into contention-free phases
   ``A_1 ... A_P`` (built once per topology by :mod:`repro.aapc.phases`);
2. rank each phase by the total link length of the requests that fall
   into it (``PhaseRank[k] += length(s_i, d_i)``) -- phases with higher
   utilisation are scheduled first, keeping dense groups intact;
3. reorder the request set phase-by-phase in rank order and run the
   greedy algorithm on the reordered set.

Because all requests inside one AAPC phase are mutually conflict-free,
greedy can never open more configurations than there are non-empty
phases, so the result is bounded by the AAPC phase count (~ N^3/8 = 64
configurations on the 8x8 torus).  For sparse patterns greedy often
merges several partially-filled phases, dropping below the bound.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.configuration import ConfigurationSet
from repro.core.packing import first_fit
from repro.core.paths import Connection
from repro.topology.base import Topology


def aapc_rank_order(
    connections: Sequence[Connection],
    phase_of: Mapping[tuple[int, int], int],
    *,
    with_runs: bool = False,
) -> list[int] | tuple[list[int], list[int]]:
    """Processing order per Fig. 5: phases by descending rank.

    ``phase_of`` maps every (src, dst) pair of the topology to its AAPC
    phase index.  Returns positions into ``connections``; with
    ``with_runs=True`` also returns the lengths of consecutive blocks of
    that order whose members are mutually link-disjoint -- exactly the
    precondition of ``first_fit``'s run-batched placement
    (:func:`repro.core.packing.first_fit`).  Blocks follow the phase
    boundaries (one AAPC phase is contention-free across *distinct*
    pairs), except that a repeated pair -- request sets are multisets --
    starts a new block, since duplicates share every link.

    Vectorized: per-phase ranks accumulate with one ``bincount`` and the
    (rank desc, phase asc, index asc) order is a single ``lexsort`` --
    the path lengths are small integers, so the float64 rank sums are
    exact and the order matches the tuple-sort formulation.
    """
    n = len(connections)
    if n == 0:
        return ([], []) if with_runs else []
    phases = np.fromiter((phase_of[c.pair] for c in connections), dtype=np.int64, count=n)
    lengths = np.fromiter((c.num_links for c in connections), dtype=np.float64, count=n)
    rank = np.bincount(phases, weights=lengths)
    # sort connections by (phase rank desc, phase id asc, index asc);
    # lexsort keys run least-significant first.
    order = np.lexsort((np.arange(n), phases, -rank[phases]))
    if not with_runs:
        return order.tolist()
    sorted_phases = phases[order]
    splits = np.nonzero(sorted_phases[1:] != sorted_phases[:-1])[0] + 1
    bounds = np.concatenate(([0], splits, [n]))
    pairs = [connections[i].pair for i in order]
    if len(set(pairs)) == n:
        return order.tolist(), np.diff(bounds).tolist()
    # A repeated pair breaks the phase's disjointness guarantee: split
    # its block greedily so no run sees the same pair twice.
    runs: list[int] = []
    for b0, b1 in zip(bounds[:-1], bounds[1:]):
        seen: set[tuple[int, int]] = set()
        run_start = int(b0)
        for i in range(int(b0), int(b1)):
            if pairs[i] in seen:
                runs.append(i - run_start)
                run_start = i
                seen = {pairs[i]}
            else:
                seen.add(pairs[i])
        runs.append(int(b1) - run_start)
    return order.tolist(), runs


def ordered_aapc_schedule(
    connections: Sequence[Connection],
    topology: Topology | None = None,
    phase_of: Mapping[tuple[int, int], int] | None = None,
    *,
    kernel: str | None = None,
) -> ConfigurationSet:
    """Schedule ``connections`` with the ordered-AAPC algorithm.

    Parameters
    ----------
    connections:
        Routed request set.
    topology:
        Needed (unless ``phase_of`` is given) to build/fetch the cached
        AAPC phase decomposition.
    phase_of:
        Pre-built pair -> phase map; overrides ``topology``.
    kernel:
        Placement-test implementation for the greedy pass
        (``"bitmask"``/``"set"``; ``None`` = process default).
    """
    if phase_of is None:
        if topology is None:
            raise ValueError("ordered_aapc_schedule needs a topology or a phase map")
        from repro.aapc.phases import aapc_phase_map

        phase_of = aapc_phase_map(topology)
    order, runs = aapc_rank_order(connections, phase_of, with_runs=True)
    num_links = topology.num_links if topology is not None else None
    result = first_fit(
        connections, order, scheduler="aapc", kernel=kernel,
        num_links=num_links, runs=runs,
    )
    return result
