"""Lower bounds on the multiplexing degree.

The scheduling heuristics are evaluated against each other in the paper;
for testing *our* implementations we additionally want certificates that
a schedule is not absurdly far from optimal.  Two cheap bounds:

**max link load** -- a directed link carries at most one connection per
time slot, so K >= max over links of the number of connections routed
through it.  Injection/ejection links make this at least the max
out-degree / in-degree of the pattern (the paper's "switch conflicts").

**clique bound** -- any set of pairwise-conflicting connections needs
pairwise-distinct slots.  Every link's user set is a clique, so the
clique bound dominates the link-load bound; we expose a heuristic
clique search (networkx) for small instances as an optional sharper
certificate.

Property tests assert ``bound <= scheduler degree`` for every scheduler
and ``scheduler degree <= |R|`` (trivial upper bound); table benches
report the bound next to the measured degrees.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.core.conflicts import build_conflict_graph, link_load
from repro.core.paths import Connection


def max_link_load_bound(connections: Sequence[Connection]) -> int:
    """K >= the maximum number of connections sharing one link."""
    if not connections:
        return 0
    return max(link_load(connections).values())


def clique_bound(connections: Sequence[Connection]) -> int:
    """A (heuristically found) clique size in the conflict graph.

    Uses :func:`networkx.algorithms.approximation.max_clique`; intended
    for small instances (tests, the Fig. 3 example), since the conflict
    graph of dense patterns is large.
    """
    if not connections:
        return 0
    g = build_conflict_graph(connections)
    clique = nx.algorithms.approximation.max_clique(g)
    return max(len(clique), 1)


def degree_lower_bound(connections: Sequence[Connection], *, use_clique: bool = False) -> int:
    """Best available lower bound on the multiplexing degree."""
    bound = max_link_load_bound(connections)
    if use_clique:
        bound = max(bound, clique_bound(connections))
    return bound
