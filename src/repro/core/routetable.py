"""Precomputed all-pairs route tables in flat numpy (CSR) form.

``Topology.route`` is a per-pair Python walk plus an LRU cache -- fine
when a sweep re-routes the paper's 4032 pairs, but at 16x16 and beyond
the big patterns route tens of thousands of pairs and the walk itself
becomes a visible slice of the compile profile.  A :class:`RouteTable`
computes every requested path in a handful of vectorized passes and
stores them as one flat ``links`` array with CSR offsets:

* ``path(i)`` / ``connections()`` reproduce the exact tuples
  ``Topology.route`` returns (the equivalence is pinned by
  ``tests/core/test_routetable.py`` across tie-break cases);
* the builder is fully vectorized for :class:`KAryNCube` substrates
  (signed offsets via per-dimension lookup tables, hop link ids via the
  ragged arange trick), with a generic per-pair fallback for any other
  topology.

The table deliberately stores *routes*, not policy: it is built from
the topology's own ``signed_offset`` tables, so a tie-break change
flows through automatically.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.paths import Connection
from repro.core.requests import Request
from repro.topology.base import Topology
from repro.topology.kary_ncube import KAryNCube

__all__ = ["RouteTable"]


def _ragged(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-element (segment index, position within segment) for ragged data."""
    total = int(counts.sum())
    starts = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    idx = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    return idx, np.arange(total, dtype=np.int64) - starts[idx]


class RouteTable:
    """All requested light paths as one flat CSR link array.

    Attributes
    ----------
    src, dst:
        ``(P,)`` endpoint vectors, in the order the pairs were given.
    indptr:
        ``(P + 1,)`` offsets; path ``i`` is ``links[indptr[i]:indptr[i+1]]``.
    links:
        Concatenated link ids (injection fiber first, ejection last).
    """

    def __init__(
        self,
        topology: Topology,
        src: np.ndarray,
        dst: np.ndarray,
        indptr: np.ndarray,
        links: np.ndarray,
    ) -> None:
        self.topology = topology
        self.src = src
        self.dst = dst
        self.indptr = indptr
        self.links = links

    def __len__(self) -> int:
        return len(self.src)

    def path(self, i: int) -> tuple[int, ...]:
        """Path of pair ``i``, identical to ``topology.route(src, dst)``."""
        return tuple(self.links[self.indptr[i]:self.indptr[i + 1]].tolist())

    def total_links(self) -> int:
        """Total link occupancy (sum of path lengths) over the table."""
        return int(len(self.links))

    def connections(
        self, requests: Sequence[Request] | None = None
    ) -> list[Connection]:
        """The table as routed :class:`Connection` objects.

        ``requests`` must align with the table's pairs (it defaults to
        bare unit-size requests).  This is the bulk replacement for
        :func:`repro.core.paths.route_requests` on large patterns.
        """
        if requests is None:
            requests = [
                Request(int(s), int(d)) for s, d in zip(self.src, self.dst)
            ]
        elif len(requests) != len(self):
            raise ValueError(
                f"{len(requests)} requests for a table of {len(self)} pairs"
            )
        flat = self.links.tolist()
        bounds = self.indptr.tolist()
        return [
            Connection(i, r, tuple(flat[bounds[i]:bounds[i + 1]]))
            for i, r in enumerate(requests)
        ]

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def all_pairs(cls, topology: Topology) -> "RouteTable":
        """Table of every ``src != dst`` pair, lexicographic order."""
        n = topology.num_nodes
        grid = np.arange(n)
        src = np.repeat(grid, n)
        dst = np.tile(grid, n)
        keep = src != dst
        return cls.for_pairs(topology, src[keep], dst[keep])

    @classmethod
    def for_pairs(
        cls,
        topology: Topology,
        src: Sequence[int] | np.ndarray,
        dst: Sequence[int] | np.ndarray,
    ) -> "RouteTable":
        """Table of the given pairs (vectorized on k-ary n-cubes)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be equal-length flat vectors")
        if len(src) and (src == dst).any():
            raise ValueError("self-pairs are not routed")
        if isinstance(topology, KAryNCube):
            indptr, links = _kary_routes(topology, src, dst)
        else:
            indptr, links = _generic_routes(topology, src, dst)
        return cls(topology, src, dst, indptr, links)


def _generic_routes(
    topology: Topology, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair fallback through ``Topology.route``."""
    paths = [topology.route(int(s), int(d)) for s, d in zip(src, dst)]
    lens = np.fromiter((len(p) for p in paths), dtype=np.int64, count=len(paths))
    indptr = np.zeros(len(paths) + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    links = np.fromiter(
        (l for p in paths for l in p), dtype=np.int32, count=int(indptr[-1])
    )
    return indptr, links


def _kary_routes(
    topology: KAryNCube, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized dimension-order routing over all pairs at once.

    Mirrors ``KAryNCube._transit_route`` exactly: per dimension, the
    signed offset comes from a precomputed ``k x k`` table of the
    topology's own ``signed_offset`` (so the tie-break policy is
    inherited, not re-derived), and hop ``j`` of dimension ``d`` leaves
    the node whose lower dimensions are already corrected and whose
    higher dimensions still hold the source coordinates.
    """
    dims = topology.dims
    ndims = len(dims)
    p = len(src)
    # per-dimension coordinates and signed offsets
    coords_s, coords_d, offs = [], [], []
    node_stride = 1
    for d, k in enumerate(dims):
        cs = (src // node_stride) % k
        cd = (dst // node_stride) % k
        table = np.array(
            [[topology.signed_offset(a, b, d) for b in range(k)] for a in range(k)],
            dtype=np.int64,
        )
        coords_s.append(cs)
        coords_d.append(cd)
        offs.append(table[cs, cd])
        node_stride *= k
    hop_lens = [np.abs(o) for o in offs]
    path_lens = 2 + sum(hop_lens)
    indptr = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(path_lens, out=indptr[1:])
    links = np.empty(int(indptr[-1]), dtype=np.int32)
    links[indptr[:-1]] = src  # injection fiber of the source
    links[indptr[1:] - 1] = topology.num_nodes + dst  # ejection fiber
    base = topology.transit_link_base
    # hop offset of each dimension within the path (after the injection
    # fiber and every lower dimension's hops)
    prev = np.ones(p, dtype=np.int64)
    node_stride = 1
    for d, k in enumerate(dims):
        hl = hop_lens[d]
        if int(hl.sum()):
            idx, j = _ragged(hl)
            sgn = np.sign(offs[d])[idx]
            cur = (coords_s[d][idx] + j * sgn) % k
            # node id while travelling dimension d: lower dims corrected,
            # higher dims still at the source
            node = (
                dst[idx] % node_stride
                + cur * node_stride
                + (src[idx] // (node_stride * k)) * (node_stride * k)
            )
            links[indptr[idx] + prev[idx] + j] = (
                base + node * 2 * ndims + 2 * d + (sgn < 0)
            )
        prev += hl
        node_stride *= k
    return indptr, links
