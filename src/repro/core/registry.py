"""Scheduler registry: name -> scheduler callable.

Every scheduler is normalised to the uniform signature

    ``schedule(connections, topology=None) -> ConfigurationSet``

so benches, the CLI and the compiler front-end can select algorithms by
name (``"greedy"``, ``"coloring"``, ``"aapc"``, ``"combined"``, plus the
ablation schedulers).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core import extra_schedulers as extra
from repro.core.aapc_ordered import ordered_aapc_schedule
from repro.core.combined import combined_schedule
from repro.core.coloring import coloring_schedule
from repro.core.configuration import ConfigurationSet
from repro.core.greedy import greedy_schedule
from repro.core.paths import Connection
from repro.topology.base import Topology

Scheduler = Callable[..., ConfigurationSet]


def _wrap_topology_free(fn: Callable[[Sequence[Connection]], ConfigurationSet]) -> Scheduler:
    def schedule(connections: Sequence[Connection], topology: Topology | None = None) -> ConfigurationSet:
        return fn(connections)

    schedule.__name__ = fn.__name__
    schedule.__doc__ = fn.__doc__
    return schedule


_REGISTRY: dict[str, Scheduler] = {
    # the paper's algorithms
    "greedy": _wrap_topology_free(greedy_schedule),
    "coloring": _wrap_topology_free(coloring_schedule),
    "aapc": ordered_aapc_schedule,
    "combined": combined_schedule,
    # ablations
    "coloring-ratio": _wrap_topology_free(
        lambda connections: coloring_schedule(connections, priority="paper-ratio")
    ),
    "dsatur": _wrap_topology_free(extra.dsatur_schedule),
    "largest-first": _wrap_topology_free(extra.largest_first_schedule),
    "random-restart": _wrap_topology_free(extra.random_restart_schedule),
    "longest-first": _wrap_topology_free(extra.longest_first_schedule),
    "shortest-first": _wrap_topology_free(extra.shortest_first_schedule),
    "coloring+repack": _wrap_topology_free(extra.coloring_repack_schedule),
    "combined+repack": extra.combined_repack_schedule,
}


def _exact_schedule_adapter(connections: Sequence[Connection]) -> ConfigurationSet:
    """Exact branch-and-bound (small instances only, <= 64 connections)."""
    from repro.core.exact import exact_schedule

    return exact_schedule(connections).schedule


_REGISTRY["exact"] = _wrap_topology_free(_exact_schedule_adapter)


def scheduler_names() -> list[str]:
    """All registered scheduler names (paper algorithms first)."""
    return list(_REGISTRY)


def get_scheduler(name: str) -> Scheduler:
    """Look up a scheduler by name.

    Raises ``KeyError`` with the list of valid names on a miss.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; choose one of {scheduler_names()}"
        ) from None
