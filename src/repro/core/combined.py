"""The combined scheduling algorithm (paper section 3.4, Tables 1-3).

Compiled communication runs off-line, so the compiler can afford to run
*both* the coloring algorithm (best on sparse patterns) and the
ordered-AAPC algorithm (best on dense patterns) and keep whichever
produced the smaller multiplexing degree.  This is the scheduler the
paper uses in the compiled-vs-dynamic simulation of section 4.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.aapc_ordered import ordered_aapc_schedule
from repro.core.coloring import coloring_schedule
from repro.core.configuration import ConfigurationSet
from repro.core.paths import Connection
from repro.topology.base import Topology


def combined_schedule(
    connections: Sequence[Connection],
    topology: Topology | None = None,
    phase_of: Mapping[tuple[int, int], int] | None = None,
    *,
    kernel: str | None = None,
) -> ConfigurationSet:
    """Best of :func:`coloring_schedule` and :func:`ordered_aapc_schedule`.

    Ties go to the coloring result (slightly cheaper to realise: its
    configurations tend to be front-loaded, but the choice does not
    affect the degree, which is all the evaluation measures).
    """
    by_color = coloring_schedule(connections, kernel=kernel)
    by_aapc = ordered_aapc_schedule(connections, topology, phase_of, kernel=kernel)
    winner = by_aapc if by_aapc.degree < by_color.degree else by_color
    return ConfigurationSet(list(winner), scheduler=f"combined({winner.scheduler})")
