"""The combined scheduling algorithm (paper section 3.4, Tables 1-3).

Compiled communication runs off-line, so the compiler can afford to run
*both* the coloring algorithm (best on sparse patterns) and the
ordered-AAPC algorithm (best on dense patterns) and keep whichever
produced the smaller multiplexing degree.  This is the scheduler the
paper uses in the compiled-vs-dynamic simulation of section 4.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.aapc_ordered import ordered_aapc_schedule
from repro.core.coloring import coloring_schedule
from repro.core.configuration import ConfigurationSet
from repro.core.paths import Connection
from repro.topology.base import Topology


#: Connection count above which the coloring pass is skipped.  The
#: conflict matrix costs ~n^2/8 bytes packed plus n^2 bytes unpacked
#: for the round walk (~16 GB at a 128k-connection 19x19 all-to-all),
#: and on patterns that dense the ordered-AAPC bound wins anyway -- so
#: past the ceiling "combined" degenerates to ordered-AAPC by design
#: rather than by OOM.
COLORING_CONNECTION_CEILING = 120_000


def combined_schedule(
    connections: Sequence[Connection],
    topology: Topology | None = None,
    phase_of: Mapping[tuple[int, int], int] | None = None,
    *,
    kernel: str | None = None,
    coloring_ceiling: int | None = COLORING_CONNECTION_CEILING,
) -> ConfigurationSet:
    """Best of :func:`coloring_schedule` and :func:`ordered_aapc_schedule`.

    Ties go to the coloring result (slightly cheaper to realise: its
    configurations tend to be front-loaded, but the choice does not
    affect the degree, which is all the evaluation measures).

    Above ``coloring_ceiling`` connections (``None`` disables the
    guard) only the ordered-AAPC pass runs -- see
    :data:`COLORING_CONNECTION_CEILING`.
    """
    if coloring_ceiling is not None and len(connections) > coloring_ceiling:
        by_aapc = ordered_aapc_schedule(connections, topology, phase_of, kernel=kernel)
        return ConfigurationSet(list(by_aapc), scheduler=f"combined({by_aapc.scheduler})")
    by_color = coloring_schedule(connections, kernel=kernel)
    by_aapc = ordered_aapc_schedule(connections, topology, phase_of, kernel=kernel)
    winner = by_aapc if by_aapc.degree < by_color.degree else by_color
    return ConfigurationSet(list(winner), scheduler=f"combined({winner.scheduler})")
