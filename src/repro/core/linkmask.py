"""Vectorized bitmask scheduling kernel.

The schedulers' hot path answers one question millions of times per
sweep: *does this connection's link set intersect that set of occupied
links?*  The reference implementation (``kernel="set"``) answers it
with hash-set ``isdisjoint`` per candidate configuration.  This module
answers it with bitmasks, in two complementary layouts:

**Link-indexed masks** (:func:`pack_masks`, :class:`Occupancy`)
    Each connection's link set packed into a fixed-width row of
    ``uint64`` words (one bit per topology link).  A configuration's
    occupancy is the OR of its members' rows, and a placement test
    against *every* configuration at once is a single vectorized AND of
    the candidate's row against the stacked occupancy matrix.  Used by
    best-fit packing and by repack's dissolution trials, where each
    query genuinely wants all configurations' answers.

**Slot-indexed masks** (:class:`SlotOccupancy`)
    The transposed layout: per *link*, a bitmask over *time slots*
    (bit ``j`` set iff some connection in configuration ``j`` uses the
    link).  A first-fit query ORs the candidate's few link masks and
    takes the lowest clear bit -- O(path length) word operations with
    no per-configuration loop at all.  Python's arbitrary-precision
    integers are the storage (a 128-slot frame is two machine words),
    which profiling showed beats a per-step numpy reduction: sequential
    first-fit issues one tiny query per connection, and numpy's
    per-call overhead (~2 us) exceeds the whole query's work.

**Slot-mask matrix** (:class:`SlotMatrix`)
    The slot-indexed layout again, but as a numpy ``(num_links, W)``
    uint64 matrix, for *batched* first-fit over runs of mutually
    link-disjoint candidates (AAPC phase blocks): one
    ``bitwise_or.reduceat`` computes every member's busy mask at once,
    amortising numpy's per-call overhead over the whole run.

**Conflict bit-matrix** (:class:`ConflictMatrix`)
    Per-link connection bitsets OR-reduced into an ``n x n`` packed
    adjacency matrix in a handful of numpy operations
    (``packbits`` + fancy-indexed ``bitwise_or.reduce``), replacing the
    per-node ``np.unique`` build that dominated coloring's profile.

Every kernel entry point is exercised by the equivalence property suite
(``tests/property/test_kernel_equivalence.py``): for any workload the
bitmask and set kernels must produce *identical* schedules, so the knob
(:func:`resolve_kernel`, default ``"bitmask"``) only ever changes speed.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import chain

import numpy as np

from repro.core import perf
from repro.core.paths import Connection

#: The two kernel implementations every threaded-through API accepts.
KERNELS = ("bitmask", "set")

_default_kernel = "bitmask"


def get_default_kernel() -> str:
    """The kernel used when callers pass ``kernel=None``."""
    return _default_kernel


def set_default_kernel(kernel: str) -> None:
    """Switch the process-wide default kernel (``"bitmask"`` or ``"set"``)."""
    global _default_kernel
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    _default_kernel = kernel


def resolve_kernel(kernel: str | None) -> str:
    """Validate a ``kernel=`` argument, mapping ``None`` to the default."""
    if kernel is None:
        return _default_kernel
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS} or None, got {kernel!r}")
    return kernel


def required_links(connections: Sequence[Connection]) -> int:
    """Smallest link-id space covering ``connections`` (0 when empty).

    Callers that know the topology should pass ``topology.num_links``
    instead; this is the fallback that keeps the kernel usable on a bare
    connection list.
    """
    return 1 + max((max(c.links) for c in connections if c.links), default=-1)


# ----------------------------------------------------------------------
# link-indexed masks
# ----------------------------------------------------------------------

def words_for(num_bits: int) -> int:
    """uint64 words needed for ``num_bits`` mask bits (min 1)."""
    return max(1, (num_bits + 63) // 64)


def pack_masks(connections: Sequence[Connection], num_links: int | None = None) -> np.ndarray:
    """Connection link sets as an ``(n, W)`` uint64 bit-row matrix.

    Bit ``k`` of word ``w`` of row ``i`` (little-endian within the row)
    is set iff connection ``i`` traverses link ``64*w + k``.
    """
    if num_links is None:
        num_links = required_links(connections)
    w = words_for(num_links)
    n = len(connections)
    dense = np.zeros((n, w * 64), dtype=bool)
    if n:
        lens = np.fromiter((len(c.links) for c in connections), dtype=np.intp, count=n)
        total = int(lens.sum())
        flat = np.fromiter(
            chain.from_iterable(c.links for c in connections), dtype=np.intp, count=total
        )
        dense[np.repeat(np.arange(n), lens), flat] = True
    return np.packbits(dense, axis=1, bitorder="little").view(np.uint64)


def mask_row(links: Iterable[int], num_links: int) -> np.ndarray:
    """A single ``(W,)`` uint64 mask row for one link set."""
    w = words_for(num_links)
    dense = np.zeros(w * 64, dtype=bool)
    dense[list(links)] = True
    return np.packbits(dense, bitorder="little").view(np.uint64)


class Occupancy:
    """Stacked per-configuration occupancy rows (link-indexed masks).

    Row ``j`` is the OR of the masks of configuration ``j``'s members;
    :meth:`fits` answers the placement test for *all* configurations in
    one vectorized AND.  Rows grow geometrically, so builders can open
    configurations freely.
    """

    def __init__(self, num_links: int, capacity: int = 8) -> None:
        self.words = words_for(num_links)
        self._rows = np.zeros((capacity, self.words), dtype=np.uint64)
        self.num_configs = 0

    def fits(self, mask: np.ndarray) -> np.ndarray:
        """Boolean vector: ``out[j]`` iff ``mask`` fits configuration ``j``."""
        perf.COUNTERS.fit_tests += self.num_configs
        occ = self._rows[: self.num_configs]
        return ~np.bitwise_and(occ, mask).any(axis=1)

    def place(self, mask: np.ndarray, config: int) -> None:
        """OR ``mask`` into row ``config`` (``config == num_configs`` opens one)."""
        if config == self.num_configs:
            if self.num_configs == len(self._rows):
                self._rows = np.vstack([self._rows, np.zeros_like(self._rows)])
            self._rows[config] = 0  # may hold stale bits after restore()
            self.num_configs += 1
        self._rows[config] |= mask

    def remove(self, mask: np.ndarray, config: int) -> None:
        """Clear ``mask``'s bits from row ``config``.

        Valid because a configuration's members are link-disjoint: every
        bit of ``mask`` is set by exactly one member, so XOR removes it.
        """
        self._rows[config] ^= mask

    def snapshot(self) -> np.ndarray:
        """Copy of the live rows (for all-or-nothing trial moves)."""
        return self._rows[: self.num_configs].copy()

    def restore(self, rows: np.ndarray) -> None:
        """Roll live rows back to a :meth:`snapshot` result."""
        self._rows[: len(rows)] = rows
        self.num_configs = len(rows)


# ----------------------------------------------------------------------
# slot-indexed masks
# ----------------------------------------------------------------------

class SlotOccupancy:
    """Per-link bitmasks over time slots -- the first-fit fast path.

    ``masks[l]`` has bit ``j`` set iff configuration ``j`` uses link
    ``l``.  The slots busy for a candidate are the OR of its links'
    masks; the first fit is the lowest clear bit.  Arbitrary-precision
    ints keep the frame width unbounded at word-op cost.
    """

    __slots__ = ("masks", "num_slots")

    def __init__(self, num_links: int) -> None:
        self.masks: list[int] = [0] * num_links
        self.num_slots = 0

    def first_fit_slot(self, links: tuple[int, ...]) -> int:
        """Lowest slot where every link is free (``num_slots`` = open new)."""
        perf.COUNTERS.fit_tests += self.num_slots
        busy = 0
        masks = self.masks
        for l in links:
            busy |= masks[l]
        free = ~busy & ((1 << self.num_slots) - 1)
        if free:
            return (free & -free).bit_length() - 1
        return self.num_slots

    def free_slots(self, links: tuple[int, ...], exclude: int = -1) -> int:
        """Bitmask of existing slots where every link is free."""
        perf.COUNTERS.fit_tests += self.num_slots
        busy = 0
        masks = self.masks
        for l in links:
            busy |= masks[l]
        free = ~busy & ((1 << self.num_slots) - 1)
        if exclude >= 0:
            free &= ~(1 << exclude)
        return free

    def place(self, links: tuple[int, ...], slot: int) -> None:
        """Mark ``links`` busy in ``slot`` (``slot == num_slots`` opens one)."""
        if slot == self.num_slots:
            self.num_slots += 1
        bit = 1 << slot
        masks = self.masks
        for l in links:
            masks[l] |= bit

    def remove(self, links: tuple[int, ...], slot: int) -> None:
        """Free ``links`` in ``slot`` (the connection must occupy it)."""
        clear = ~(1 << slot)
        masks = self.masks
        for l in links:
            masks[l] &= clear


def iter_bits(mask: int):
    """Indices of the set bits of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class SlotMatrix:
    """Per-link slot bitmasks as a ``(num_links, W)`` uint64 matrix.

    The numpy twin of :class:`SlotOccupancy`, for **batched** first-fit:
    where :class:`SlotOccupancy` answers one candidate's query at a time
    in Python ints, :class:`SlotMatrix` answers a whole *run* of
    mutually link-disjoint candidates in a handful of array operations
    (one gather + ``bitwise_or.reduceat`` for every member's busy mask,
    a vectorized lowest-clear-bit, one scattered ``bitwise_or.at``
    placement).  At 16x16 all-to-all scale this removes ~65k Python
    first-fit iterations from the ordered-AAPC hot path.

    Used through ``first_fit(..., runs=...)``
    (:mod:`repro.core.packing`), which states and verifies the
    precondition under which batching is byte-identical to the
    sequential kernel.
    """

    __slots__ = ("bits", "num_slots")

    def __init__(self, num_links: int) -> None:
        self.bits = np.zeros((num_links, 1), dtype=np.uint64)
        self.num_slots = 0

    def _ensure_slot_capacity(self, slots: int) -> None:
        have = self.bits.shape[1]
        need = words_for(slots)
        if need <= have:
            return
        grown = np.zeros((self.bits.shape[0], max(need, 2 * have)), dtype=np.uint64)
        grown[:, :have] = self.bits
        self.bits = grown

    def place_run(self, flat_links: np.ndarray, lens: np.ndarray) -> np.ndarray:
        """First-fit slots for one run of link-disjoint candidates.

        ``flat_links`` is the concatenation of the run members' link
        ids and ``lens`` the per-member path lengths.  Every member is
        assigned its lowest all-free slot; members fitting no existing
        slot share one freshly opened slot (legal precisely because the
        run is link-disjoint -- the caller must guarantee it).  Places
        the members and returns the slot vector.
        """
        m = len(lens)
        if m == 0:
            return np.zeros(0, dtype=np.int64)
        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(lens[:-1], out=starts[1:])
        busy = np.bitwise_or.reduceat(self.bits[flat_links], starts, axis=0)
        free = ~busy
        nbits = self.num_slots
        word = nbits >> 6
        if word < free.shape[1]:
            free[:, word] &= np.uint64((1 << (nbits & 63)) - 1)
            free[:, word + 1:] = 0
        perf.COUNTERS.fit_tests += m * nbits
        nz = free != 0
        fits = nz.any(axis=1)
        w_idx = np.argmax(nz, axis=1)
        lowest = free[np.arange(m), w_idx]
        lowest &= ~lowest + np.uint64(1)  # isolate the lowest set bit
        # log2 of a power of two <= 2**63 is exact in float64.
        bitpos = np.log2(
            lowest.astype(np.float64), where=fits, out=np.zeros(m)
        ).astype(np.int64)
        slots = w_idx.astype(np.int64) * 64 + bitpos
        slots[~fits] = nbits  # all non-fitters share one fresh slot
        grown = int(slots.max()) + 1
        if grown > nbits:
            self._ensure_slot_capacity(grown)
            self.num_slots = grown
        su = slots.astype(np.uint64)
        # Links are unique within a run (the members are disjoint), so
        # the (link, word) scatter targets are distinct and a plain
        # fancy-indexed OR-assign is safe -- no ``bitwise_or.at`` cost.
        self.bits[flat_links, np.repeat(slots >> 6, lens)] |= np.repeat(
            np.uint64(1) << (su & np.uint64(63)), lens
        )
        return slots


# ----------------------------------------------------------------------
# conflict bit-matrix
# ----------------------------------------------------------------------

def _popcount_rows(packed: np.ndarray) -> np.ndarray:
    """Per-row popcount of a packed uint8 matrix."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(packed).sum(axis=1, dtype=np.int64)
    return (
        np.unpackbits(packed, axis=1)
        .sum(axis=1, dtype=np.int64)
    )


class ConflictMatrix:
    """Packed conflict adjacency built with vectorized set operations.

    Two connections conflict iff they share a link, so row ``i`` of the
    matrix is the OR of the per-link connection bitsets over connection
    ``i``'s links.  The whole build is four numpy operations over a
    ``(num_links, n)`` boolean scatter -- no per-node ``np.unique``, no
    nested Python loops over link buckets.
    """

    def __init__(self, connections: Sequence[Connection], num_links: int | None = None) -> None:
        t0 = perf.perf_timer()
        n = len(connections)
        self.num_connections = n
        # Ragged paths, rectangular matrix: short paths are padded with
        # the sentinel link id ``num_links``, whose bucket row stays
        # all-zero so it is a no-op in both the scatter and the OR.
        lens = np.fromiter((len(c.links) for c in connections), dtype=np.intp, count=n)
        total = int(lens.sum()) if n else 0
        flat = np.fromiter(
            chain.from_iterable(c.links for c in connections), dtype=np.intp, count=total
        )
        max_len = int(lens.max()) if n else 0
        path_matrix = np.full((n, max(max_len, 1)), -1, dtype=np.intp)
        rows = np.repeat(np.arange(n), lens)
        starts = np.concatenate(([0], np.cumsum(lens)[:-1])) if n else lens
        path_matrix[rows, np.arange(total) - starts[rows]] = flat
        if num_links is None:
            num_links = int(path_matrix.max()) + 1 if n else 0
        path_matrix[path_matrix < 0] = num_links
        member_bits = np.zeros((num_links + 1, n), dtype=bool)
        member_bits[path_matrix.ravel(), np.repeat(np.arange(n), path_matrix.shape[1])] = True
        member_bits[num_links, :] = False
        packed = np.packbits(member_bits, axis=1, bitorder="little")
        # OR the per-link bucket rows position by position: a handful of
        # flat (n, W) gathers beats one (n, max_len, W) gather + reduce
        # (half the memory traffic, no 3-D temporary).
        self.bits = packed[path_matrix[:, 0]].copy() if n else packed[:0]
        for k in range(1, path_matrix.shape[1]):
            np.bitwise_or(self.bits, packed[path_matrix[:, k]], out=self.bits)
        # A connection never conflicts with itself: clear the diagonal.
        idx = np.arange(n)
        self.bits[idx, idx >> 3] &= ~(np.uint8(1) << (idx & 7).astype(np.uint8))
        self._unpacked: np.ndarray | None = None
        perf.COUNTERS.adjacency_builds += 1
        perf.COUNTERS.adjacency_seconds += perf.perf_timer() - t0

    def degrees(self) -> np.ndarray:
        """Conflict-graph degree of every connection (int64 vector)."""
        return _popcount_rows(self.bits)

    def unpacked(self) -> np.ndarray:
        """The adjacency as a dense ``(n, n)`` 0/1 uint8 matrix (cached).

        Costs ``n**2`` bytes (16 MB at the 4032-connection stress case)
        but turns the coloring round walk's per-pick neighbourhood
        lookups into plain row views -- worth it for every workload this
        repo schedules.
        """
        if self._unpacked is None:
            self._unpacked = np.unpackbits(
                self.bits, axis=1, count=self.num_connections, bitorder="little"
            )
        return self._unpacked

    def neighbors(self, i: int) -> np.ndarray:
        """Sorted indices of the connections conflicting with ``i``."""
        row = np.unpackbits(self.bits[i], count=self.num_connections, bitorder="little")
        return np.nonzero(row)[0]

    def adjacency_arrays(self) -> list[np.ndarray]:
        """Adjacency as per-node sorted int32 arrays (reference format)."""
        return [self.neighbors(i).astype(np.int32) for i in range(self.num_connections)]
