"""Structural all-to-all scheduling -- the large-torus compile path.

The generic schedulers take a list of routed :class:`Connection`
objects.  For complete exchange that list has ``N(N-1)`` entries --
4032 on the paper's 8x8 torus, 16.7 million on a 64x64 torus, where
merely materialising the Python objects costs minutes and gigabytes
before a single placement test runs.  Compiled communication does not
need the objects: all-to-all is *structured*, and the product theorem
(:mod:`repro.aapc.product`) yields a provably contention-free phase for
every pair from two tiny per-ring tables.

:func:`all_to_all_fast_schedule` turns the product phase matrix into a
:class:`FastAllToAllSchedule` -- a dense ``slot_of[src, dst]`` matrix
with phases ranked exactly like the ordered-AAPC scheduler ranks them
(total routed link length, descending; paper Fig. 5) -- entirely in
vectorized numpy.  A 64x64 all-to-all "compiles" in roughly a second;
the 8x8 case reproduces the optimal 64-slot Latin product the generic
path finds, which :meth:`FastAllToAllSchedule.materialize` cross-checks
against the real :class:`ConfigurationSet` machinery at small sizes.

:func:`all_to_all_schedule` is the scheduler-aware dispatcher the bench
harness drives: below a materialisation ceiling it routes the pattern
(via the vectorized :class:`~repro.core.routetable.RouteTable`) and
runs the requested generic scheduler; above it, the structural path is
the only feasible compile and "combined" degenerates to it by design
(the same honesty as the coloring ceiling in
:mod:`repro.core.combined` -- the tag says so).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aapc.product import product_decomposition
from repro.aapc.ring_latin import ring_link_load
from repro.core import perf
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.paths import Connection
from repro.topology.base import Topology
from repro.topology.kary_ncube import KAryNCube

__all__ = [
    "FastAllToAllSchedule",
    "all_to_all_lower_bound",
    "all_to_all_fast_schedule",
    "all_to_all_schedule",
    "MATERIALIZE_CEILING",
]

#: Largest all-to-all connection count the dispatcher will materialise
#: as Connection objects for the generic schedulers.  Above this the
#: structural product path is the only feasible compile (the 32x32
#: pattern is ~1M connections; object routing alone takes ~a minute).
MATERIALIZE_CEILING = 150_000


def all_to_all_lower_bound(topology: KAryNCube) -> int:
    """Closed-form lower bound on any all-to-all TDM schedule.

    The max of the injection bound (every source must emit ``N - 1``
    messages one slot each) and, per dimension, the fiber-load bound:
    each of the ``N / k`` rings of radix ``k`` in dimension ``d`` sees
    the full all-pairs ring load on its busiest fiber once per choice
    of the other coordinates, giving ``(N / k) * ring_link_load(k)``
    slots.  On the paper's 8x8 torus this is ``max(63, 64, 64) = 64``
    -- the known optimum.
    """
    n = topology.num_nodes
    bound = n - 1
    for k in topology.dims:
        bound = max(bound, (n // k) * ring_link_load(k))
    return bound


@dataclass
class FastAllToAllSchedule:
    """A complete-exchange schedule in dense matrix form.

    ``slot_of[s, d]`` is the time slot of connection ``s -> d`` (``-1``
    on the diagonal); ``degree`` the multiplexing degree.  Equivalent
    to a :class:`ConfigurationSet` over the all-pairs connection list,
    without materialising the list -- :meth:`materialize` builds the
    real thing for cross-validation at small sizes.
    """

    topology_signature: str
    num_nodes: int
    num_connections: int
    degree: int
    lower_bound: int
    scheduler: str
    seconds: float
    slot_of: np.ndarray = field(repr=False)
    slot_sizes: np.ndarray = field(repr=False)

    @property
    def optimality_ratio(self) -> float:
        """``degree / lower_bound`` -- 1.0 means provably optimal."""
        return self.degree / self.lower_bound if self.lower_bound else 0.0

    @property
    def throughput(self) -> float:
        """Connections scheduled per second of compile time."""
        return self.num_connections / self.seconds if self.seconds > 0 else 0.0

    def materialize(self, topology: Topology) -> tuple[list[Connection], ConfigurationSet]:
        """Route every pair and expand into a real ConfigurationSet.

        Intended for validation at small ``N`` (it is exactly the
        object materialisation the fast path exists to avoid):
        ``schedule.validate(connections)`` then re-proves contention-
        freeness and coverage from scratch.
        """
        from repro.aapc.bounds import all_pairs_requests
        from repro.core.routetable import RouteTable

        table = RouteTable.all_pairs(topology)
        connections = table.connections(all_pairs_requests(topology))
        buckets: list[list[Connection]] = [[] for _ in range(self.degree)]
        slots = self.slot_of[table.src, table.dst]
        for c, slot in zip(connections, slots.tolist()):
            buckets[slot].append(c)
        return connections, ConfigurationSet(
            [Configuration._trusted(b) for b in buckets], scheduler=self.scheduler
        )


def all_to_all_fast_schedule(topology: KAryNCube) -> FastAllToAllSchedule:
    """Schedule complete exchange structurally (no connection objects).

    Phases come from the product decomposition; slots are the phases
    re-ranked by total routed link length, descending (ties by phase
    id), matching the ordered-AAPC rank order so the dense groups land
    in the early slots.
    """
    t0 = perf.perf_timer()
    dec = product_decomposition(topology)
    phase = dec.phase_matrix
    n = topology.num_nodes
    # total routed length per pair: inject + eject + per-dimension hops
    lengths = np.full((n, n), 2, dtype=np.int32)
    ids = np.arange(n)
    node_stride = 1
    for d, k in enumerate(topology.dims):
        coord = (ids // node_stride) % k
        table = np.array(
            [
                [abs(topology.signed_offset(a, b, d)) for b in range(k)]
                for a in range(k)
            ],
            dtype=np.int32,
        )
        lengths += table[coord[:, None], coord[None, :]]
        node_stride *= k
    mask = phase >= 0
    rank = np.bincount(
        phase[mask], weights=lengths[mask].astype(np.float64),
        minlength=dec.num_phases,
    )
    order = np.lexsort((np.arange(dec.num_phases), -rank))
    slot_index = np.empty(dec.num_phases, dtype=np.int32)
    slot_index[order] = np.arange(dec.num_phases, dtype=np.int32)
    slot_of = slot_index[np.maximum(phase, 0)]
    np.fill_diagonal(slot_of, -1)
    sizes = np.zeros(dec.num_phases, dtype=np.int64)
    sizes[slot_index] = dec.phase_counts
    seconds = perf.perf_timer() - t0
    perf.COUNTERS.fastpath_builds += 1
    perf.COUNTERS.fastpath_seconds += seconds
    return FastAllToAllSchedule(
        topology_signature=topology.signature,
        num_nodes=n,
        num_connections=n * (n - 1),
        degree=dec.num_phases,
        lower_bound=all_to_all_lower_bound(topology),
        scheduler=f"fastpath[{dec.kind}]",
        seconds=seconds,
        slot_of=slot_of,
        slot_sizes=sizes,
    )


def all_to_all_schedule(
    topology: KAryNCube,
    *,
    scheduler: str = "combined",
    kernel: str | None = None,
    materialize_ceiling: int | None = MATERIALIZE_CEILING,
) -> ConfigurationSet | FastAllToAllSchedule:
    """Compile all-to-all with the requested scheduler, scale permitting.

    ``scheduler`` is one of ``"greedy"``, ``"coloring"``, ``"aapc"``,
    ``"combined"`` or ``"fastpath"``.  Below ``materialize_ceiling``
    connections the pattern is routed through the vectorized
    :class:`~repro.core.routetable.RouteTable` and handed to the
    generic scheduler, returning an ordinary
    :class:`ConfigurationSet`.  ``"fastpath"`` -- and any scheduler
    above the ceiling, where object materialisation stops being a
    compile path -- returns the structural
    :class:`FastAllToAllSchedule` instead, with the degeneration
    recorded in the scheduler tag (``combined(fastpath[...])``).
    """
    known = ("greedy", "coloring", "aapc", "combined", "fastpath")
    if scheduler not in known:
        raise ValueError(f"scheduler must be one of {known}, got {scheduler!r}")
    n = topology.num_nodes
    num_connections = n * (n - 1)
    if scheduler == "fastpath":
        return all_to_all_fast_schedule(topology)
    if materialize_ceiling is not None and num_connections > materialize_ceiling:
        fast = all_to_all_fast_schedule(topology)
        fast.scheduler = f"{scheduler}({fast.scheduler})"
        return fast
    from repro.aapc.bounds import all_pairs_requests
    from repro.core.coloring import coloring_schedule
    from repro.core.combined import combined_schedule
    from repro.core.greedy import greedy_schedule
    from repro.core.aapc_ordered import ordered_aapc_schedule
    from repro.core.routetable import RouteTable

    table = RouteTable.all_pairs(topology)
    connections = table.connections(all_pairs_requests(topology))
    if scheduler == "greedy":
        return greedy_schedule(connections, kernel=kernel)
    if scheduler == "coloring":
        return coloring_schedule(connections, kernel=kernel)
    if scheduler == "aapc":
        return ordered_aapc_schedule(connections, topology, kernel=kernel)
    return combined_schedule(connections, topology, kernel=kernel)
