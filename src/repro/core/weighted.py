"""Size-aware (weighted) TDM schedules -- an extension beyond the paper.

The paper's schedulers minimise the multiplexing degree K and give every
connection exactly one slot per frame.  When message sizes are skewed
that is wasteful: a 256-element transfer shares the frame evenly with a
1-element transfer, so the big message's completion time is
``K * chunks`` while small messages idle their slots after finishing.

The classic fix, implemented here, is **configuration replication**: the
frame cycles through the base configurations ``C_1..C_K`` with
*multiplicities* ``r_1..r_K``, so every connection in ``C_i`` gets
``r_i`` slots per frame of length ``F = sum(r)``.  A connection needing
``n`` chunks then finishes in roughly ``F * n / r_i`` slots.  Validity
is free: each frame slot still holds one conflict-free configuration.

Multiplicities are chosen by greedy bottleneck relief: start uniform,
repeatedly give one more slot to the configuration whose connections
dominate the analytic makespan, as long as that lowers it and the frame
stays within ``max_frame``.  Slots are laid out by deficit round-robin
so a configuration's ``r_i`` slots spread evenly through the frame
(bunched slots would recreate the long-gap problem).

``benchmarks/bench_extensions.py`` quantifies the win on skewed
redistributions; for uniform sizes the optimiser leaves the schedule
untouched (multiplicities all 1), so this strictly generalises the
paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import ConfigurationSet
from repro.core.paths import Connection


@dataclass
class WeightedSchedule:
    """A TDM frame with per-configuration multiplicities.

    ``frame[t]`` is the base-configuration index active in slot ``t``;
    the frame repeats with period ``len(frame)``.
    """

    base: ConfigurationSet
    frame: list[int]

    @property
    def frame_length(self) -> int:
        """Slots per frame (the effective multiplexing degree)."""
        return len(self.frame)

    @property
    def multiplicities(self) -> list[int]:
        """Slots per frame owned by each base configuration."""
        counts = [0] * self.base.degree
        for idx in self.frame:
            counts[idx] += 1
        return counts

    def slots_of(self, config_index: int) -> list[int]:
        """Frame positions at which ``config_index`` is active."""
        return [t for t, idx in enumerate(self.frame) if idx == config_index]

    def validate(self, connections: list[Connection]) -> None:
        """Base schedule valid + every configuration appears in the frame."""
        self.base.validate(connections)
        present = set(self.frame)
        if present != set(range(self.base.degree)):
            missing = sorted(set(range(self.base.degree)) - present)
            raise AssertionError(f"configurations {missing} never get a slot")


def _deficit_round_robin(multiplicities: list[int]) -> list[int]:
    """Spread each configuration's slots evenly through the frame.

    Classic deficit scheduling: every slot, credit each configuration
    by its rate and emit the one with the largest accumulated credit.
    """
    total = sum(multiplicities)
    credit = [0.0] * len(multiplicities)
    frame: list[int] = []
    for _ in range(total):
        for i, r in enumerate(multiplicities):
            credit[i] += r / total
        winner = max(range(len(multiplicities)), key=lambda i: credit[i])
        credit[winner] -= 1.0
        frame.append(winner)
    return frame


def _config_chunks(schedule: ConfigurationSet, slot_payload: int) -> list[int]:
    """Max transfer chunks over each configuration's members."""
    out = []
    for cfg in schedule:
        out.append(max(
            (-(-c.request.size // slot_payload) for c in cfg), default=1
        ))
    return out


def _makespan_estimate(chunks: list[int], mult: list[int]) -> float:
    """Analytic frame-relative makespan: max_i chunks_i * F / r_i."""
    total = sum(mult)
    return max(c * total / r for c, r in zip(chunks, mult))


def weighted_schedule(
    schedule: ConfigurationSet,
    *,
    slot_payload: int = 4,
    max_frame: int | None = None,
) -> WeightedSchedule:
    """Replicate configurations to balance completion times.

    Parameters
    ----------
    schedule:
        A valid base schedule (any paper scheduler's output).
    slot_payload:
        Elements per owned slot (must match the simulator's).
    max_frame:
        Frame-length cap; defaults to ``4 * K``.  Hardware registers are
        finite, so unbounded replication is not realistic.

    Returns a :class:`WeightedSchedule`; with uniform message sizes the
    frame degenerates to the base schedule's K slots.
    """
    degree = schedule.degree
    if degree == 0:
        return WeightedSchedule(base=schedule, frame=[])
    cap = max_frame if max_frame is not None else 4 * degree
    if cap < degree:
        raise ValueError(f"max_frame={cap} cannot hold all {degree} configurations")

    chunks = _config_chunks(schedule, slot_payload)
    total_chunks = sum(chunks)
    best_mult = [1] * degree
    best = _makespan_estimate(chunks, best_mult)
    # For every candidate frame length, allocate slots proportionally to
    # each configuration's transfer demand (min 1), hand leftovers to
    # the running bottleneck, and keep the best frame overall.
    for frame_len in range(degree, cap + 1):
        mult = [max(1, (c * frame_len) // total_chunks) for c in chunks]
        spare = frame_len - sum(mult)
        if spare < 0:
            continue
        for _ in range(spare):
            bottleneck = max(range(degree), key=lambda i: chunks[i] / mult[i])
            mult[bottleneck] += 1
        estimate = _makespan_estimate(chunks, mult)
        if estimate < best:
            best_mult, best = mult, estimate
    return WeightedSchedule(base=schedule, frame=_deficit_round_robin(best_mult))


def simulate_weighted(
    weighted: WeightedSchedule,
    *,
    slot_payload: int = 4,
    startup: int = 0,
) -> int:
    """Slot-stepped makespan of a weighted schedule.

    Walks the repeating frame; every active configuration's connections
    move ``slot_payload`` elements per owned slot.  Returns the slot at
    which the last message completes.
    """
    remaining: dict[int, int] = {}
    config_of: dict[int, int] = {}
    for idx, cfg in enumerate(weighted.base):
        for c in cfg:
            remaining[c.index] = c.request.size
            config_of[c.index] = idx
    if not remaining:
        return startup
    frame = weighted.frame
    period = len(frame)
    t = startup
    completion = startup
    active_by_config: dict[int, list[int]] = {}
    for mid, idx in config_of.items():
        active_by_config.setdefault(idx, []).append(mid)
    while remaining:
        cfg_idx = frame[(t - startup) % period]
        for mid in active_by_config.get(cfg_idx, []):
            if mid in remaining:
                remaining[mid] -= slot_payload
                if remaining[mid] <= 0:
                    del remaining[mid]
                    completion = max(completion, t + 1)
        t += 1
        if t - startup > 10_000_000:
            raise RuntimeError("weighted simulation runaway")
    return completion
