"""Routed connections.

A :class:`Connection` binds a request to its light path on a concrete
topology.  Because all-optical circuit switching holds the *entire*
path for a time slot, the path's link set is the only thing the
schedulers need: two connections conflict iff the sets intersect.

Routes are computed once by :func:`route_requests`; every scheduler then
works on the same immutable list, which keeps algorithm comparisons
apples-to-apples and makes the routing policy an explicit experimental
knob of the topology rather than of the scheduler.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.requests import Request, RequestSet
from repro.topology.base import Topology


class Connection:
    """A routed connection request.

    Attributes
    ----------
    index:
        Stable position of this connection in the routed set; used as
        the node id in conflict graphs and as the key of slot maps.
    request:
        The originating :class:`~repro.core.requests.Request`.
    links:
        The light path as an ordered tuple of link ids (injection fiber
        first, ejection fiber last).
    link_set:
        ``frozenset(links)``; the conflict footprint.
    """

    __slots__ = ("index", "request", "links", "_link_set")

    def __init__(self, index: int, request: Request, links: tuple[int, ...]) -> None:
        self.index = index
        self.request = request
        self.links = links
        self._link_set = None

    @property
    def link_set(self) -> frozenset[int]:
        # Built on first use: the bitmask kernel never needs the
        # frozenset, so eager construction would tax every routed
        # connection for the set kernel's benefit.
        ls = self._link_set
        if ls is None:
            ls = self._link_set = frozenset(self.links)
        return ls

    @property
    def num_links(self) -> int:
        """Path length in links -- the paper's "number of links in the
        connection" (coloring priority numerator, AAPC phase rank
        summand)."""
        return len(self.links)

    @property
    def pair(self) -> tuple[int, int]:
        return self.request.pair

    def conflicts_with(self, other: "Connection") -> bool:
        """True iff the two connections cannot share a time slot."""
        return not self.link_set.isdisjoint(other.link_set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Connection #{self.index} {self.request} len={self.num_links}>"


def route_requests(
    topology: Topology,
    requests: RequestSet | Sequence[Request],
) -> list[Connection]:
    """Route every request on ``topology``.

    Returns connections in request order with ``index`` equal to the
    request's position.  Raises
    :class:`~repro.topology.base.RoutingError` for invalid endpoints.
    """
    return [
        Connection(i, r, topology.route(r.src, r.dst))
        for i, r in enumerate(requests)
    ]
