"""Compile-time protection: k=1 fault-tolerant schedules.

The paper's premise is that connection scheduling moves **off-line**.
PR 2's fault story undercut that: a mid-run fiber cut sends the
compiled model back to the scheduler at run time, stalling every node
for ``recompile_latency`` slots -- exactly the run-time control
overhead compiled communication exists to eliminate.  Since the
pattern is static, the compiler can instead enumerate fault scenarios
ahead of time: for every single transit-fiber failure it emits a
**backup configuration set**, so failover at run time is a bounded
TDM-frame swap (reload the pre-distributed register images, resume
``failover_latency`` slots later) with zero recompilation.

For each scenario (one failed transit link ``L``):

1. the **affected** connections -- those whose light path crosses
   ``L`` -- are re-routed over a detour on the faulted topology
   (:class:`~repro.topology.faults.FaultyTopology` routing: alternate
   dimension orders, then BFS);
2. each detour is packed back into the schedule, *preferring
   degree-preserving repairs*: the connection's own slot first, then
   any existing configuration with enough spare links;
3. detours that fit nowhere go into appended **backup frames**; the
   number of extra frames is the scenario's ``delta_k`` protection
   overhead (the quantity the overhead report tabulates, analogous to
   the paper's Tables 1-3 degree comparisons);
4. a scenario whose detour does not exist (the fault partitions an
   endpoint pair) is **uncovered**: run time must fall back to
   reactive recompilation for it.

Backup plans are *deltas* against the base schedule (moves + extra
frames), so a :class:`ProtectedSchedule` for the 8x8 torus all-to-all
(256 scenarios over a K=64 schedule) stays small; the full backup
:class:`~repro.core.configuration.ConfigurationSet` of any scenario is
materialised on demand and every placement is conflict-checked at
construction time, so an illegal backup state cannot be built.

Serialisation, content-addressed caching and canonicalization of
protection artifacts live in :mod:`repro.service.protect`; the
run-time consumer is ``simulate_compiled_faulty(...,
recovery="protected")``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core import perf
from repro.core.configuration import (
    Configuration,
    ConfigurationSet,
    ScheduleValidationError,
)
from repro.core.paths import Connection
from repro.topology.base import RoutingError, Topology
from repro.topology.links import LinkKind

#: Scenario classification (see :class:`ScenarioPlan.kind`).
PLAN_KINDS = ("unaffected", "repacked", "augmented", "uncovered")


@dataclass(frozen=True)
class ScenarioPlan:
    """The precomputed backup plan for one single-link fault scenario.

    Attributes
    ----------
    link:
        The transit fiber whose failure this plan protects against.
    kind:
        ``"unaffected"`` -- no scheduled connection crosses the fiber,
        the base schedule survives as-is; ``"repacked"`` -- every
        detour packed into the existing K configurations
        (degree-preserving repair, ``delta_k == 0``); ``"augmented"``
        -- some detours needed appended backup frames; ``"uncovered"``
        -- at least one affected pair is partitioned by the fault and
        run time must recompile reactively.
    affected:
        Connection indices whose base route crosses ``link``.
    detours:
        ``index -> full detour light path`` on the faulted topology
        (injection fiber first, ejection fiber last, never ``link``).
    placements:
        ``index -> backup slot``.  Slots ``>= K`` are backup frames.
    delta_k:
        Backup frames appended (the scenario's protection overhead).
    reason:
        Human-readable cause for an uncovered scenario, else ``None``.
    """

    link: int
    kind: str
    affected: tuple[int, ...] = ()
    detours: Mapping[int, tuple[int, ...]] = field(default_factory=dict)
    placements: Mapping[int, int] = field(default_factory=dict)
    delta_k: int = 0
    reason: str | None = None

    @property
    def covered(self) -> bool:
        """True iff failover can swap to this plan without recompiling."""
        return self.kind != "uncovered"

    @property
    def degree_preserving(self) -> bool:
        """True iff the repair packed into the existing frame."""
        return self.covered and self.delta_k == 0


class ProtectionError(ValueError):
    """A protection plan is inconsistent with its base schedule."""


def _slot_candidates(preferred: int, degree: int) -> Iterable[int]:
    """Slot probe order: the connection's own slot, then the rest."""
    yield preferred
    for s in range(degree):
        if s != preferred:
            yield s


def _scenario_topology(topology: Topology, link: int):
    """The topology with ``link`` (additionally) failed, as a fresh wrapper."""
    from repro.topology.faults import FaultyTopology

    if isinstance(topology, FaultyTopology):
        return FaultyTopology(topology.base, set(topology.failed_links) | {link})
    return FaultyTopology(topology, {link})


def default_scenarios(topology: Topology) -> tuple[int, ...]:
    """Every failable transit fiber of ``topology`` (k=1 scenario set).

    For a :class:`~repro.topology.faults.FaultyTopology` the already
    failed fibers are excluded -- they cannot fail again.
    """
    failed = getattr(topology, "failed_links", frozenset())
    return tuple(
        link
        for link in range(topology.transit_link_base, topology.num_links)
        if link not in failed
    )


def plan_scenario(
    topology: Topology,
    connections: Sequence[Connection],
    schedule: ConfigurationSet,
    link: int,
) -> ScenarioPlan:
    """Backup plan for the failure of one transit fiber.

    Pure function of its arguments; ``schedule`` must be a valid
    configuration set over ``connections`` (indices are positions in
    the sequence).  Raises :class:`ProtectionError` if ``link`` is not
    a transit fiber.
    """
    if topology.link_info(link).kind is not LinkKind.TRANSIT:
        raise ProtectionError(
            f"only transit fibers have fault scenarios; link {link} "
            f"is {topology.link_info(link).kind.value}"
        )
    affected = tuple(
        c.index for c in connections if link in c.link_set
    )
    if not affected:
        return ScenarioPlan(link=link, kind="unaffected")

    ftopo = _scenario_topology(topology, link)
    detours: dict[int, tuple[int, ...]] = {}
    for i in affected:
        src, dst = connections[i].pair
        try:
            detours[i] = ftopo.route(src, dst)
        except RoutingError as exc:
            return ScenarioPlan(
                link=link, kind="uncovered", affected=affected,
                reason=f"connection {i} ({src}->{dst}): {exc}",
            )

    # Spare capacity of each existing configuration once the affected
    # members are pulled out.  Members of a configuration are mutually
    # link-disjoint, so removal is an exact set subtraction.
    slot_of = schedule.slot_map()
    slot_links = [set(cfg.used_links) for cfg in schedule]
    for i in affected:
        slot_links[slot_of[i]] -= connections[i].link_set

    degree = schedule.degree
    placements: dict[int, int] = {}
    extra: list[set[int]] = []
    # Longest detours first: they are the hardest to place, and a
    # deterministic order keeps the artifact digest stable.
    order = sorted(affected, key=lambda i: (-len(detours[i]), i))
    for i in order:
        dset = set(detours[i])
        for s in _slot_candidates(slot_of[i], degree):
            if slot_links[s].isdisjoint(dset):
                slot_links[s] |= dset
                placements[i] = s
                break
        else:
            for j, backup in enumerate(extra):
                if backup.isdisjoint(dset):
                    backup |= dset
                    placements[i] = degree + j
                    break
            else:
                extra.append(dset)
                placements[i] = degree + len(extra) - 1

    return ScenarioPlan(
        link=link,
        kind="repacked" if not extra else "augmented",
        affected=affected,
        detours=detours,
        placements=placements,
        delta_k=len(extra),
    )


class ProtectedSchedule:
    """A compiled schedule plus precomputed single-fault backup plans.

    The run-time contract: for any covered scenario ``L``, swapping to
    ``slot_map_for(L)`` / ``routes_for(L)`` at degree ``degree_for(L)``
    yields a conflict-free schedule of **every** connection on the
    topology with ``L`` removed.  Delivered messages simply leave their
    slots unused, so a failover is valid at any point of the run.
    """

    def __init__(
        self,
        topology: Topology,
        connections: Sequence[Connection],
        schedule: ConfigurationSet,
        plans: Mapping[int, ScenarioPlan],
    ) -> None:
        self.topology = topology
        self.connections = list(connections)
        self.schedule = schedule
        self.plans = dict(plans)
        self._base_slots = schedule.slot_map()

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        topology: Topology,
        connections: Sequence[Connection],
        schedule: ConfigurationSet,
        *,
        scenarios: Iterable[int] | None = None,
    ) -> "ProtectedSchedule":
        """Plan every scenario (default: all failable transit fibers)."""
        links = (
            tuple(scenarios) if scenarios is not None
            else default_scenarios(topology)
        )
        t0 = perf.perf_timer()
        plans = {
            link: plan_scenario(topology, connections, schedule, link)
            for link in links
        }
        perf.COUNTERS.protect_build_seconds += perf.perf_timer() - t0
        return cls(topology, connections, schedule, plans)

    # -- queries -----------------------------------------------------------
    @property
    def base_degree(self) -> int:
        return self.schedule.degree

    @property
    def scenarios(self) -> tuple[int, ...]:
        return tuple(sorted(self.plans))

    def plan(self, link: int) -> ScenarioPlan | None:
        return self.plans.get(link)

    def covers(self, link: int) -> bool:
        plan = self.plans.get(link)
        return plan is not None and plan.covered

    def base_slot_map(self) -> dict[int, int]:
        return dict(self._base_slots)

    def slot_map_for(self, link: int) -> dict[int, int]:
        """Connection index -> slot under the backup plan for ``link``."""
        plan = self._covered_plan(link)
        slots = dict(self._base_slots)
        slots.update(plan.placements)
        return slots

    def routes_for(self, link: int) -> dict[int, frozenset[int]]:
        """Connection index -> link set under the backup plan."""
        plan = self._covered_plan(link)
        routes = {c.index: c.link_set for c in self.connections}
        for i, path in plan.detours.items():
            routes[i] = frozenset(path)
        return routes

    def degree_for(self, link: int) -> int:
        return self.base_degree + self._covered_plan(link).delta_k

    def _covered_plan(self, link: int) -> ScenarioPlan:
        plan = self.plans.get(link)
        if plan is None:
            raise KeyError(f"no protection plan for link {link}")
        if not plan.covered:
            raise ProtectionError(
                f"scenario for link {link} is uncovered: {plan.reason}"
            )
        return plan

    # -- materialisation / validation --------------------------------------
    def backup_connections(self, link: int) -> list[Connection]:
        """The connection list with affected members on their detours."""
        plan = self._covered_plan(link)
        out = list(self.connections)
        for i, path in plan.detours.items():
            out[i] = Connection(i, self.connections[i].request, tuple(path))
        return out

    def backup_schedule(self, link: int) -> ConfigurationSet:
        """The full backup configuration set for scenario ``link``.

        Built with conflict-checked :meth:`Configuration.add`, so an
        inconsistent plan raises instead of materialising.
        """
        slots = self.slot_map_for(link)
        degree = self.degree_for(link)
        configs = [Configuration() for _ in range(degree)]
        try:
            for c in self.backup_connections(link):
                configs[slots[c.index]].add(c)
        except ScheduleValidationError as exc:
            raise ProtectionError(
                f"backup plan for link {link} is not conflict-free: {exc}"
            ) from exc
        return ConfigurationSet(
            configs, scheduler=f"{self.schedule.scheduler}+protect[{link}]"
        )

    def validate(self, *, scenarios: Iterable[int] | None = None) -> None:
        """Re-validate every covered scenario's backup schedule.

        Checks, per scenario: the detours avoid the failed fiber, the
        backup configuration set is conflict-free, and it covers every
        connection exactly once.  Raises :class:`ProtectionError` (or
        :class:`ScheduleValidationError`) on the first violation.
        """
        links = tuple(scenarios) if scenarios is not None else self.scenarios
        for link in links:
            plan = self.plans[link]
            if not plan.covered:
                continue
            for i, path in plan.detours.items():
                if link in path:
                    raise ProtectionError(
                        f"scenario {link}: detour of connection {i} "
                        "crosses the failed fiber"
                    )
            backup = self.backup_schedule(link)
            backup.validate(self.backup_connections(link))

    # -- reporting ---------------------------------------------------------
    def overhead_report(self) -> dict[str, object]:
        """Per-scenario ΔK overhead plus coverage summary.

        The ``rows`` list (one entry per scenario: failed link,
        classification, affected connection count, ΔK) is the
        protection analogue of the paper's degree tables; the summary
        keys feed the CLI and EXPERIMENTS.md.
        """
        rows = [
            {
                "link": link,
                "kind": plan.kind,
                "affected": len(plan.affected),
                "delta_k": plan.delta_k,
            }
            for link, plan in sorted(self.plans.items())
        ]
        covered = [p for p in self.plans.values() if p.covered]
        delta_ks = [p.delta_k for p in covered]
        return {
            "base_degree": self.base_degree,
            "scenarios": len(self.plans),
            "covered": len(covered),
            "uncovered": len(self.plans) - len(covered),
            "degree_preserving": sum(
                1 for p in covered if p.degree_preserving
            ),
            "max_delta_k": max(delta_ks, default=0),
            "mean_delta_k": (
                sum(delta_ks) / len(delta_ks) if delta_ks else 0.0
            ),
            "rows": rows,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProtectedSchedule K={self.base_degree} "
            f"scenarios={len(self.plans)}>"
        )


def build_protection(
    topology: Topology,
    connections: Sequence[Connection],
    schedule: ConfigurationSet,
    *,
    scenarios: Iterable[int] | None = None,
) -> ProtectedSchedule:
    """Convenience wrapper around :meth:`ProtectedSchedule.build`."""
    return ProtectedSchedule.build(
        topology, connections, schedule, scenarios=scenarios
    )
