"""Lightweight performance counters for the scheduling hot path.

A single process-global :class:`PerfCounters` instance (:data:`COUNTERS`)
is incremented by the scheduling kernel (fit tests, kernel wall time),
the route cache (hits/misses) and the conflict-structure builders.  The
counters answer the questions the performance work keeps asking --
*how many placement tests did this sweep run, did the route cache
actually help, where did the kernel time go* -- without a profiler run.

Counting is plain attribute arithmetic (no locks: the schedulers are
single-threaded per process, and the parallel sweep driver aggregates
per-worker snapshots explicitly), so the overhead is a few nanoseconds
per event and the counters can stay enabled unconditionally.

Usage::

    from repro.core import perf

    perf.reset()
    ... run a sweep ...
    print(perf.snapshot())     # plain dict, ready for JSON / tables
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from time import perf_counter as perf_timer  # re-export for the hot paths


@dataclass
class PerfCounters:
    """Counters accumulated across every scheduler call in the process."""

    #: placement (configuration-fits-connection) tests executed.
    fit_tests: int = 0
    #: first-fit/best-fit kernel invocations.
    kernel_calls: int = 0
    #: wall-clock seconds spent inside the packing kernel.
    kernel_seconds: float = 0.0
    #: structural all-to-all fast-path schedules built.
    fastpath_builds: int = 0
    #: wall-clock seconds spent in the structural fast path.
    fastpath_seconds: float = 0.0
    #: conflict-structure (adjacency) builds.
    adjacency_builds: int = 0
    #: wall-clock seconds spent building conflict structures.
    adjacency_seconds: float = 0.0
    #: topology route cache hits / misses.
    route_cache_hits: int = 0
    #: route computations that had to run the routing algorithm.
    route_cache_misses: int = 0
    #: compiled-artifact cache hits (memory or disk tier).
    artifact_cache_hits: int = 0
    #: artifact cache lookups that had to run a scheduler.
    artifact_cache_misses: int = 0
    #: artifacts written into the cache.
    artifact_cache_stores: int = 0
    #: memory-tier entries dropped by the LRU policy.
    artifact_cache_evictions: int = 0
    #: disk entries quarantined (corrupt, torn, or failed verification).
    artifact_cache_quarantined: int = 0
    #: torn writes detected and cleaned by the startup recovery scan.
    artifact_cache_recovered: int = 0
    #: served artifacts that failed the semantic conflict re-check.
    artifact_verify_failures: int = 0
    #: compile requests shed by server admission control.
    service_shed: int = 0
    #: server-side compiles cancelled by the request deadline.
    service_deadline_cancels: int = 0
    #: client request retries (after backoff).
    client_retries: int = 0
    #: client requests fast-failed by an open circuit breaker.
    client_breaker_rejections: int = 0
    #: closed -> open circuit-breaker transitions.
    client_breaker_trips: int = 0
    #: protected failovers executed (backup register-image swaps).
    protect_failovers: int = 0
    #: faults that hit an uncovered scenario (reactive recompile fallback).
    protect_uncovered: int = 0
    #: total backup frames (ΔK) activated across failovers.
    protect_delta_k: int = 0
    #: wall-clock seconds spent planning protection scenarios.
    protect_build_seconds: float = 0.0
    #: incremental amend updates applied (delta scheduler).
    amend_updates: int = 0
    #: wall-clock seconds spent applying amend updates.
    amend_seconds: float = 0.0
    #: amend updates escalated to a full first-fit recompile.
    amend_recompiles: int = 0
    #: amend updates followed by a fragmentation-triggered repack.
    amend_repacks: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, f.default)

    def snapshot(self) -> dict[str, float]:
        """Plain-dict copy of the raw counters plus derived rates."""
        out: dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        looked_up = self.route_cache_hits + self.route_cache_misses
        out["route_cache_hit_rate"] = (
            self.route_cache_hits / looked_up if looked_up else 0.0
        )
        out["fit_tests_per_second"] = (
            self.fit_tests / self.kernel_seconds if self.kernel_seconds > 0 else 0.0
        )
        compiles = self.artifact_cache_hits + self.artifact_cache_misses
        out["artifact_cache_hit_rate"] = (
            self.artifact_cache_hits / compiles if compiles else 0.0
        )
        return out

    def merge(self, other: "PerfCounters" | dict[str, float]) -> None:
        """Accumulate another counter set (used by the parallel driver)."""
        get = other.get if isinstance(other, dict) else lambda k, d=0: getattr(other, k, d)
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + get(f.name, 0))


#: The process-global counter instance every hot path increments.
COUNTERS = PerfCounters()


def reset() -> None:
    """Zero the global counters (start of a measured run)."""
    COUNTERS.reset()


def snapshot() -> dict[str, float]:
    """Dict snapshot of the global counters with derived rates."""
    return COUNTERS.snapshot()
