"""Off-line connection scheduling (the paper's core contribution).

Given a *static communication pattern* -- a multiset of connection
requests ``(src, dst)`` -- and a circuit-switched topology, the
schedulers in this package partition the requests into the smallest set
of **configurations** they can find.  A configuration is a set of
connections no two of which share a directed optical link; a set of K
configurations is realised by time-division multiplexing with
multiplexing degree K, so *minimising the number of configurations
minimises the communication time* of the compiled program.

The paper's three heuristics plus their combination:

================  ===========================================  ==========
scheduler          idea                                          paper
================  ===========================================  ==========
``greedy``         first-fit packing in request order            Fig. 2
``coloring``       conflict-graph coloring, priority-driven      Fig. 4
``aapc``           reorder by phased-AAPC phase rank + greedy    Fig. 5
``combined``       best of ``coloring`` and ``aapc``             sec. 3.4
================  ===========================================  ==========

plus ablation schedulers beyond the paper in
:mod:`repro.core.extra_schedulers`.  Use :func:`repro.core.registry.get_scheduler`
to obtain any of them by name.
"""

from repro.core.requests import Request, RequestSet
from repro.core.paths import Connection, route_requests
from repro.core.conflicts import conflict, build_conflict_graph, link_load
from repro.core.configuration import (
    Configuration,
    ConfigurationSet,
    ScheduleValidationError,
)
from repro.core.greedy import greedy_schedule
from repro.core.coloring import coloring_schedule
from repro.core.aapc_ordered import ordered_aapc_schedule
from repro.core.combined import combined_schedule
from repro.core.bounds import max_link_load_bound, degree_lower_bound
from repro.core.registry import get_scheduler, scheduler_names
from repro.core.delta import (
    AmendPolicy,
    AmendResult,
    DeltaScheduler,
    amend_schedule,
    fragmentation,
)
from repro.core.weighted import WeightedSchedule, weighted_schedule, simulate_weighted
from repro.core.protection import (
    ProtectedSchedule,
    ProtectionError,
    ScenarioPlan,
    build_protection,
)

__all__ = [
    "Request",
    "RequestSet",
    "Connection",
    "route_requests",
    "conflict",
    "build_conflict_graph",
    "link_load",
    "Configuration",
    "ConfigurationSet",
    "ScheduleValidationError",
    "greedy_schedule",
    "coloring_schedule",
    "ordered_aapc_schedule",
    "combined_schedule",
    "max_link_load_bound",
    "degree_lower_bound",
    "get_scheduler",
    "AmendPolicy",
    "AmendResult",
    "DeltaScheduler",
    "amend_schedule",
    "fragmentation",
    "WeightedSchedule",
    "weighted_schedule",
    "simulate_weighted",
    "scheduler_names",
    "ProtectedSchedule",
    "ProtectionError",
    "ScenarioPlan",
    "build_protection",
]
