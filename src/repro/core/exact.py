"""Exact (branch-and-bound) connection scheduling for small instances.

Optimal scheduling is NP-complete, but small instances -- the paper's
worked examples, unit-test fixtures, single switches' neighbourhoods --
admit exact solutions, which give the test suite *certified* optima to
hold the heuristics against (e.g. Fig. 3's optimum of 2 is proven here,
not assumed).

The solver is a classic DFS over connections in most-constrained-first
order, assigning each to a compatible existing configuration or (one
symmetric branch only) a fresh one, pruning when the configuration
count reaches the incumbent.  The incumbent starts from the coloring
heuristic, so the search only has to *prove* optimality when the
heuristic is already optimal.  A node budget keeps worst cases bounded;
the result says whether optimality was proven.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coloring import coloring_schedule
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.conflicts import adjacency
from repro.core.paths import Connection


@dataclass
class ExactResult:
    """Outcome of the exact search."""

    schedule: ConfigurationSet
    #: True iff the search space was exhausted: the degree is optimal.
    proven_optimal: bool
    nodes_explored: int


def exact_schedule(
    connections: list[Connection],
    *,
    max_nodes: int = 2_000_000,
) -> ExactResult:
    """Minimum-degree schedule by branch and bound.

    Raises ``ValueError`` for instances over 64 connections -- beyond
    that the search is hopeless and the caller wants a heuristic.
    """
    n = len(connections)
    if n > 64:
        raise ValueError(
            f"exact scheduling is for small instances (<= 64 connections), got {n}"
        )
    if n == 0:
        return ExactResult(ConfigurationSet([], scheduler="exact"), True, 0)

    incumbent = coloring_schedule(connections)
    best_degree = incumbent.degree
    best_slots: list[int] | None = [0] * n
    slot_map = incumbent.slot_map()
    for i in range(n):
        best_slots[i] = slot_map[i]

    # Most-constrained-first order tightens pruning early.
    adj = adjacency(connections)
    order = sorted(range(n), key=lambda i: (-len(adj[i]), i))

    link_sets = [connections[i].link_set for i in range(n)]
    assigned: list[int] = [-1] * n  # slot per connection (search state)
    config_links: list[set[int]] = []
    nodes = 0
    exhausted = True

    def dfs(pos: int) -> None:
        nonlocal nodes, best_degree, best_slots, exhausted
        if nodes >= max_nodes:
            exhausted = False
            return
        nodes += 1
        if pos == n:
            # Guard: an in-flight branch opened before the incumbent
            # improved may complete with >= best_degree configurations.
            if len(config_links) < best_degree:
                best_degree = len(config_links)
                best_slots = [assigned[i] for i in range(n)]
            return
        if len(config_links) >= best_degree:
            # This branch can only tie or exceed the incumbent.
            return
        i = order[pos]
        for slot, used in enumerate(config_links):
            if used.isdisjoint(link_sets[i]):
                assigned[i] = slot
                used |= link_sets[i]
                dfs(pos + 1)
                used -= link_sets[i]
                assigned[i] = -1
                if nodes >= max_nodes:
                    return
        # One symmetric "open a new configuration" branch.
        if len(config_links) + 1 < best_degree:
            assigned[i] = len(config_links)
            config_links.append(set(link_sets[i]))
            dfs(pos + 1)
            config_links.pop()
            assigned[i] = -1

    dfs(0)

    configs = [Configuration() for _ in range(best_degree)]
    for i, slot in enumerate(best_slots):  # type: ignore[arg-type]
        configs[slot].add(connections[i])
    schedule = ConfigurationSet(
        [c for c in configs if len(c)], scheduler="exact"
    )
    return ExactResult(
        schedule=schedule, proven_optimal=exhausted, nodes_explored=nodes
    )


def certified_optimal_degree(
    connections: list[Connection], *, max_nodes: int = 2_000_000
) -> tuple[int, bool]:
    """(best degree found, whether it is proven optimal)."""
    result = exact_schedule(connections, max_nodes=max_nodes)
    return result.schedule.degree, result.proven_optimal
