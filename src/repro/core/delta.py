"""Delta scheduling: amend an existing schedule instead of recompiling.

The paper compiles one static pattern per phase; a long-running network
absorbs a *rolling* request stream.  This module adds and removes a
handful of connections against an existing :class:`ConfigurationSet` by
local repair, so the amortized cost per update is ~O(update size), not
O(pattern size):

* **removals** free their slots in place (bitmask clears, emptied slots
  compacted by swapping the last slot in);
* **additions** pack first-fit into the freed slack using the
  slot-indexed bitmask kernel (:class:`repro.core.linkmask.SlotOccupancy`),
  opening at most :attr:`AmendPolicy.max_delta_k` fresh slots per update;
* a **cost model** escalates: a large update (relative to the pattern)
  goes straight to a full recompile; enough accumulated churn holes
  (with K above the link-load bound) trigger a partial recompaction
  (:func:`repro.core.packing.repack`); and a drift guard bounds how far
  an amended K may sit above the link-load lower bound, recompiling
  when local repair has drifted.

The drift guard is what makes the headline invariant *provable* rather
than empirical.  L, the max per-link load, is a degree lower bound for
*any* scheduler (a valid schedule uses each link at most once per slot,
so a link's load is the popcount of its slot mask); it is maintained
incrementally under adds/removes and answered in O(1).  A scheduler may
still pack intrinsically looser than L (long-route patterns like a
hypercube embedded in a torus), so the engine **certifies** the gap
``K - L`` at every full placement and the guard recompiles only when
the live gap exceeds the certified one by more than
``recompile_slack``.  Since ``L <= K_ff`` always, every amend satisfies

    ``degree <= first_fit(connections).degree
                + certified_gap + recompile_slack``

(the hypothesis suite asserts it), which collapses to the headline
``K <= K_ff + recompile_slack`` whenever the scheduler packs tight
(``certified_gap == 0``) -- and certifying, rather than assuming, the
gap is what stops the guard from recompiling every update on patterns
where first-fit simply cannot reach L.

Two entry points:

:class:`DeltaScheduler`
    The stateful incremental engine: owns the configurations, the slot
    occupancy and the index->slot map, so each :meth:`~DeltaScheduler.amend`
    costs O(update size) bitmask work (plus rare amortized
    repack/recompile episodes).  The service's ``amend`` verb and the
    churn campaign drive this.

:func:`amend_schedule`
    The stateless convenience wrapper: builds a throwaway engine from
    the input schedule (O(pattern size) setup), applies one update and
    returns the result.  Copy-on-write -- the input set is never
    mutated.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core import perf
from repro.core.configuration import (
    Configuration,
    ConfigurationSet,
    ScheduleValidationError,
)
from repro.core.linkmask import SlotOccupancy, required_links, resolve_kernel
from repro.core.packing import first_fit, repack
from repro.core.paths import Connection

#: Actions the cost model can choose, cheapest first.
AMEND_ACTIONS = ("amend", "amend+repack", "recompile")


@dataclass(frozen=True)
class AmendPolicy:
    """Knobs of the amend-vs-recompile cost model.

    max_delta_k:
        Fresh slots one update may open before local repair gives up
        and recompiles.  The per-update K growth bound.
    recompile_slack:
        Drift guard: an amended schedule's gap above the link-load
        lower bound may exceed the gap certified at the last full
        placement by at most this much; beyond it, recompile.  This is
        the bound of the headline invariant ``K <= first-fit K +
        certified_gap + recompile_slack`` (``K <= first-fit K +
        recompile_slack`` when the scheduler packs down to the bound).
    repack_threshold:
        Fraction of the pattern removed in place since the last full
        placement past which the next amend is followed by a partial
        recompaction (``repack``) -- and only when K actually sits
        above the link-load lower bound, since repacking a K that is
        already optimal cannot help.  Counting *holes* rather than
        reading instantaneous slack skew keeps the trigger amortized:
        one O(pattern) repack per ``threshold * pattern`` removals.
    recompile_fraction:
        Updates touching at least this fraction of the post-update
        pattern skip local repair entirely -- at that size a fresh
        first-fit costs about the same and packs better.
    """

    max_delta_k: int = 2
    recompile_slack: int = 4
    repack_threshold: float = 0.5
    recompile_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_delta_k < 0:
            raise ValueError(f"max_delta_k must be >= 0, got {self.max_delta_k}")
        if self.recompile_slack < 0:
            raise ValueError(f"recompile_slack must be >= 0, got {self.recompile_slack}")
        if not 0.0 <= self.repack_threshold <= 1.0:
            raise ValueError(
                f"repack_threshold must be in [0, 1], got {self.repack_threshold}"
            )
        if not 0.0 < self.recompile_fraction <= 1.0:
            raise ValueError(
                f"recompile_fraction must be in (0, 1], got {self.recompile_fraction}"
            )


DEFAULT_POLICY = AmendPolicy()


def fragmentation(schedule: Sequence[Configuration]) -> float:
    """Slack skew of a schedule: 0.0 = every slot as full as the peak.

    ``1 - n / (K * peak)`` where ``peak`` is the largest configuration:
    the fraction of the frame's peak-normalised capacity sitting idle.
    An *observable* (reported per amend and by the service's ``amend``
    verb), not the repack trigger: a fresh first-fit schedule is
    already skewed, so the engine triggers recompaction on the churn
    hole count instead (see :attr:`AmendPolicy.repack_threshold`).
    """
    k = len(schedule)
    if k == 0:
        return 0.0
    peak = max(len(cfg) for cfg in schedule)
    if peak == 0:
        return 1.0
    total = sum(len(cfg) for cfg in schedule)
    return 1.0 - total / (k * peak)


@dataclass
class AmendResult:
    """Outcome of one :meth:`DeltaScheduler.amend` call.

    schedule:
        The post-update schedule.  Independent of the input set (the
        engine is copy-on-write) but shared with the engine's live
        state -- callers that keep amending must treat it as read-only
        or :meth:`~ConfigurationSet.clone` it.
    action:
        Which branch the cost model took (one of :data:`AMEND_ACTIONS`).
    delta_k:
        Degree change relative to the pre-update schedule (may be
        negative).
    degree:
        Post-update multiplexing degree K.
    fragmentation:
        Post-update :func:`fragmentation`.
    added / removed:
        Connection counts actually applied.
    """

    schedule: ConfigurationSet
    action: str
    delta_k: int
    degree: int
    fragmentation: float
    added: int
    removed: int


class DeltaScheduler:
    """Stateful incremental scheduler over a live configuration set.

    Owns cloned configurations plus the occupancy/index bookkeeping, so
    successive :meth:`amend` calls cost O(update size) bitmask work.
    The input schedule is cloned up front and never touched.
    """

    def __init__(
        self,
        schedule: ConfigurationSet,
        *,
        num_links: int | None = None,
        policy: AmendPolicy = DEFAULT_POLICY,
        kernel: str | None = None,
    ) -> None:
        self.policy = policy
        self.kernel = resolve_kernel(kernel)
        self._tag = schedule.scheduler
        if num_links is None:
            num_links = required_links(schedule.all_connections())
        self._configs: list[Configuration] = []
        self._occ = SlotOccupancy(num_links)
        self._slot_of: dict[int, int] = {}
        self._conn_of: dict[int, Connection] = {}
        #: removals applied in place since the last full placement --
        #: the repack trigger's churn counter (see AmendPolicy).
        self._holes = 0
        self._install([cfg.clone() for cfg in schedule if len(cfg) > 0])

    # -- read-only views --------------------------------------------------
    @property
    def degree(self) -> int:
        """Current multiplexing degree K."""
        return len(self._configs)

    @property
    def num_connections(self) -> int:
        """Connections currently scheduled."""
        return len(self._conn_of)

    @property
    def schedule(self) -> ConfigurationSet:
        """The live schedule (shared with the engine -- treat as read-only)."""
        return ConfigurationSet(list(self._configs), scheduler=self._tag)

    def connections(self) -> list[Connection]:
        """The scheduled connections in index order (for ``validate``)."""
        return [self._conn_of[i] for i in sorted(self._conn_of)]

    def fragmentation(self) -> float:
        """Current :func:`fragmentation` of the live schedule."""
        return fragmentation(self._configs)

    @property
    def certified_gap(self) -> int:
        """``K - L`` at the last full placement.

        The scheduler's intrinsic packing gap on this pattern (0 when
        it reaches the link-load bound).  The drift guard and the
        provable degree invariant are both relative to it.
        """
        return self._cert_gap

    def link_load_bound(self) -> int:
        """Max link load L (a degree lower bound), maintained incrementally.

        Each link is busy at most once per slot, so its load is the
        popcount of its slot mask.  L is independent of the *slotting*
        (only of the connection multiset), so the engine tracks per-link
        loads plus a load histogram under adds/removes and answers in
        O(1) -- no per-amend rescan of the mask table.
        """
        return self._load_max

    # -- state maintenance ------------------------------------------------
    def _install(self, configs: list[Configuration]) -> None:
        """(Re)build occupancy and index maps from scratch -- O(pattern)."""
        self._configs = configs
        occ = SlotOccupancy(len(self._occ.masks))
        occ.num_slots = len(configs)
        slot_of: dict[int, int] = {}
        conn_of: dict[int, Connection] = {}
        for slot, cfg in enumerate(configs):
            for c in cfg:
                if c.index in slot_of:
                    raise ScheduleValidationError(
                        f"connection index {c.index} scheduled twice"
                    )
                self._ensure_links(c.links, occ)
                occ.place(c.links, slot)
                slot_of[c.index] = slot
                conn_of[c.index] = c
        self._occ = occ
        self._slot_of = slot_of
        self._conn_of = conn_of
        self._holes = 0
        self._loads = [m.bit_count() for m in occ.masks]
        hist: dict[int, int] = {}
        for load in self._loads:
            hist[load] = hist.get(load, 0) + 1
        self._load_hist = hist
        self._load_max = max(self._loads, default=0)
        #: K - L certified by this full placement: the scheduler's
        #: intrinsic packing gap on this pattern, which the drift guard
        #: must tolerate (only *drift beyond it* is the engine's debt).
        self._cert_gap = max(0, len(configs) - self._load_max)

    def _ensure_links(self, links: tuple[int, ...], occ: SlotOccupancy | None = None) -> None:
        """Grow the per-link mask table (and load table) to cover ``links``."""
        target = occ or self._occ
        top = max(links, default=-1)
        grow = top + 1 - len(target.masks)
        if grow > 0:
            target.masks.extend([0] * grow)
            if target is self._occ:
                self._loads.extend([0] * grow)
                self._load_hist[0] = self._load_hist.get(0, 0) + grow

    def _load_shift(self, links: tuple[int, ...], delta: int) -> None:
        """Apply +-1 to the tracked load of every link in ``links``.

        Amortized O(len(links)): the histogram makes the max decrement
        (the only non-trivial case) a downward scan that total-orders
        with the increments that raised it.
        """
        loads, hist = self._loads, self._load_hist
        for link in links:
            old = loads[link]
            new = old + delta
            loads[link] = new
            hist[old] -= 1
            if not hist[old]:
                del hist[old]
            hist[new] = hist.get(new, 0) + 1
            if new > self._load_max:
                self._load_max = new
        if delta < 0:
            while self._load_max > 0 and self._load_max not in hist:
                self._load_max -= 1

    def _drop_slot(self, slot: int) -> None:
        """Remove an emptied slot, swapping the last slot into its place.

        O(size of the last configuration): its members are re-pointed at
        ``slot`` in both the bitmasks and the index map.  Slot order is
        not semantically meaningful, so the swap preserves validity.
        """
        last = len(self._configs) - 1
        if slot != last:
            mover = self._configs[last]
            for c in mover:
                self._occ.remove(c.links, last)
                self._occ.place(c.links, slot)
                self._slot_of[c.index] = slot
            self._configs[slot] = mover
        self._configs.pop()
        self._occ.num_slots -= 1

    def _recompile(self, target: list[Connection]) -> None:
        """Full first-fit recompile of ``target`` + state rebuild."""
        # An update may recompile before its additions ever touched the
        # occupancy, so the mask table cannot be assumed to cover them.
        packed = first_fit(
            target,
            scheduler=self._tag or "first-fit",
            kernel=self.kernel,
            num_links=max(len(self._occ.masks), required_links(target)),
        )
        self._install([cfg for cfg in packed if len(cfg) > 0])

    # -- the amend engine -------------------------------------------------
    def amend(
        self,
        *,
        add: Sequence[Connection] = (),
        remove: Iterable[int] = (),
    ) -> AmendResult:
        """Apply one update: remove connection indices, add routed connections.

        ``remove`` holds connection *indices* currently scheduled
        (``KeyError`` on an unknown or doubly-removed index).  ``add``
        holds routed :class:`Connection` objects whose indices collide
        with nothing scheduled or added (``ValueError`` otherwise).

        Returns an :class:`AmendResult`; the engine's live state is the
        result's schedule.
        """
        t0 = perf.perf_timer()
        remove = list(remove)
        degree_before = self.degree
        # Validate the whole update up front so a bad row leaves the
        # schedule untouched.
        seen_new: set[int] = set()
        for c in add:
            if c.index in self._conn_of or c.index in seen_new:
                raise ValueError(
                    f"added connection index {c.index} is already scheduled"
                )
            seen_new.add(c.index)
        for idx in remove:
            if idx not in self._conn_of:
                raise KeyError(f"connection index {idx} is not scheduled")
        if len(remove) != len(set(remove)):
            raise KeyError("a connection index is removed twice in one update")

        survivors_after = self.num_connections - len(remove) + len(add)
        target: list[Connection] | None = None  # built lazily for recompiles

        def full_target() -> list[Connection]:
            nonlocal target
            if target is None:
                gone = set(remove)
                keep = {i: c for i, c in self._conn_of.items() if i not in gone}
                for c in add:
                    keep[c.index] = c
                target = [keep[i] for i in sorted(keep)]
            return target

        update_size = len(add) + len(remove)
        if update_size >= self.policy.recompile_fraction * max(survivors_after, 1):
            self._recompile(full_target())
            return self._result("recompile", degree_before, add, remove, t0)

        # Removals: free the bitmask slots in place; compact emptied slots.
        for idx in remove:
            slot = self._slot_of.pop(idx)
            conn = self._conn_of.pop(idx)
            self._configs[slot].remove(conn)
            self._occ.remove(conn.links, slot)
            self._load_shift(conn.links, -1)
            self._holes += 1
            if len(self._configs[slot]) == 0:
                self._drop_slot(slot)

        # Additions: first-fit into slack, opening at most max_delta_k
        # fresh slots; past the budget, local repair loses to first-fit.
        opened = 0
        for c in add:
            self._ensure_links(c.links)
            slot = self._occ.first_fit_slot(c.links)
            if slot == len(self._configs):
                if opened >= self.policy.max_delta_k:
                    self._recompile(full_target())
                    return self._result("recompile", degree_before, add, remove, t0)
                opened += 1
                self._configs.append(Configuration())
            self._occ.place(c.links, slot)
            self._load_shift(c.links, +1)
            self._configs[slot].add(c)  # re-checks conflict-freeness
            self._slot_of[c.index] = slot
            self._conn_of[c.index] = c

        # Recompaction: enough holes have accumulated since the last
        # full placement (amortizes the O(pattern) repack) *and* K sits
        # above the link-load bound (a repack of an optimal K is pure
        # waste -- L is slotting-invariant, so it survives the repack).
        action = "amend"
        bound = self.link_load_bound()
        if (
            self.degree > bound
            and self._holes > self.policy.repack_threshold
            * max(self.num_connections, 1)
        ):
            repacked = repack(self.schedule, kernel=self.kernel)
            self._install([cfg for cfg in repacked if len(cfg) > 0])
            action = "amend+repack"

        # Drift guard: the gap above the link-load lower bound may sit
        # at most recompile_slack past the gap certified at the last
        # full placement.  L <= K_first_fit always, which proves the
        # K <= first-fit K + certified_gap + recompile_slack invariant
        # -- and a recompile re-certifies, so it can never loop on a
        # pattern whose intrinsic gap first-fit cannot close.
        if self.degree > bound + self._cert_gap + self.policy.recompile_slack:
            self._recompile(full_target())
            return self._result("recompile", degree_before, add, remove, t0)
        return self._result(action, degree_before, add, remove, t0)

    def _result(
        self,
        action: str,
        degree_before: int,
        add: Sequence[Connection],
        remove: Sequence[int],
        t0: float,
    ) -> AmendResult:
        perf.COUNTERS.amend_updates += 1
        perf.COUNTERS.amend_seconds += perf.perf_timer() - t0
        if action == "recompile":
            perf.COUNTERS.amend_recompiles += 1
        elif action == "amend+repack":
            perf.COUNTERS.amend_repacks += 1
        return AmendResult(
            schedule=self.schedule,
            action=action,
            delta_k=self.degree - degree_before,
            degree=self.degree,
            fragmentation=fragmentation(self._configs),
            added=len(add),
            removed=len(remove),
        )


def amend_schedule(
    schedule: ConfigurationSet,
    *,
    add: Sequence[Connection] = (),
    remove: Iterable[int] = (),
    policy: AmendPolicy = DEFAULT_POLICY,
    num_links: int | None = None,
    kernel: str | None = None,
) -> AmendResult:
    """Apply one add/remove update to ``schedule`` (copy-on-write).

    The stateless convenience wrapper around :class:`DeltaScheduler`:
    builds a throwaway engine (O(pattern size) setup), applies the
    update and returns the :class:`AmendResult`.  The input schedule is
    never mutated.  Long-running callers (the service's ``amend`` verb,
    the churn campaign) should hold a :class:`DeltaScheduler` instead
    to get O(update size) incremental cost.
    """
    engine = DeltaScheduler(
        schedule, num_links=num_links, policy=policy, kernel=kernel
    )
    return engine.amend(add=add, remove=remove)
