"""The greedy connection scheduling algorithm (paper Fig. 2).

The algorithm repeatedly builds configurations: scan the remaining
requests in order, adding every request that does not conflict with the
configuration under construction; repeat until all requests are placed.
The multiplexing degree it finds depends on the request order -- Fig. 3
of the paper shows a 5-node linear-array instance where the natural
order costs 3 slots while the optimum is 2.  The coloring and
ordered-AAPC algorithms exist precisely to pick better orders.

Complexity: O(|R| * K) disjointness tests, each O(path length) with the
hash-set representation used here (the paper states
O(|R| * max|C_i| * K) for the pairwise-test formulation).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.configuration import ConfigurationSet
from repro.core.packing import first_fit
from repro.core.paths import Connection


def greedy_schedule(
    connections: Sequence[Connection],
    order: Sequence[int] | None = None,
    *,
    kernel: str | None = None,
) -> ConfigurationSet:
    """Schedule ``connections`` with the paper's greedy algorithm.

    Parameters
    ----------
    connections:
        Routed request set (see :func:`repro.core.paths.route_requests`).
    order:
        Optional processing order (positions into ``connections``).
        The default is the natural request order, matching the paper's
        "arbitrary order" behaviour deterministically.
    kernel:
        Placement-test implementation, ``"bitmask"`` or ``"set"``
        (``None`` = process default); both produce the same schedule.

    Returns
    -------
    ConfigurationSet
        A valid schedule; ``result.degree`` is the multiplexing degree.
    """
    return first_fit(connections, order, scheduler="greedy", kernel=kernel)
