"""Connection requests and request sets.

A :class:`Request` is the unit the compiler schedules: "source PE ``s``
must be able to send to destination PE ``d``".  Requests optionally
carry a message ``size`` (in array elements) -- the schedulers ignore it
but the cycle-level simulator uses it to compute transfer times -- and a
``tag`` that distinguishes repeated requests between the same pair
(e.g. two different arrays flowing between the same PEs inside one
communication phase).

A :class:`RequestSet` is an *ordered* multiset of requests.  Order
matters because the paper's greedy algorithm is order-sensitive (that is
precisely the weakness Fig. 3 illustrates and the coloring / ordered-
AAPC algorithms fix).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Request:
    """A point-to-point connection request ``src -> dst``.

    Parameters
    ----------
    src, dst:
        PE (node) ids.  ``src == dst`` is rejected by
        :class:`RequestSet` -- local data movement never touches the
        network.
    size:
        Message size in elements; only the simulator consumes it.
    tag:
        Disambiguates duplicate ``(src, dst)`` requests.
    """

    src: int
    dst: int
    size: int = 1
    tag: int = 0

    @property
    def pair(self) -> tuple[int, int]:
        """The ``(src, dst)`` endpoints."""
        return (self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" x{self.size}" if self.size != 1 else ""
        return f"({self.src},{self.dst}){extra}"


class RequestSet(Sequence[Request]):
    """Ordered multiset of :class:`Request` objects.

    Construction validates that no request is a self-loop and (unless
    ``allow_duplicates``) that all ``(src, dst)`` pairs are distinct.
    The evaluation patterns of the paper (random patterns sampled
    without replacement, redistribution pair sets, classic patterns) are
    all duplicate-free; duplicates remain representable because a real
    compiler may schedule two messages between the same pair in one
    phase.
    """

    def __init__(
        self,
        requests: Iterable[Request],
        *,
        allow_duplicates: bool = False,
        name: str = "",
    ) -> None:
        self._requests = tuple(requests)
        self.name = name
        seen: set[tuple[int, int]] = set()
        for i, r in enumerate(self._requests):
            if r.src == r.dst:
                raise ValueError(f"request {i} is a self-loop: {r}")
            if not allow_duplicates:
                if r.pair in seen:
                    raise ValueError(
                        f"duplicate request pair {r.pair}; pass "
                        "allow_duplicates=True if intended"
                    )
                seen.add(r.pair)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[int, int]],
        *,
        size: int = 1,
        allow_duplicates: bool = False,
        name: str = "",
    ) -> "RequestSet":
        """Build a request set from bare ``(src, dst)`` pairs."""
        return cls(
            (Request(s, d, size=size) for s, d in pairs),
            allow_duplicates=allow_duplicates,
            name=name,
        )

    @classmethod
    def from_sized_pairs(
        cls,
        triples: Iterable[tuple[int, int, int]],
        *,
        allow_duplicates: bool = False,
        name: str = "",
    ) -> "RequestSet":
        """Build from ``(src, dst, size)`` triples (redistributions)."""
        return cls(
            (Request(s, d, size=n) for s, d, n in triples),
            allow_duplicates=allow_duplicates,
            name=name,
        )

    # -- sequence protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def __getitem__(self, i):  # type: ignore[override]
        return self._requests[i]

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    # -- helpers ----------------------------------------------------------
    @property
    def pairs(self) -> tuple[tuple[int, int], ...]:
        """All ``(src, dst)`` pairs in order."""
        return tuple(r.pair for r in self._requests)

    def total_elements(self) -> int:
        """Sum of message sizes (elements moved by the whole pattern)."""
        return sum(r.size for r in self._requests)

    def reordered(self, order: Sequence[int]) -> "RequestSet":
        """New set with requests permuted by ``order`` (a permutation of
        ``range(len(self))``)."""
        if sorted(order) != list(range(len(self))):
            raise ValueError("order must be a permutation of the request indices")
        return RequestSet(
            (self._requests[i] for i in order),
            allow_duplicates=True,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<RequestSet{label} n={len(self)}>"
