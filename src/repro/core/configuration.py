"""Configurations and configuration sets (TDM schedules).

A **configuration** is a conflict-free set of connections -- a legal
network state.  A **configuration set** ``{C_1 ... C_K}`` covering a
request set is realised by TDM with multiplexing degree K: the network
cycles through the K states, one per time slot, and every request owns
a slot.  The scheduler's objective is to minimise K.

:class:`ConfigurationSet` is the common result type of every scheduler
and the input of the code generator and the compiled-communication
simulator.  ``validate()`` checks the two defining properties
(conflict-freeness of every configuration; exact coverage of the routed
request set) and is exercised by every scheduler test, so a scheduling
bug cannot silently produce an illegal schedule.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.paths import Connection


class ScheduleValidationError(AssertionError):
    """A configuration set violates conflict-freeness or coverage."""


class Configuration:
    """A conflict-free set of connections (one TDM network state)."""

    __slots__ = ("connections", "_used_links")

    def __init__(self, connections: Iterable[Connection] = ()) -> None:
        self.connections: list[Connection] = []
        self._used_links: set[int] | None = set()
        for c in connections:
            self.add(c)

    @classmethod
    def _trusted(cls, connections: list[Connection]) -> "Configuration":
        """Construct without per-add conflict checks.

        Reserved for the bitmask kernel, which has already proven the
        members link-disjoint; ``validate()`` still re-checks the result
        from scratch, so a kernel bug cannot silently pass the suite.
        The link-set union is deferred (see :attr:`used_links`) -- most
        trusted configurations are only ever counted, not queried.
        """
        cfg = cls.__new__(cls)
        cfg.connections = connections
        cfg._used_links = None
        return cfg

    @property
    def used_links(self) -> set[int]:
        """The union of the members' link sets (built on first use)."""
        ul = self._used_links
        if ul is None:
            ul = self._used_links = set()
            for c in self.connections:
                ul |= c.link_set
        return ul

    @used_links.setter
    def used_links(self, value: set[int]) -> None:
        self._used_links = value

    def fits(self, connection: Connection) -> bool:
        """True iff ``connection`` conflicts with nothing already here."""
        return self.used_links.isdisjoint(connection.link_set)

    def add(self, connection: Connection) -> None:
        """Add a connection; raises if it conflicts with a member."""
        if not self.fits(connection):
            clash = self.used_links & connection.link_set
            raise ScheduleValidationError(
                f"connection {connection} conflicts on links {sorted(clash)}"
            )
        self.connections.append(connection)
        self.used_links |= connection.link_set

    def remove(self, connection: Connection) -> None:
        """Remove a member connection (used by local-search repacking)."""
        self.connections.remove(connection)
        self.used_links -= connection.link_set

    def clone(self) -> "Configuration":
        """A shallow copy sharing the member :class:`Connection` objects.

        Connections are immutable for scheduling purposes (their link
        sets never change), so sharing them is safe; the copy gets its
        own member list and link-set bookkeeping, making in-place
        mutation of one copy invisible to the other.
        """
        cfg = Configuration.__new__(Configuration)
        cfg.connections = list(self.connections)
        cfg._used_links = None if self._used_links is None else set(self._used_links)
        return cfg

    def __len__(self) -> int:
        return len(self.connections)

    def __iter__(self) -> Iterator[Connection]:
        return iter(self.connections)

    @property
    def total_links_used(self) -> int:
        """Number of distinct links lit in this state (utilisation)."""
        return len(self.used_links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Configuration n={len(self)} links={self.total_links_used}>"


class ConfigurationSet(Sequence[Configuration]):
    """An ordered list of configurations = a TDM schedule.

    The position of a configuration is its **time slot**; the length of
    the list is the **multiplexing degree** K.
    """

    def __init__(self, configurations: Iterable[Configuration], *, scheduler: str = "") -> None:
        self._configs = list(configurations)
        #: name of the scheduler that produced this set (for reports).
        self.scheduler = scheduler

    # -- sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._configs)

    def __getitem__(self, i):  # type: ignore[override]
        return self._configs[i]

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configs)

    # -- schedule views -----------------------------------------------------
    @property
    def degree(self) -> int:
        """The multiplexing degree K -- the quantity Tables 1-3 compare."""
        return len(self._configs)

    def slot_map(self) -> dict[int, int]:
        """Map connection index -> assigned time slot.

        Raises :class:`ScheduleValidationError` if a connection index
        appears in more than one slot (or twice in one): silently
        keeping the last slot would mask exactly the double-scheduling
        bugs an incremental amend path can introduce.
        """
        mapping: dict[int, int] = {}
        for slot, cfg in enumerate(self._configs):
            for c in cfg:
                if c.index in mapping:
                    raise ScheduleValidationError(
                        f"connection index {c.index} scheduled in both "
                        f"slot {mapping[c.index]} and slot {slot}"
                    )
                mapping[c.index] = slot
        return mapping

    def all_connections(self) -> list[Connection]:
        """All scheduled connections, in slot order."""
        return [c for cfg in self._configs for c in cfg]

    def clone(self) -> "ConfigurationSet":
        """A copy whose configurations are independent of this set's.

        Every :class:`Configuration` is cloned (member lists copied,
        connections shared -- they are immutable for scheduling
        purposes), so in-place improvers like ``repack`` and
        ``amend_schedule`` can mutate the copy without corrupting a
        cache-held or caller-held original.  Cost is O(total
        connections) pointer copies, no routing or conflict re-checks.
        """
        return ConfigurationSet(
            (cfg.clone() for cfg in self._configs), scheduler=self.scheduler
        )

    # -- validation -----------------------------------------------------
    def validate(self, connections: Sequence[Connection]) -> None:
        """Assert the two defining properties against the routed set.

        1. every configuration is internally conflict-free (re-checked
           from scratch, not trusting incremental bookkeeping);
        2. every connection appears in exactly one configuration and no
           foreign connection appears.

        Raises :class:`ScheduleValidationError` on any violation.
        """
        for slot, cfg in enumerate(self._configs):
            seen: set[int] = set()
            for c in cfg:
                overlap = seen & c.link_set
                if overlap:
                    raise ScheduleValidationError(
                        f"slot {slot}: {c} reuses links {sorted(overlap)}"
                    )
                seen |= c.link_set
        scheduled = [c.index for cfg in self._configs for c in cfg]
        if len(scheduled) != len(set(scheduled)):
            raise ScheduleValidationError("a connection is scheduled twice")
        expected = {c.index for c in connections}
        got = set(scheduled)
        if got != expected:
            missing = sorted(expected - got)[:10]
            extra = sorted(got - expected)[:10]
            raise ScheduleValidationError(
                f"coverage mismatch: missing={missing} extra={extra}"
            )

    def utilisation(self, num_links: int) -> float:
        """Fraction of link-slots actually lit, over the whole frame."""
        lit = sum(cfg.total_links_used for cfg in self._configs)
        return lit / (num_links * max(self.degree, 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" by {self.scheduler}" if self.scheduler else ""
        return f"<ConfigurationSet K={self.degree}{tag}>"
