"""Phased all-to-all personalized communication (AAPC) decompositions.

The ordered-AAPC scheduler (paper Fig. 5) presupposes a partition of the
complete communication pattern -- every PE sends to every other PE --
into contention-free phases.  The paper imports this substrate from
Hinrichs et al. [8], who give an optimal construction for tori reaching
``N^3 / 8`` phases on an ``N x N`` torus (64 phases for 8 x 8); that
implementation is not available, so this package *builds* phased AAPC
decompositions for arbitrary topologies:

* a structured request ordering that places translation-equivalent,
  provably non-conflicting connections adjacently (offset-major,
  sublattice-spaced sources on tori),
* first-fit packing over that ordering, followed by
* an all-or-nothing local-search repacking pass
  (:func:`repro.core.packing.repack`).

:mod:`repro.aapc.bounds` derives the matching lower bounds (injection
bound ``N - 1``; link-load bound, which evaluates to ``N^3/8`` on even
tori with balanced half-ring routing) so tests and benches can certify
how close the construction lands.  On the paper's 8x8 torus the builder
reaches the optimal 64 phases (asserted in the test suite).
"""

from repro.aapc.phases import AAPCDecomposition, aapc_decomposition, aapc_phase_map
from repro.aapc.bounds import aapc_injection_bound, aapc_link_bound, torus_phase_optimum

__all__ = [
    "AAPCDecomposition",
    "aapc_decomposition",
    "aapc_phase_map",
    "aapc_injection_bound",
    "aapc_link_bound",
    "torus_phase_optimum",
]
