"""Construction of phased AAPC decompositions.

Strategy (see the package docstring): try several deterministic request
orderings, pack each with first-fit *and* fullest-bin-first best-fit,
locally repack every candidate, and keep the smallest decomposition.

The workhorse ordering for tori is **offset-major with sublattice
spacing**: all-to-all splits into translation classes ("offsets"
``(o_0, ..., o_{n-1})``, the per-dimension signed hop counts).  Two
same-offset connections conflict iff their sources are closer than the
offset length in some dimension, so enumerating each class by source
sublattices of stride ``a_d >= |o_d|`` (``a_d`` dividing the radix)
emits long runs of mutually conflict-free connections that first-fit
lays into the same phase.  Processing large offsets first fills each
phase's long segments before short fillers arrive -- the same
"keep dense groups intact" intuition as the paper's phase ranking.

Decompositions are cached per topology signature: they depend only on
the topology and routing policy, and the ordered-AAPC scheduler
(called hundreds of times by the table benches) reuses them.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.linkmask import SlotOccupancy, iter_bits, required_links, resolve_kernel
from repro.core.packing import first_fit, repack
from repro.core.paths import Connection, route_requests
from repro.aapc.bounds import (
    aapc_injection_bound,
    all_pairs_requests,
)
from repro.core.bounds import max_link_load_bound
from repro.topology.base import Topology
from repro.topology.kary_ncube import KAryNCube


class AAPCDecomposition:
    """A contention-free phase decomposition of all-to-all.

    Attributes
    ----------
    topology:
        The substrate the decomposition was built for.
    schedule:
        The phases as a :class:`~repro.core.configuration.ConfigurationSet`
        over the all-pairs connection list.
    connections:
        The routed all-pairs connections (lexicographic pair order).
    """

    def __init__(self, topology: Topology, schedule: ConfigurationSet,
                 connections: Sequence[Connection]) -> None:
        self.topology = topology
        self.schedule = schedule
        self.connections = list(connections)
        self._phase_of: dict[tuple[int, int], int] = {}
        for phase, cfg in enumerate(schedule):
            for c in cfg:
                self._phase_of[c.pair] = phase

    @property
    def num_phases(self) -> int:
        """Phase count == multiplexing degree needed for full AAPC."""
        return self.schedule.degree

    @property
    def phase_of(self) -> dict[tuple[int, int], int]:
        """Map ``(src, dst)`` -> phase index, defined for every pair."""
        return self._phase_of

    def lower_bound(self) -> int:
        """Best lower bound on any decomposition for this topology."""
        return max(
            aapc_injection_bound(self.topology),
            max_link_load_bound(self.connections),
        )

    def validate(self) -> None:
        """Assert contention-freeness and exact all-pairs coverage."""
        self.schedule.validate(self.connections)
        n = self.topology.num_nodes
        if len(self._phase_of) != n * (n - 1):
            raise AssertionError(
                f"phase map covers {len(self._phase_of)} pairs, "
                f"expected {n * (n - 1)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AAPCDecomposition {self.topology.signature} "
            f"phases={self.num_phases} bound={self.lower_bound()}>"
        )


# ----------------------------------------------------------------------
# request orderings
# ----------------------------------------------------------------------

def _smallest_divisor_at_least(k: int, m: int) -> int:
    """Smallest divisor of ``k`` that is >= ``m`` (k itself in the worst case)."""
    for a in range(max(m, 1), k + 1):
        if k % a == 0:
            return a
    return k


def _offset_major_order(
    topology: KAryNCube, connections: Sequence[Connection], *, descending: bool = True
) -> list[int]:
    """Offset-major, sublattice-spaced source order (tori only)."""
    keyed = []
    for pos, c in enumerate(connections):
        src_c = topology.coords(c.request.src)
        dst_c = topology.coords(c.request.dst)
        offset = tuple(
            topology.signed_offset(s, d, dim)
            for dim, (s, d) in enumerate(zip(src_c, dst_c))
        )
        dist = sum(abs(o) for o in offset)
        spacing = tuple(
            _smallest_divisor_at_least(k, abs(o))
            for k, o in zip(topology.dims, offset)
        )
        sub = tuple(s % a for s, a in zip(src_c, spacing))
        sort_dist = -dist if descending else dist
        keyed.append(((sort_dist, offset, sub, src_c), pos))
    keyed.sort()
    return [pos for _, pos in keyed]


def _longest_first_order(connections: Sequence[Connection]) -> list[int]:
    return sorted(range(len(connections)), key=lambda i: (-connections[i].num_links, i))


# ----------------------------------------------------------------------
# packers
# ----------------------------------------------------------------------

def _best_fit(
    connections: Sequence[Connection],
    order: Sequence[int],
    *,
    kernel: str | None = None,
) -> ConfigurationSet:
    """Pack into the *fullest* (most links lit) configuration that fits.

    Ties keep the earliest configuration, matching the set-kernel
    reference exactly; both kernels produce identical packings.
    """
    if resolve_kernel(kernel) == "bitmask":
        return _best_fit_bitmask(connections, order)
    configs: list[Configuration] = []
    for pos in order:
        c = connections[pos]
        best: Configuration | None = None
        for cfg in configs:
            if cfg.fits(c) and (best is None or cfg.total_links_used > best.total_links_used):
                best = cfg
        if best is None:
            best = Configuration()
            configs.append(best)
        best.add(c)
    return ConfigurationSet(configs, scheduler="aapc-best-fit")


def _best_fit_bitmask(
    connections: Sequence[Connection], order: Sequence[int]
) -> ConfigurationSet:
    """Bitmask best-fit: one slot-mask OR yields every fitting slot."""
    occ = SlotOccupancy(required_links(connections))
    members: list[list[Connection]] = []
    lit: list[int] = []  # distinct links used per configuration
    for pos in order:
        c = connections[pos]
        best, best_lit = -1, -1
        for slot in iter_bits(occ.free_slots(c.links)):
            if lit[slot] > best_lit:
                best, best_lit = slot, lit[slot]
        if best < 0:
            best = occ.num_slots
            members.append([])
            lit.append(0)
        occ.place(c.links, best)
        members[best].append(c)
        # members are link-disjoint, so the union size is the plain sum.
        lit[best] += len(c.link_set)
    return ConfigurationSet(
        [Configuration._trusted(m) for m in members], scheduler="aapc-best-fit"
    )


# ----------------------------------------------------------------------
# builder + cache
# ----------------------------------------------------------------------

def _product_schedule(
    topology: KAryNCube, connections: Sequence[Connection]
) -> ConfigurationSet | None:
    """Latin-product construction (optimal on the paper's 8x8 torus).

    Builds per-dimension Latin ring schedules
    (:mod:`repro.aapc.ring_latin`) and combines them by the product
    theorem into a ``prod(dims)``-phase decomposition.  Returns ``None``
    when a dimension has no Latin schedule (radix too large) or the
    routing policy is not the balanced one the ring tables assume.
    """
    from repro.topology.kary_ncube import TieBreak
    from repro.aapc.ring_latin import ring_latin_schedule

    if topology.tie_break is not TieBreak.BALANCED:
        return None
    tables = []
    for k in topology.dims:
        phi = ring_latin_schedule(k)
        if phi is None:
            return None
        tables.append(phi)

    num_phases = 1
    for k in topology.dims:
        num_phases *= k
    buckets: list[list[Connection]] = [[] for _ in range(num_phases)]
    for c in connections:
        src_c = topology.coords(c.request.src)
        dst_c = topology.coords(c.request.dst)
        phase, radix = 0, 1
        for k, phi, s, d in zip(topology.dims, tables, src_c, dst_c):
            phase += phi[s][d] * radix
            radix *= k
        buckets[phase].append(c)
    configs = [Configuration(members) for members in buckets if members]
    return ConfigurationSet(configs, scheduler="aapc[latin-product]")


_CACHE: dict[str, AAPCDecomposition] = {}


def build_aapc_decomposition(
    topology: Topology, *, effort: str = "normal", kernel: str | None = None
) -> AAPCDecomposition:
    """Build a phased AAPC decomposition from scratch (no cache).

    Tries, in order:

    1. the **Latin-product construction** (tori with balanced routing
       and Latin-feasible radices) -- provably valid, optimal at 64
       phases on the paper's 8x8 torus;
    2. heuristic packing over structured orderings, locally repacked;
    3. at ``effort="high"``, an iterated-local-search polish
       (:mod:`repro.aapc.optimize`) of the heuristic result.

    and keeps the best.  ``effort`` is ``"fast"`` (one heuristic
    ordering, no repack -- for tests on big substrates), ``"normal"``
    or ``"high"``.
    """
    requests = all_pairs_requests(topology)
    connections = route_requests(topology, requests)

    best: ConfigurationSet | None = None
    if isinstance(topology, KAryNCube):
        best = _product_schedule(topology, connections)
        if best is not None and best.degree <= max_link_load_bound(connections):
            return AAPCDecomposition(topology, best, connections)

    orders: list[tuple[str, list[int]]] = []
    if isinstance(topology, KAryNCube):
        orders.append(("offset-desc", _offset_major_order(topology, connections, descending=True)))
        if effort != "fast":
            orders.append(("offset-asc", _offset_major_order(topology, connections, descending=False)))
    if effort != "fast" or not orders:
        orders.append(("longest-first", _longest_first_order(connections)))

    for name, order in orders:
        for packer in (first_fit, _best_fit):
            candidate = packer(connections, order, kernel=kernel)
            if effort != "fast":
                candidate = repack(candidate, kernel=kernel)
            if best is None or candidate.degree < best.degree:
                best = ConfigurationSet(list(candidate), scheduler=f"aapc[{name}]")
    assert best is not None

    if effort == "high":
        from repro.aapc.optimize import minimize_degree

        bound = max(
            aapc_injection_bound(topology), max_link_load_bound(connections)
        )
        best = minimize_degree(best, target=bound, scheduler=best.scheduler + "+ils")
    return AAPCDecomposition(topology, best, connections)


def aapc_decomposition(topology: Topology, *, effort: str = "normal") -> AAPCDecomposition:
    """Cached :func:`build_aapc_decomposition` (keyed by topology signature)."""
    key = f"{topology.signature}|{effort}"
    if key not in _CACHE:
        _CACHE[key] = build_aapc_decomposition(topology, effort=effort)
    return _CACHE[key]


def aapc_phase_map(topology: Topology) -> dict[tuple[int, int], int]:
    """Pair -> phase map of the cached decomposition (scheduler entry point)."""
    return aapc_decomposition(topology).phase_of
