"""Iterated local search for minimising a configuration set's degree.

The first-fit/repack pipeline of :mod:`repro.aapc.phases` leaves a gap
to the AAPC optimum on dense instances (e.g. ~83 vs the 64-phase
optimum on the 8x8 torus).  The paper closes that gap with the explicit
construction of Hinrichs et al. [8]; lacking that implementation, we
close it with search.  This is legitimate compiled-communication
methodology -- the decomposition is computed once per topology, off
line, so seconds of optimisation are free.

The search is a classic iterated local search over *feasible* states
(every intermediate schedule is a valid partition into conflict-free
configurations):

* **dissolve** -- all-or-nothing move of a small configuration's
  members into the others (:func:`repro.core.packing.repack`'s move);
* **evicting dissolve** -- when a member does not fit anywhere, allow
  placing it into a slot after *evicting* the conflicting members,
  provided every evicted connection immediately fits in some third
  slot (a one-level Kempe-style chain);
* **perturb** -- on stagnation, randomly re-home a fraction of
  connections (feasibly) and descend again.

Deterministic given the seed.  Budgets are iteration-based so tests can
run tiny searches.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.packing import _try_dissolve
from repro.core.paths import Connection


def _conflicting_members(cfg: Configuration, c: Connection) -> list[Connection]:
    """Members of ``cfg`` whose links intersect ``c``'s."""
    return [m for m in cfg.connections if not m.link_set.isdisjoint(c.link_set)]


def _place_with_eviction(
    c: Connection,
    target: Configuration,
    others: Sequence[Configuration],
    *,
    max_evict: int = 3,
) -> bool:
    """Put ``c`` into ``target``, evicting conflicting members.

    Succeeds only if at most ``max_evict`` members conflict and every
    one of them fits (without further eviction) into some configuration
    in ``others``.  All-or-nothing with rollback.
    """
    evicted = _conflicting_members(target, c)
    if len(evicted) > max_evict:
        return False
    moves: list[tuple[Connection, Configuration]] = []
    for e in evicted:
        target.remove(e)
    for e in evicted:
        for cfg in others:
            if cfg.fits(e):
                cfg.add(e)
                moves.append((e, cfg))
                break
        else:
            for moved, cfg in reversed(moves):
                cfg.remove(moved)
            for e2 in evicted:
                target.add(e2)
            return False
    target.add(c)
    return True


def _dissolve_with_eviction(
    victim: Configuration,
    others: list[Configuration],
    *,
    max_evict: int = 3,
) -> bool:
    """Dissolve ``victim`` allowing one-level evictions.

    Unlike :func:`repro.core.packing._try_dissolve` this is *not*
    rolled back on failure: partial progress still shrinks the victim,
    which later rounds can finish.  Returns True iff the victim emptied.
    """
    for c in list(victim.connections):
        placed = False
        for cfg in others:
            if cfg.fits(c):
                victim.remove(c)
                cfg.add(c)
                placed = True
                break
        if placed:
            continue
        for cfg in others:
            rest = [o for o in others if o is not cfg]
            victim.remove(c)
            if _place_with_eviction(c, cfg, rest, max_evict=max_evict):
                placed = True
                break
            victim.add(c)
    return len(victim) == 0


def _descend(configs: list[Configuration], *, max_evict: int = 3) -> None:
    """Greedy descent: dissolve configurations until a local optimum."""
    improved = True
    while improved and len(configs) > 1:
        improved = False
        for victim in sorted(configs, key=len):
            others = [cfg for cfg in configs if cfg is not victim]
            if _try_dissolve(victim, others):
                configs.remove(victim)
                improved = True
                break
            if _dissolve_with_eviction(victim, others, max_evict=max_evict):
                configs.remove(victim)
                improved = True
                break


def _perturb(
    configs: list[Configuration],
    rng: np.random.Generator,
    *,
    fraction: float = 0.08,
) -> None:
    """Feasibly re-home a random sample of connections."""
    if len(configs) < 2:
        return
    all_members = [(cfg, c) for cfg in configs for c in cfg.connections]
    k = max(1, int(len(all_members) * fraction))
    picks = rng.choice(len(all_members), size=min(k, len(all_members)), replace=False)
    for idx in picks:
        cfg, c = all_members[idx]
        if c not in cfg.connections:
            continue
        order = rng.permutation(len(configs))
        for j in order:
            other = configs[j]
            if other is not cfg and other.fits(c):
                cfg.remove(c)
                other.add(c)
                break
    for cfg in [cfg for cfg in configs if len(cfg) == 0]:
        configs.remove(cfg)


def minimize_degree(
    schedule: ConfigurationSet,
    *,
    target: int | None = None,
    rounds: int = 12,
    max_evict: int = 3,
    seed: int = 0,
    scheduler: str | None = None,
) -> ConfigurationSet:
    """Iterated local search to reduce ``schedule.degree``.

    Parameters
    ----------
    schedule:
        A valid starting schedule (consumed: configurations mutated).
    target:
        Stop early when this degree is reached (pass a lower bound).
    rounds:
        Number of perturb+descend iterations after the initial descent.
    seed:
        RNG seed; the search is deterministic given it.

    Returns the best schedule found (never worse than the input).
    """
    rng = np.random.default_rng(seed)
    configs = [cfg for cfg in schedule if len(cfg) > 0]
    _descend(configs, max_evict=max_evict)

    def snapshot(cfgs: list[Configuration]) -> list[list[Connection]]:
        return [list(cfg.connections) for cfg in cfgs]

    best = snapshot(configs)
    for _ in range(rounds):
        if target is not None and len(best) <= target:
            break
        _perturb(configs, rng)
        _descend(configs, max_evict=max_evict)
        if len(configs) < len(best):
            best = snapshot(configs)

    rebuilt = [Configuration(members) for members in best]
    name = scheduler if scheduler is not None else schedule.scheduler + "+ils"
    return ConfigurationSet(rebuilt, scheduler=name)
