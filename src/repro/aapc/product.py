"""Generalized product decompositions: structural AAPC at any radix.

:mod:`repro.aapc.ring_latin` proves the **product theorem**: per-ring
schedules whose rows and columns are phase-injective and whose phases
are segment-link-disjoint compose, dimension by dimension, into a
contention-free AAPC decomposition of the whole torus.  The Latin
tables it ships satisfy those properties *and* use the minimum ``n``
phases -- but Latin schedules only exist up to radix 8 (the all-pairs
fiber load exceeds ``n`` beyond that), which is why the generic phase
builder falls back to heuristic packing of the fully routed all-pairs
set on big tori.  That fallback materialises ``N(N-1)`` connection
objects; at 64x64 (16.7 M connections) it is not a compile path, it is
a memory benchmark.

This module keeps the *structure* and drops the minimality: a
**contention-free ring schedule** is any ``phi[u][v] -> phase`` over
all ``n^2`` pairs (self-pairs included) with

1. injective rows (``phi[u][.]`` has ``n`` distinct values),
2. injective columns,
3. per-phase link-disjoint routed segments.

Exactly the three properties the product proof consumes -- nothing in
the proof needs the phase count to be ``n`` (the permutation rows of a
Latin schedule are just injectivity plus surjectivity, and surjectivity
is never used).  Self-pairs route no fibers but still occupy a row and
a column entry: the proof's injection/ejection cases compare *all*
destinations of a source, including ``u`` itself, so the injectivity
must cover them.

For radices with a precomputed Latin table the table is used verbatim
(so on the paper's 8x8 torus the product is the optimal 64-phase
decomposition).  For larger radices a deterministic greedy first-fit
over the ``n^2`` pairs, hardest (longest route) first, builds a
partial-Latin schedule in ``O(n^2 * phases)`` integer bit operations --
a few million word ops at radix 64, versus the infeasible alternative
of packing 16.7 M routed connections.

The resulting phase matrix over node pairs,

    ``phase(s, d) = sum_d phi_d[s_d][d_d] * stride_d``

(``stride_d`` = product of the phase counts of the lower dimensions),
is computed as a handful of vectorized numpy gathers -- no per-pair
Python at all -- and compacted to the phase ids actually used by a
non-self pair.  :mod:`repro.core.allpairs` turns it into a schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.linkmask import iter_bits
from repro.aapc.ring_latin import PRECOMPUTED, ring_route
from repro.topology.kary_ncube import KAryNCube, TieBreak

__all__ = [
    "RingSchedule",
    "contention_free_ring_schedule",
    "validate_ring_schedule",
    "ProductDecomposition",
    "product_decomposition",
]


def _fiber_mask(n: int, u: int, v: int) -> int:
    """Ring route ``u -> v`` as a bitmask over the ``2n`` directed fibers.

    Bit ``i`` is the positive fiber ``i -> i+1``; bit ``n + j`` the
    negative fiber ``j+1 -> j`` (both mod ``n``).
    """
    mask = 0
    for sign, i in ring_route(n, u, v):
        mask |= 1 << (i if sign == "+" else n + i)
    return mask


@dataclass(frozen=True)
class RingSchedule:
    """A contention-free ring schedule (see the module docstring).

    ``phi[u][v]`` is the phase of pair ``(u, v)``; ``num_phases`` the
    number of phases used (``n`` exactly when ``kind == "latin"``).
    """

    n: int
    phi: tuple[tuple[int, ...], ...]
    num_phases: int
    kind: str  # "latin" | "greedy"


def _greedy_ring_schedule(n: int) -> RingSchedule:
    """Deterministic first-fit partial-Latin builder for any radix.

    Pairs are processed hardest (longest route) first; each takes the
    lowest phase not blocked by its row, its column, or a fiber clash.
    Row/column blocks and per-phase fiber occupancy are Python-int
    bitmasks, so every candidate scan is a few word operations.
    """
    routes = {(u, v): _fiber_mask(n, u, v) for u in range(n) for v in range(n)}
    lengths = {
        (u, v): len(ring_route(n, u, v)) for u in range(n) for v in range(n)
    }
    pairs = sorted(routes, key=lambda p: (-lengths[p], p))
    row_used = [0] * n
    col_used = [0] * n
    occ: list[int] = []  # per-phase fiber masks
    phi = [[-1] * n for _ in range(n)]
    for u, v in pairs:
        fm = routes[(u, v)]
        free = ~(row_used[u] | col_used[v]) & ((1 << len(occ)) - 1)
        chosen = -1
        for p in iter_bits(free):
            if not occ[p] & fm:
                chosen = p
                break
        if chosen < 0:
            chosen = len(occ)
            occ.append(0)
        occ[chosen] |= fm
        bit = 1 << chosen
        row_used[u] |= bit
        col_used[v] |= bit
        phi[u][v] = chosen
    return RingSchedule(
        n, tuple(tuple(row) for row in phi), len(occ), "greedy"
    )


_RING_CACHE: dict[int, RingSchedule] = {}


def contention_free_ring_schedule(n: int) -> RingSchedule:
    """Contention-free ring schedule for radix ``n`` (cached).

    Uses the optimal precomputed Latin table where one exists
    (``n <= 8`` and ``n == 1``), the greedy partial-Latin builder
    otherwise.  Every returned schedule satisfies the three product-
    theorem properties; ``validate_ring_schedule`` re-proves them and
    the test suite exercises it at representative radices.
    """
    if n < 1:
        raise ValueError(f"ring radix must be >= 1, got {n}")
    cached = _RING_CACHE.get(n)
    if cached is not None:
        return cached
    if n == 1:
        result = RingSchedule(1, ((0,),), 1, "latin")
    elif n in PRECOMPUTED:
        phi = PRECOMPUTED[n]
        result = RingSchedule(n, tuple(tuple(row) for row in phi), n, "latin")
    else:
        result = _greedy_ring_schedule(n)
    _RING_CACHE[n] = result
    return result


def validate_ring_schedule(schedule: RingSchedule) -> None:
    """Assert the three product-theorem properties of ``schedule``."""
    n, phi, num_phases = schedule.n, schedule.phi, schedule.num_phases
    for u in range(n):
        row = phi[u]
        if len(set(row)) != n:
            raise AssertionError(f"row {u} is not injective: {row}")
        if min(row) < 0 or max(row) >= num_phases:
            raise AssertionError(f"row {u} leaves [0, {num_phases}): {row}")
    for v in range(n):
        col = {phi[u][v] for u in range(n)}
        if len(col) != n:
            raise AssertionError(f"column {v} is not injective")
    occ = [0] * num_phases
    for u in range(n):
        for v in range(n):
            fm = _fiber_mask(n, u, v)
            p = phi[u][v]
            if occ[p] & fm:
                raise AssertionError(
                    f"phase {p}: pair ({u},{v}) reuses an occupied fiber"
                )
            occ[p] |= fm


# ----------------------------------------------------------------------
# torus product
# ----------------------------------------------------------------------

@dataclass
class ProductDecomposition:
    """A product-theorem AAPC decomposition as a dense phase matrix.

    ``phase_matrix[s, d]`` is the phase (= time slot before ranking) of
    the connection ``s -> d``; the diagonal is ``-1`` (self-pairs are
    not network traffic).  Phase ids are compacted to ``0 ..
    num_phases - 1`` over the ids some non-self pair actually uses.
    ``phase_counts[p]`` is the number of connections in phase ``p``.
    """

    topology: KAryNCube
    phase_matrix: np.ndarray
    num_phases: int
    phase_counts: np.ndarray
    ring_phases: tuple[int, ...]
    kind: str  # "latin-product" | "greedy-product"


def product_decomposition(topology: KAryNCube) -> ProductDecomposition:
    """Build the product decomposition of all-to-all on ``topology``.

    Only the BALANCED tie-break is supported: the ring tables encode
    exactly that policy's half-ring choice, and a mismatched policy
    would silently break the segment-disjointness the proof needs
    (``ValueError`` instead).
    """
    if not isinstance(topology, KAryNCube):
        raise ValueError(
            f"product decompositions need a k-ary n-cube, got {topology!r}"
        )
    if topology.tie_break is not TieBreak.BALANCED:
        raise ValueError(
            "product decompositions require the BALANCED tie-break "
            f"(topology uses {topology.tie_break.value})"
        )
    rings = [contention_free_ring_schedule(k) for k in topology.dims]
    n = topology.num_nodes
    ids = np.arange(n)
    phase = None
    stride = 1
    node_stride = 1
    for k, ring in zip(topology.dims, rings):
        coord = (ids // node_stride) % k
        table = np.asarray(ring.phi, dtype=np.int32)
        term = table[coord[:, None], coord[None, :]]
        if phase is None:
            phase = term.copy()
        else:
            np.add(phase, term * np.int32(stride), out=phase)
        stride *= ring.num_phases
        node_stride *= k
    assert phase is not None
    # Compact to the ids used by non-self pairs: a tail combination can
    # be populated by self-pairs alone, and those carry no traffic.
    counts = np.bincount(phase.ravel(), minlength=stride)
    counts -= np.bincount(phase.diagonal(), minlength=stride)
    used = counts > 0
    remap = (np.cumsum(used) - 1).astype(np.int32)
    phase = remap[phase]
    np.fill_diagonal(phase, -1)
    kind = (
        "latin-product"
        if all(r.kind == "latin" for r in rings)
        else "greedy-product"
    )
    return ProductDecomposition(
        topology=topology,
        phase_matrix=phase,
        num_phases=int(used.sum()),
        phase_counts=counts[used],
        ring_phases=tuple(r.num_phases for r in rings),
        kind=kind,
    )
