"""Latin ring schedules: the building block of optimal torus AAPC.

Definition
----------
For a ring of ``n`` nodes (balanced shortest-path routing), a **Latin
ring schedule** is a map ``phi[u][v] -> phase`` over *all* ``n^2`` pairs
(including the self-pairs ``(u, u)``, which occupy no links) such that

1. each row ``phi[u][.]`` is a permutation of ``0..n-1`` (every source
   is busy exactly once per phase),
2. each column ``phi[.][v]`` is a permutation (every destination
   receives exactly once per phase),
3. within each phase the routed ring segments are pairwise
   link-disjoint.

Product theorem
---------------
If ``phi_x`` and ``phi_y`` are Latin ring schedules for radices ``W``
and ``H``, then

    ``phase(s, d) = phi_x[s_x][d_x] + W * phi_y[s_y][d_y]``

is a valid ``W*H``-phase AAPC decomposition of the ``W x H`` torus under
dimension-order routing.  Proof sketch (each case uses one Latin/
disjointness property):

* *injection*: two connections from the same source in one phase force
  ``d_x`` equal (row bijection of ``phi_x``) and ``d_y`` equal (row
  bijection of ``phi_y``) -- same connection.
* *ejection*: symmetric via the column bijections.
* *x-segment overlap*: requires the same source row and two x-pairs in
  the same ``phi_x`` phase; distinct pairs are link-disjoint by (3),
  identical pairs force the same source (and then the same connection).
* *y-segment overlap*: requires the same intermediate column ``d_x``;
  distinct y-pairs in a ``phi_y`` phase are disjoint by (3), identical
  y-pairs force ``s_x = s_x'`` via the column bijection of ``phi_x``.

The argument extends dimension-by-dimension to any mixed-radix torus
(segments in dimension ``i`` share a line only if all lower dimensions
agree on destination coordinates and all higher ones on source
coordinates).

For ``n = 8`` the +x fibers of a row carry exactly ``8`` segment-hops
per phase -- every fiber is lit in every phase -- so the 64-phase
product schedule on the 8x8 torus is *perfect* and meets the paper's
``N^3/8`` optimum.  Feasibility requires the all-pairs ring link load
to be at most ``n`` (true for ``n <= 8``, and for odd ``n <= 9``; for
larger rings no Latin schedule exists and the phase builder falls back
to heuristic packing).

Schedules for common radices are precomputed (a randomized DFS found
them; they are validated by the test suite), and :func:`solve_ring_latin`
can search for new radices.
"""

from __future__ import annotations

import random

__all__ = [
    "ring_route",
    "ring_link_load",
    "latin_feasible",
    "solve_ring_latin",
    "ring_latin_schedule",
    "validate_ring_latin",
]


def ring_route(n: int, u: int, v: int) -> tuple[tuple[str, int], ...]:
    """Directed fiber labels of the balanced shortest route ``u -> v``.

    Labels are ``('+', i)`` for the fiber ``i -> i+1`` and ``('-', j)``
    for the fiber ``j+1 -> j`` (all mod ``n``).  The half-ring tie goes
    positive iff ``u`` is even, matching
    :meth:`repro.topology.kary_ncube.KAryNCube.signed_offset` with the
    BALANCED policy.
    """
    d = (v - u) % n
    if d == 0:
        return ()
    if 2 * d < n or (2 * d == n and u % 2 == 0):
        return tuple(("+", (u + i) % n) for i in range(d))
    return tuple(("-", (u - i - 1) % n) for i in range(n - d))


def ring_link_load(n: int) -> int:
    """Max fiber load of the all-pairs (non-self) routed ring pattern."""
    load: dict[tuple[str, int], int] = {}
    for u in range(n):
        for v in range(n):
            for link in ring_route(n, u, v):
                load[link] = load.get(link, 0) + 1
    return max(load.values(), default=0)


def latin_feasible(n: int) -> bool:
    """Necessary condition: all-pairs fiber load fits in ``n`` phases."""
    return ring_link_load(n) <= n


def solve_ring_latin(
    n: int,
    *,
    seed: int = 0,
    max_nodes: int = 300_000,
    restarts: int = 200,
) -> list[list[int]] | None:
    """Randomized DFS for a Latin ring schedule of radix ``n``.

    Returns ``phi`` as an ``n x n`` matrix or ``None`` if the node
    budget is exhausted on every restart (or ``n`` is infeasible).
    Deterministic given ``seed`` (restart ``r`` uses ``seed + r``).
    """
    if not latin_feasible(n):
        return None
    pairs = [(u, v) for u in range(n) for v in range(n)]
    routes = {p: ring_route(n, *p) for p in pairs}
    pairs.sort(key=lambda p: (-len(routes[p]), p))  # hardest first

    for restart in range(restarts):
        rng = random.Random(seed + restart)
        row_used = [[False] * n for _ in range(n)]
        col_used = [[False] * n for _ in range(n)]
        occ: list[set[tuple[str, int]]] = [set() for _ in range(n)]
        assign: dict[tuple[int, int], int] = {}
        nodes = 0

        def dfs(i: int) -> bool:
            nonlocal nodes
            if i == len(pairs):
                return True
            nodes += 1
            if nodes > max_nodes:
                return False
            u, v = pairs[i]
            r = routes[(u, v)]
            phases = list(range(n))
            rng.shuffle(phases)
            for p in phases:
                if row_used[u][p] or col_used[v][p]:
                    continue
                if any(link in occ[p] for link in r):
                    continue
                row_used[u][p] = col_used[v][p] = True
                occ[p].update(r)
                assign[(u, v)] = p
                if dfs(i + 1):
                    return True
                row_used[u][p] = col_used[v][p] = False
                occ[p].difference_update(r)
                del assign[(u, v)]
            return False

        if dfs(0):
            return [[assign[(u, v)] for v in range(n)] for u in range(n)]
    return None


#: Precomputed Latin ring schedules (balanced tie-break), radix -> phi.
#: Found by :func:`solve_ring_latin`; validated in tests/aapc/.
PRECOMPUTED: dict[int, list[list[int]]] = {
    2: [[1, 0], [0, 1]],
    3: [[1, 0, 2], [0, 2, 1], [2, 1, 0]],
    4: [[1, 0, 2, 3], [2, 3, 1, 0], [0, 2, 3, 1], [3, 1, 0, 2]],
    5: [[3, 4, 2, 0, 1], [4, 0, 3, 1, 2], [1, 2, 0, 4, 3],
        [0, 3, 1, 2, 4], [2, 1, 4, 3, 0]],
    6: [[1, 5, 0, 4, 2, 3], [3, 0, 5, 2, 4, 1], [2, 1, 4, 0, 3, 5],
        [5, 4, 3, 1, 0, 2], [4, 3, 2, 5, 1, 0], [0, 2, 1, 3, 5, 4]],
    7: [[3, 0, 2, 4, 1, 6, 5], [4, 5, 1, 0, 6, 2, 3], [6, 4, 5, 2, 3, 1, 0],
        [1, 3, 0, 6, 2, 5, 4], [0, 2, 4, 1, 5, 3, 6], [5, 1, 6, 3, 0, 4, 2],
        [2, 6, 3, 5, 4, 0, 1]],
    8: [[5, 0, 7, 1, 3, 6, 4, 2], [4, 5, 2, 6, 0, 7, 3, 1],
        [6, 1, 3, 7, 4, 5, 2, 0], [2, 3, 0, 4, 6, 1, 7, 5],
        [0, 7, 1, 5, 2, 3, 6, 4], [1, 4, 6, 2, 7, 0, 5, 3],
        [7, 2, 5, 3, 1, 4, 0, 6], [3, 6, 4, 0, 5, 2, 1, 7]],
}


def validate_ring_latin(n: int, phi: list[list[int]]) -> None:
    """Assert the three defining properties of a Latin ring schedule."""
    expect = set(range(n))
    for u in range(n):
        if set(phi[u]) != expect:
            raise AssertionError(f"row {u} is not a permutation: {phi[u]}")
    for v in range(n):
        col = {phi[u][v] for u in range(n)}
        if col != expect:
            raise AssertionError(f"column {v} is not a permutation")
    occ: list[set[tuple[str, int]]] = [set() for _ in range(n)]
    for u in range(n):
        for v in range(n):
            r = ring_route(n, u, v)
            p = phi[u][v]
            clash = occ[p].intersection(r)
            if clash:
                raise AssertionError(
                    f"phase {p}: pair ({u},{v}) reuses fibers {sorted(clash)}"
                )
            occ[p].update(r)


def ring_latin_schedule(n: int, *, seed: int = 0) -> list[list[int]] | None:
    """Latin ring schedule for radix ``n``: precomputed table or search.

    Returns ``None`` when no Latin schedule exists (fiber load exceeds
    ``n``) or the search budget runs out.
    """
    if n in PRECOMPUTED:
        return PRECOMPUTED[n]
    if n == 1:
        return [[0]]
    return solve_ring_latin(n, seed=seed)
