"""Lower bounds for phased AAPC decompositions.

Terminology: a *phase* of an AAPC decomposition is a configuration (a
conflict-free connection set), so the number of phases is exactly the
multiplexing degree needed to realise all-to-all, and the general
schedule bounds of :mod:`repro.core.bounds` apply.  Two are worth naming
for AAPC specifically:

**injection bound** ``N - 1``
    Every node must light its injection fiber once per destination.

**link-load bound**
    A directed link carries one connection per phase, so
    ``phases >= max link load`` of the routed all-pairs set.  On an
    ``N x N`` torus with balanced half-ring routing the transit links
    dominate and the bound evaluates to ``N^3 / 8`` -- the figure the
    paper quotes from Hinrichs et al. [8] ("at most N^3/8 phases are
    needed for AAPC communication in an N x N torus").

    Derivation for even ``N``: a row's ``+x`` fibers carry, for every
    source in the row, the x-segments towards ``N/2`` of the columns
    (offsets ``+1 .. +N/2-1`` fully, offset ``N/2`` half by the
    balanced tie-break), each times ``N`` destination rows.  Summing
    ``N * (1 + 2 + ... + (N/2-1)) + N/2 * N/2`` hops per direction per
    row times ``N`` rows gives ``N^4/8`` hops per direction family over
    ``N^2`` fibers: ``N^3/8`` phases with every fiber lit in every
    phase.
"""

from __future__ import annotations

from repro.core.bounds import max_link_load_bound
from repro.core.paths import route_requests
from repro.core.requests import Request
from repro.topology.base import Topology


def all_pairs_requests(topology: Topology) -> list[Request]:
    """The complete AAPC request list, lexicographic (src, dst) order."""
    n = topology.num_nodes
    return [Request(s, d) for s in range(n) for d in range(n) if s != d]


def aapc_injection_bound(topology: Topology) -> int:
    """Injection-fiber bound: ``num_nodes - 1`` phases."""
    return topology.num_nodes - 1


def aapc_link_bound(topology: Topology) -> int:
    """Max link load of the routed all-pairs set (routing-policy aware)."""
    conns = route_requests(topology, all_pairs_requests(topology))
    return max_link_load_bound(conns)


def torus_phase_optimum(n: int) -> int:
    """The paper's quoted optimum for an even ``n x n`` torus: ``n^3/8``."""
    if n % 2 != 0:
        raise ValueError("the N^3/8 formula assumes an even torus radix")
    return n**3 // 8
