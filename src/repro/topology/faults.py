"""Link failures and fault-tolerant routing -- extension.

A fiber cut in an all-optical network is handled naturally by compiled
communication: the compiler reroutes the affected connections around
the failure and reschedules -- no protection switching hardware in the
data plane.  :class:`FaultyTopology` wraps any topology with a set of
failed *transit* links (injection/ejection fibers are part of the PE
attachment and are not failable) and routes around them:

1. try the base topology's default route;
2. try alternative dimension orders and wrap directions (YX instead of
   XY, the long way around a ring) -- still minimal per dimension and
   cheap to enumerate on a k-ary n-cube;
3. fall back to a BFS shortest path over the surviving fiber graph,
   which succeeds whenever the switches remain connected.

Because the wrapper *is* a :class:`~repro.topology.base.Topology`, the
whole stack -- schedulers, code generation, both simulators -- works
unmodified on a degraded network; tests assert that a rescheduled
pattern stays valid and quantify the degree inflation failures cause.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

import networkx as nx

from repro.topology.base import RoutingError, Topology
from repro.topology.kary_ncube import KAryNCube
from repro.topology.links import Link, LinkKind


class FaultyTopology(Topology):
    """A topology with failed transit fibers, routing around them."""

    def __init__(self, base: Topology, failed: Iterable[int] = ()) -> None:
        self.base = base
        self.num_nodes = base.num_nodes
        self.num_transit_links = base.num_transit_links
        self._failed: set[int] = set()
        self._graph: nx.DiGraph | None = None
        for link in failed:
            self.fail_link(link)

    # -- failure management ------------------------------------------------
    @property
    def failed_links(self) -> frozenset[int]:
        return frozenset(self._failed)

    def fail_link(self, link_id: int) -> None:
        """Mark a transit fiber as failed."""
        info = self.base.link_info(link_id)
        if info.kind is not LinkKind.TRANSIT:
            raise ValueError(
                f"only transit fibers can fail; {link_id} is {info.kind.value}"
            )
        self._failed.add(link_id)
        self._graph = None
        self.invalidate_route_cache()

    def restore_link(self, link_id: int) -> None:
        """Repair a previously failed fiber."""
        self._failed.discard(link_id)
        self._graph = None
        self.invalidate_route_cache()

    # -- routing ------------------------------------------------------------
    def _transit_route(self, src: int, dst: int) -> tuple[int, ...]:
        default = self.base._transit_route(src, dst)
        if self._failed.isdisjoint(default):
            return default
        if isinstance(self.base, KAryNCube):
            survivors = [
                c
                for c in self._dimension_order_candidates(src, dst)
                if self._failed.isdisjoint(c)
            ]
            if survivors:
                return min(survivors, key=len)
        return self._bfs_route(src, dst)

    def _dimension_order_candidates(self, src: int, dst: int):
        """Minimal-per-dimension routes over all dim orders/directions."""
        base: KAryNCube = self.base  # type: ignore[assignment]
        src_c, dst_c = base.coords(src), base.coords(dst)
        ndims = len(base.dims)
        active = [d for d in range(ndims) if src_c[d] != dst_c[d]]
        for order in itertools.permutations(active):
            for signs in itertools.product((True, False), repeat=len(active)):
                links: list[int] = []
                cur = list(src_c)
                for dim, positive in zip(order, signs):
                    k = base.dims[dim]
                    dist = (dst_c[dim] - cur[dim]) % k if positive else (cur[dim] - dst_c[dim]) % k
                    if dist == 0:
                        continue
                    step = 1 if positive else -1
                    for _ in range(dist):
                        links.append(base.transit_link(base.node_at(cur), dim, positive))
                        cur[dim] = (cur[dim] + step) % k
                yield tuple(links)

    def _surviving_graph(self) -> nx.DiGraph:
        if self._graph is None:
            g = nx.DiGraph()
            g.add_nodes_from(self.base.iter_nodes())
            for link_id in range(self.base.transit_link_base, self.base.num_links):
                if link_id in self._failed:
                    continue
                info = self.base.link_info(link_id)
                if info.dst >= 0:
                    g.add_edge(info.src, info.dst, link=link_id)
            self._graph = g
        return self._graph

    def _bfs_route(self, src: int, dst: int) -> tuple[int, ...]:
        g = self._surviving_graph()
        try:
            nodes = nx.shortest_path(g, src, dst)
        except nx.NetworkXNoPath:
            raise RoutingError(
                f"switches {src} and {dst} are disconnected by "
                f"{len(self._failed)} fiber failures"
            ) from None
        return tuple(
            g.edges[u, v]["link"] for u, v in zip(nodes, nodes[1:])
        )

    # -- introspection -------------------------------------------------------
    def transit_link_info(self, offset: int) -> Link:
        return self.base.transit_link_info(offset)

    @property
    def signature(self) -> str:
        failed = ",".join(str(l) for l in sorted(self._failed)) or "none"
        return f"faulty({self.base.signature})[{failed}]"
