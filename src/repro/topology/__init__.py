"""Network topology substrate for all-optical TDM interconnects.

The paper's target machine is a multiprocessor whose nodes are connected
by an all-optical circuit-switching network: every processing element
(PE) is attached to an electro-optical crossbar switch, and the switches
are wired in a regular topology (the paper uses a 2-D torus; Fig. 3 uses
a linear array).  This package models:

* **directed optical links** (:mod:`repro.topology.links`) -- including
  the PE-to-switch *injection* link and switch-to-PE *ejection* link,
  which is what makes two connections with a common endpoint conflict
  ("conflicts arise in the communication switches", paper section 3.4);
* **topologies** (:mod:`repro.topology.torus`, :mod:`~repro.topology.ring`,
  :mod:`~repro.topology.linear`, :mod:`~repro.topology.mesh`,
  :mod:`~repro.topology.kary_ncube`) with deterministic shortest-path
  routing, because in a circuit-switched all-optical network the entire
  source-to-destination light path is held for the duration of a time
  slot;
* **the 5x5 crossbar switch** (:mod:`repro.topology.switch`) used by the
  code generator to translate configurations into per-switch register
  settings.

All topologies hand out *integer link identifiers*; a routed connection
is simply a tuple of link ids, and two connections conflict iff their
link-id sets intersect.  This single rule subsumes link conflicts,
injection-port conflicts and ejection-port conflicts.
"""

from repro.topology.links import Link, LinkKind
from repro.topology.base import Topology, RoutingError
from repro.topology.linear import LinearArray
from repro.topology.ring import Ring
from repro.topology.mesh import Mesh2D
from repro.topology.torus import Torus2D, TieBreak
from repro.topology.kary_ncube import KAryNCube
from repro.topology.switch import CrossbarSwitch, SwitchState, PortName
from repro.topology.faults import FaultyTopology
from repro.topology.omega import OmegaNetwork

__all__ = [
    "Link",
    "LinkKind",
    "Topology",
    "RoutingError",
    "LinearArray",
    "Ring",
    "Mesh2D",
    "Torus2D",
    "TieBreak",
    "KAryNCube",
    "FaultyTopology",
    "OmegaNetwork",
    "CrossbarSwitch",
    "SwitchState",
    "PortName",
]
