"""Linear array (path) topology -- the Fig. 3 example substrate.

The paper illustrates greedy suboptimality on five linearly connected
nodes with requests ``{(0,2), (1,3), (3,4), (2,4)}``.  A linear array is
a 1-D mesh: node ``i`` is wired to ``i-1`` and ``i+1`` with no
wrap-around, and routing is the unique straight path.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.links import Link, LinkKind


class LinearArray(Topology):
    """``n`` linearly connected nodes.

    Transit link ids (as offsets from ``transit_link_base``)::

        offset i           : fiber i -> i+1      for i in [0, n-2]
        offset (n-1) + i   : fiber i+1 -> i      for i in [0, n-2]
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"linear array needs >= 2 nodes, got {n}")
        self.n = n
        self.num_nodes = n
        self.num_transit_links = 2 * (n - 1)

    def forward_link(self, i: int) -> int:
        """Link id of the fiber ``i -> i+1``."""
        if not 0 <= i < self.n - 1:
            raise ValueError(f"no forward fiber leaves node {i}")
        return self.transit_link_base + i

    def backward_link(self, i: int) -> int:
        """Link id of the fiber ``i+1 -> i``."""
        if not 0 <= i < self.n - 1:
            raise ValueError(f"no backward fiber enters node {i}")
        return self.transit_link_base + (self.n - 1) + i

    def _transit_route(self, src: int, dst: int) -> tuple[int, ...]:
        if src < dst:
            return tuple(self.forward_link(i) for i in range(src, dst))
        return tuple(self.backward_link(i - 1) for i in range(src, dst, -1))

    def transit_link_info(self, offset: int) -> Link:
        if offset < self.n - 1:
            return Link(LinkKind.TRANSIT, offset, offset + 1, direction="+x")
        i = offset - (self.n - 1)
        return Link(LinkKind.TRANSIT, i + 1, i, direction="-x")

    @property
    def signature(self) -> str:
        return f"linear:{self.n}"
