"""2-D torus of 5x5 electro-optical switches (the paper's Fig. 1 machine).

Every node hosts one processing element attached to a 5x5 crossbar: one
port pair to the PE and four port pairs to the +x, -x, +y, -y
neighbours.  Node ids follow the paper's numbering, ``id = x + width*y``
(node 0 in a corner, ids increasing along rows).

:class:`Torus2D` is a thin specialisation of
:class:`repro.topology.kary_ncube.KAryNCube` adding 2-D conveniences
(``width``/``height``, ``(x, y)`` coordinates) used by pattern
generators and the examples.
"""

from __future__ import annotations

from repro.topology.kary_ncube import KAryNCube, TieBreak

__all__ = ["Torus2D", "TieBreak"]


class Torus2D(KAryNCube):
    """``width x height`` torus with XY dimension-order routing.

    Parameters
    ----------
    width, height:
        Radices of the x and y rings.  The paper evaluates 8 x 8 (64
        PEs) and uses 4 x 4 for the Fig. 1 example.
    tie_break:
        Wrap-around direction policy for offsets of exactly half the
        ring; see :class:`repro.topology.kary_ncube.TieBreak`.
    """

    def __init__(
        self,
        width: int,
        height: int | None = None,
        tie_break: TieBreak = TieBreak.BALANCED,
    ) -> None:
        if height is None:
            height = width
        super().__init__((width, height), tie_break=tie_break)
        self.width = width
        self.height = height

    def xy(self, node: int) -> tuple[int, int]:
        """``(x, y)`` coordinates of ``node``."""
        x, y = self.coords(node)
        return x, y

    def node(self, x: int, y: int) -> int:
        """Node id at ``(x, y)`` (coordinates reduced mod the radices)."""
        return self.node_at((x, y))

    @property
    def signature(self) -> str:
        return f"torus2d:{self.width}x{self.height}:tie={self.tie_break.value}"
