"""Generalized k-ary n-cube (n-dimensional torus) with dimension-order routing.

The paper's machine model is the 2-D torus of Fig. 1, but nothing in the
scheduling framework is specific to two dimensions, so the substrate is
implemented once for arbitrary mixed-radix tori and specialised by
:class:`repro.topology.torus.Torus2D` and :class:`repro.topology.ring.Ring`.

Coordinates and node ids
------------------------
``dims = (k_0, k_1, ..., k_{n-1})`` and node ids are mixed-radix with
dimension 0 varying fastest::

    id = c_0 + k_0 * (c_1 + k_1 * (c_2 + ...))

For a ``W x H`` torus this is the paper's numbering: ``id = x + W * y``.

Routing
-------
Deterministic dimension-order routing: the path corrects dimension 0
first, then dimension 1, etc., always along the shorter way around each
ring.  When the offset in a dimension is exactly ``k/2`` (even ``k``)
both directions are shortest; the ``tie_break`` policy decides:

``TieBreak.POSITIVE``
    always go in the positive direction (simplest, fully deterministic);

``TieBreak.BALANCED``
    go positive iff the source's coordinate in that dimension is even.
    This splits the half-ring traffic of dense patterns evenly over the
    two directions, which matters for approaching the optimal
    all-to-all phase count (see :mod:`repro.aapc.bounds`).

Transit link ids
----------------
Each node drives ``2n`` transit fibers (one per direction per
dimension).  Transit offset of the fiber leaving node ``v`` in dimension
``d``, direction ``s`` (0 = positive, 1 = negative) is
``v * 2n + 2d + s``.  Dimensions with ``k == 1`` have no links and no
traffic; dimensions with ``k == 2`` keep both fibers (the +1 and -1
neighbours coincide, giving two parallel fibers, which is how a physical
2-ary dimension is usually cabled).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.topology.base import Topology
from repro.topology.links import Link, LinkKind

_DIM_NAMES = "xyzw"


class TieBreak(enum.Enum):
    """Direction policy for half-ring (distance exactly k/2) offsets."""

    POSITIVE = "positive"
    BALANCED = "balanced"


def _dim_name(dim: int) -> str:
    return _DIM_NAMES[dim] if dim < len(_DIM_NAMES) else f"d{dim}"


class KAryNCube(Topology):
    """Mixed-radix n-dimensional torus with dimension-order routing."""

    def __init__(
        self,
        dims: Sequence[int],
        tie_break: TieBreak = TieBreak.BALANCED,
    ) -> None:
        dims = tuple(int(k) for k in dims)
        if not dims:
            raise ValueError("at least one dimension is required")
        if any(k < 1 for k in dims):
            raise ValueError(f"all radices must be >= 1, got {dims}")
        self.dims = dims
        self.tie_break = tie_break
        n = 1
        for k in dims:
            n *= k
        self.num_nodes = n
        self._ndims = len(dims)
        self.num_transit_links = n * 2 * self._ndims

    # ------------------------------------------------------------------
    # coordinates
    # ------------------------------------------------------------------
    def coords(self, node: int) -> tuple[int, ...]:
        """Mixed-radix coordinates of ``node`` (dimension 0 first)."""
        self._check_node(node)
        out = []
        for k in self.dims:
            out.append(node % k)
            node //= k
        return tuple(out)

    def node_at(self, coords: Sequence[int]) -> int:
        """Node id at ``coords`` (coordinates are reduced mod the radix)."""
        if len(coords) != self._ndims:
            raise ValueError(f"expected {self._ndims} coordinates, got {len(coords)}")
        node = 0
        for k, c in zip(reversed(self.dims), reversed(tuple(coords))):
            node = node * k + (c % k)
        return node

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def transit_link(self, node: int, dim: int, positive: bool) -> int:
        """Link id of the fiber leaving ``node`` along ``dim``."""
        self._check_node(node)
        if not 0 <= dim < self._ndims:
            raise ValueError(f"dimension {dim} out of range")
        off = node * 2 * self._ndims + 2 * dim + (0 if positive else 1)
        return self.transit_link_base + off

    def transit_link_info(self, offset: int) -> Link:
        node, rest = divmod(offset, 2 * self._ndims)
        dim, sign = divmod(rest, 2)
        positive = sign == 0
        k = self.dims[dim]
        c = self.coords(node)
        nbr = list(c)
        nbr[dim] = (c[dim] + (1 if positive else -1)) % k
        return Link(
            LinkKind.TRANSIT,
            node,
            self.node_at(nbr),
            direction=("+" if positive else "-") + _dim_name(dim),
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def signed_offset(self, src_c: int, dst_c: int, dim: int) -> int:
        """Shortest signed offset from ``src_c`` to ``dst_c`` along ``dim``.

        Positive means travel in the positive direction.  A half-ring
        offset is resolved by the tie-break policy.
        """
        k = self.dims[dim]
        d = (dst_c - src_c) % k
        if d == 0:
            return 0
        if 2 * d < k:
            return d
        if 2 * d > k:
            return d - k
        # exactly half way around
        if self.tie_break is TieBreak.POSITIVE or src_c % 2 == 0:
            return d
        return d - k

    def _transit_route(self, src: int, dst: int) -> tuple[int, ...]:
        cur = list(self.coords(src))
        dst_c = self.coords(dst)
        links: list[int] = []
        for dim, k in enumerate(self.dims):
            off = self.signed_offset(cur[dim], dst_c[dim], dim)
            step = 1 if off > 0 else -1
            for _ in range(abs(off)):
                links.append(self.transit_link(self.node_at(cur), dim, off > 0))
                cur[dim] = (cur[dim] + step) % k
        return tuple(links)

    def distance(self, src: int, dst: int) -> int:
        """Switch-to-switch hop distance under the routing policy."""
        if src == dst:
            return 0
        sc, dc = self.coords(src), self.coords(dst)
        return sum(abs(self.signed_offset(s, d, dim)) for dim, (s, d) in enumerate(zip(sc, dc)))

    # ------------------------------------------------------------------
    @property
    def signature(self) -> str:
        dims = "x".join(str(k) for k in self.dims)
        return f"kary-ncube:{dims}:tie={self.tie_break.value}"
