"""Omega multistage interconnection network (MIN) -- extension.

The paper's TDM machinery descends from Qiao & Melhem's work on
*multistage* networks (ref [13], "Reconfiguration with Time Division
Multiplexed MINs"), so a MIN substrate belongs in the reproduction: the
schedulers, code generator and simulators run unchanged on it, and the
ablation bench can ask how the torus results transfer.

An Omega network for ``N = 2^k`` PEs has ``k`` stages of ``N/2``
two-by-two switches, each stage preceded by a perfect-shuffle wiring.
Every source/destination pair has a **unique** path -- self-routing by
destination bits -- which fits this library's fixed-path model exactly:

* entering stage ``j`` the signal at row ``p`` is shuffled to row
  ``rol(p)`` (rotate-left of the k-bit row index);
* the stage's switch then sets the row's low bit to destination bit
  ``k-1-j`` (straight or exchange).

Two connections conflict iff they leave some stage on the same wire
(same row after the same stage) -- or share a PE fiber, as everywhere
else in the library.  The classic MIN facts fall out and are asserted
in the tests: the identity permutation routes conflict-free, bit
reversal is a worst case needing ``sqrt(N)``-ish slots, and all-to-all
loads every stage wire exactly ``N`` times, so AAPC needs at least
``N`` phases (versus ``N^3/8 / ...`` -- i.e. 64 -- on the same-size
torus).

Transit link ids (offsets from ``transit_link_base``): the wire leaving
stage ``j`` at row ``p`` is ``j * N + p``.  Stage-(k-1) wires feed the
ejection fibers one-to-one; both appear in the path, which is harmless
(consistent conflicts) and keeps the uniform inject/transit/eject
layout every other component expects.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.links import Link, LinkKind


class OmegaNetwork(Topology):
    """Omega MIN over ``n = 2^k`` processing elements."""

    def __init__(self, n: int) -> None:
        if n < 2 or n & (n - 1):
            raise ValueError(f"omega network needs a power-of-two PE count, got {n}")
        self.n = n
        self.bits = n.bit_length() - 1
        self.num_nodes = n
        self.num_transit_links = self.bits * n

    # -- structure -----------------------------------------------------------
    def _rol(self, p: int) -> int:
        """Rotate-left of a k-bit row index (the perfect shuffle)."""
        return ((p << 1) | (p >> (self.bits - 1))) & (self.n - 1)

    def stage_wire(self, stage: int, row: int) -> int:
        """Link id of the wire leaving ``stage`` at ``row``."""
        if not 0 <= stage < self.bits:
            raise ValueError(f"stage {stage} out of range [0, {self.bits})")
        self._check_node(row)
        return self.transit_link_base + stage * self.n + row

    def switch_of(self, stage: int, row: int) -> int:
        """Index of the 2x2 switch handling ``row`` in ``stage``."""
        if not 0 <= stage < self.bits:
            raise ValueError(f"stage {stage} out of range")
        return row >> 1

    # -- routing ---------------------------------------------------------------
    def _transit_route(self, src: int, dst: int) -> tuple[int, ...]:
        links = []
        p = src
        for stage in range(self.bits):
            p = self._rol(p)
            dst_bit = (dst >> (self.bits - 1 - stage)) & 1
            p = (p & ~1) | dst_bit
            links.append(self.stage_wire(stage, p))
        assert p == dst
        return tuple(links)

    def transit_link_info(self, offset: int) -> Link:
        stage, row = divmod(offset, self.n)
        # src/dst carry the stage's row; direction labels the stage.
        return Link(LinkKind.TRANSIT, row, row, direction=f"s{stage}")

    @property
    def signature(self) -> str:
        return f"omega:{self.n}"
