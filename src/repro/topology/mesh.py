"""2-D mesh (torus without wrap-around links) -- ablation topology.

The paper evaluates only the torus; the mesh lets the benchmarks ask how
much of the schedulers' behaviour depends on wrap-around bandwidth
(``benchmarks/bench_ablation.py``).
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.links import Link, LinkKind


class Mesh2D(Topology):
    """``width x height`` mesh with XY dimension-order routing.

    Node ids are ``x + width * y`` as on the torus.  Each node notionally
    drives four transit fibers (+x, -x, +y, -y) but fibers that would
    leave the mesh boundary are never routed over; the id space keeps
    the dense ``4 * num_nodes`` layout of the torus for uniformity.
    """

    def __init__(self, width: int, height: int | None = None) -> None:
        if height is None:
            height = width
        if width < 1 or height < 1:
            raise ValueError(f"bad mesh dimensions {width}x{height}")
        self.width = width
        self.height = height
        self.num_nodes = width * height
        self.num_transit_links = 4 * self.num_nodes

    def xy(self, node: int) -> tuple[int, int]:
        self._check_node(node)
        return node % self.width, node // self.width

    def node(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return x + self.width * y

    _DIRS = ("+x", "-x", "+y", "-y")

    def transit_link(self, node: int, direction: int) -> int:
        """Fiber leaving ``node``; ``direction`` indexes ``(+x,-x,+y,-y)``."""
        self._check_node(node)
        x, y = self.xy(node)
        if direction == 0 and x == self.width - 1:
            raise ValueError(f"node {node} has no +x neighbour")
        if direction == 1 and x == 0:
            raise ValueError(f"node {node} has no -x neighbour")
        if direction == 2 and y == self.height - 1:
            raise ValueError(f"node {node} has no +y neighbour")
        if direction == 3 and y == 0:
            raise ValueError(f"node {node} has no -y neighbour")
        return self.transit_link_base + node * 4 + direction

    def _transit_route(self, src: int, dst: int) -> tuple[int, ...]:
        sx, sy = self.xy(src)
        dx, dy = self.xy(dst)
        links: list[int] = []
        while sx != dx:
            direction = 0 if dx > sx else 1
            links.append(self.transit_link(self.node(sx, sy), direction))
            sx += 1 if dx > sx else -1
        while sy != dy:
            direction = 2 if dy > sy else 3
            links.append(self.transit_link(self.node(sx, sy), direction))
            sy += 1 if dy > sy else -1
        return tuple(links)

    def transit_link_info(self, offset: int) -> Link:
        node, direction = divmod(offset, 4)
        x, y = self.xy(node)
        step = {0: (1, 0), 1: (-1, 0), 2: (0, 1), 3: (0, -1)}[direction]
        nx, ny = x + step[0], y + step[1]
        dst = self.node(nx, ny) if 0 <= nx < self.width and 0 <= ny < self.height else -1
        return Link(LinkKind.TRANSIT, node, dst, direction=self._DIRS[direction])

    @property
    def signature(self) -> str:
        return f"mesh2d:{self.width}x{self.height}"
