"""Electro-optical crossbar switch model.

Each node of the paper's machine carries a 5x5 electro-optical switch:
one input/output port pair to the local PE and one pair per neighbouring
switch.  A network *state* is the set of all switch states; writing the
electronic control registers selects which input drives which output.
Under TDM the registers are circular shift registers holding one word
per time slot, so the network cycles through K configurations with no
run-time control traffic -- this is exactly the artifact the compiler
emits (:mod:`repro.compiler.codegen`).

The model here is deliberately topology-agnostic: a port is identified
by the *link id* attached to it, so a switch state is a partial mapping
``input link id -> output link id``.  :class:`CrossbarSwitch` also
assigns dense local port indices (PE port = 0, transit ports sorted by
link id) so states can be encoded as small register words, mimicking the
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.base import Topology
from repro.topology.links import LinkKind

#: Local port index of the PE input/output on every switch.
PortName = int
PE_PORT: PortName = 0


class SwitchConfigError(ValueError):
    """Raised when a switch state is not a legal crossbar setting."""


@dataclass
class SwitchState:
    """State of one crossbar for one time slot.

    ``mapping`` sends input link ids to output link ids.  A legal
    crossbar state uses each input at most once (guaranteed by the dict)
    and each output at most once (validated).
    """

    node: int
    mapping: dict[int, int] = field(default_factory=dict)

    def connect(self, in_link: int, out_link: int) -> None:
        """Route ``in_link`` to ``out_link``; both must be free."""
        if in_link in self.mapping:
            raise SwitchConfigError(
                f"switch {self.node}: input link {in_link} already driven "
                f"(to {self.mapping[in_link]})"
            )
        if out_link in self.mapping.values():
            raise SwitchConfigError(
                f"switch {self.node}: output link {out_link} already in use"
            )
        self.mapping[in_link] = out_link

    def output_of(self, in_link: int) -> int | None:
        """Output link driven by ``in_link``, or None if unconnected."""
        return self.mapping.get(in_link)


class CrossbarSwitch:
    """Port inventory and register encoding for one node's crossbar."""

    def __init__(self, topology: Topology, node: int, *,
                 in_links: tuple[int, ...], out_links: tuple[int, ...]) -> None:
        self.topology = topology
        self.node = node
        # PE port first, then transit ports in link-id order.
        self.in_links = in_links
        self.out_links = out_links
        self._in_index = {link: i for i, link in enumerate(in_links)}
        self._out_index = {link: i for i, link in enumerate(out_links)}

    @property
    def radix(self) -> int:
        """Number of input (== output) ports; 5 on the paper's torus."""
        return max(len(self.in_links), len(self.out_links))

    def encode(self, state: SwitchState) -> tuple[int, ...]:
        """Encode a state as a register word.

        The word is a tuple with one entry per input port: the local
        output-port index it drives, or -1 when the input is dark.  This
        is the value a circular shift register would hold for one slot.
        """
        if state.node != self.node:
            raise SwitchConfigError(
                f"state for node {state.node} given to switch {self.node}"
            )
        word = [-1] * len(self.in_links)
        for in_link, out_link in state.mapping.items():
            try:
                i = self._in_index[in_link]
            except KeyError:
                raise SwitchConfigError(
                    f"link {in_link} is not an input of switch {self.node}"
                ) from None
            try:
                o = self._out_index[out_link]
            except KeyError:
                raise SwitchConfigError(
                    f"link {out_link} is not an output of switch {self.node}"
                ) from None
            word[i] = o
        used = [w for w in word if w >= 0]
        if len(set(used)) != len(used):
            raise SwitchConfigError(f"switch {self.node}: output used twice")
        return tuple(word)

    def decode(self, word: tuple[int, ...]) -> SwitchState:
        """Inverse of :meth:`encode` (used to round-trip-test codegen)."""
        state = SwitchState(self.node)
        for i, o in enumerate(word):
            if o >= 0:
                state.connect(self.in_links[i], self.out_links[o])
        return state


def build_switches(topology: Topology) -> dict[int, CrossbarSwitch]:
    """Construct the crossbar inventory for every node of ``topology``.

    Scans the transit links once to recover the switch adjacency, then
    attaches the PE (injection/ejection) ports.  The PE port is always
    local port 0.
    """
    ins: dict[int, list[int]] = {v: [] for v in topology.iter_nodes()}
    outs: dict[int, list[int]] = {v: [] for v in topology.iter_nodes()}
    for link_id in range(topology.transit_link_base, topology.num_links):
        info = topology.link_info(link_id)
        assert info.kind is LinkKind.TRANSIT
        if info.dst >= 0:  # boundary fibers on a mesh have dst == -1
            outs[info.src].append(link_id)
            ins[info.dst].append(link_id)
    switches = {}
    for v in topology.iter_nodes():
        switches[v] = CrossbarSwitch(
            topology,
            v,
            in_links=(topology.inject_link(v), *sorted(ins[v])),
            out_links=(topology.eject_link(v), *sorted(outs[v])),
        )
    return switches
