"""1-D ring (a 1-dimensional torus).

Used by unit tests and by the AAPC phase builder's exactly-analysable
base case; also a handy topology for teaching examples.
"""

from __future__ import annotations

from repro.topology.kary_ncube import KAryNCube, TieBreak

__all__ = ["Ring"]


class Ring(KAryNCube):
    """Ring of ``n`` nodes with shortest-way routing."""

    def __init__(self, n: int, tie_break: TieBreak = TieBreak.BALANCED) -> None:
        super().__init__((n,), tie_break=tie_break)
        self.n = n

    @property
    def signature(self) -> str:
        return f"ring:{self.n}:tie={self.tie_break.value}"
