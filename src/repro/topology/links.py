"""Directed optical link model.

A connection in an all-optical circuit-switched network occupies a
sequence of *directed* optical links for the whole duration of its time
slot:

``PE(s) --inject--> switch(s) --...inter-switch links...--> switch(d) --eject--> PE(d)``

Three kinds of links exist:

``INJECT``
    The fiber from a processing element into its switch.  Every switch
    has exactly one PE input, so two connections **with the same source**
    always conflict -- they would need the same injection fiber in the
    same time slot.

``EJECT``
    The fiber from a switch to its processing element.  Two connections
    **with the same destination** always conflict for the same reason.

``TRANSIT``
    A fiber between two neighbouring switches.  Two connections whose
    routes share a transit fiber conflict.

The conflict relation used throughout the library is therefore simply
*link-set intersection*; no special-casing of "switch conflicts" versus
"link conflicts" is needed (the paper distinguishes them in prose for
patterns such as the ring, where all conflicts happen at the PE ports).

Topologies encode links as dense integers for speed; :class:`Link` is
the human-readable decoding returned by
:meth:`repro.topology.base.Topology.link_info`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LinkKind(enum.Enum):
    """The three kinds of directed optical fiber in the system."""

    #: PE -> switch fiber (one per node).
    INJECT = "inject"
    #: switch -> PE fiber (one per node).
    EJECT = "eject"
    #: switch -> neighbouring-switch fiber.
    TRANSIT = "transit"


@dataclass(frozen=True, slots=True)
class Link:
    """A decoded directed link.

    Attributes
    ----------
    kind:
        Which of the three fiber kinds this is.
    src:
        Node whose switch (or PE, for ``INJECT``) drives the fiber.
    dst:
        Node whose switch (or PE, for ``EJECT``) terminates the fiber.
        For ``INJECT``/``EJECT`` links ``src == dst`` (the PE and its
        switch share a node id).
    direction:
        For ``TRANSIT`` links on a dimensional topology, the dimension/
        direction label (e.g. ``"+x"``); ``None`` otherwise.
    """

    kind: LinkKind
    src: int
    dst: int
    direction: str | None = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is LinkKind.INJECT:
            return f"inject({self.src})"
        if self.kind is LinkKind.EJECT:
            return f"eject({self.dst})"
        return f"{self.src}->{self.dst}[{self.direction or '?'}]"
