"""Abstract topology interface.

A :class:`Topology` is the substrate every other layer builds on.  It
must provide:

* a dense node id space ``0 .. num_nodes - 1``;
* a dense **link id** space (integers), partitioned into one injection
  link and one ejection link per node plus the topology's transit links;
* a deterministic ``route(src, dst)`` returning the full light path as a
  tuple of link ids, *including* the injection and ejection fibers.

Routing must be deterministic because the off-line schedulers reason
about fixed paths: the compiler picks time slots, not routes.  (Route
choice policies, e.g. the wrap-around tie break on a torus, are
constructor parameters so experiments can treat them as ablations.)

Link-id layout
--------------
All concrete topologies share the layout::

    0              .. num_nodes-1          injection link of node v  (id v)
    num_nodes      .. 2*num_nodes-1        ejection  link of node v  (id num_nodes + v)
    2*num_nodes    ..                      transit links (topology specific)

Keeping the layout uniform lets the simulator and the bounds code index
per-link state with flat numpy arrays.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from collections.abc import Iterator

from repro.topology.links import Link, LinkKind

# Route-cache hit/miss counters live in repro.core.perf, but repro.core's
# package init imports this module, so bind lazily at first route() call
# (perf.reset() zeroes the instance in place -- the binding stays valid).
_COUNTERS = None


def _counters():
    global _COUNTERS
    if _COUNTERS is None:
        from repro.core.perf import COUNTERS

        _COUNTERS = COUNTERS
    return _COUNTERS


class RoutingError(ValueError):
    """Raised for invalid routing queries (bad node id, src == dst)."""


class Topology(abc.ABC):
    """Base class for all interconnect topologies.

    Subclasses must set :attr:`num_nodes` and :attr:`num_transit_links`
    before ``__init__`` returns and implement :meth:`_transit_route` and
    :meth:`transit_link_info`.
    """

    #: number of processing elements / switches.
    num_nodes: int
    #: number of directed switch-to-switch fibers.
    num_transit_links: int
    #: max (src, dst) entries the per-instance route cache retains.
    route_cache_size: int = 1 << 16

    # ------------------------------------------------------------------
    # link id helpers
    # ------------------------------------------------------------------
    def inject_link(self, node: int) -> int:
        """Link id of the PE -> switch fiber of ``node``."""
        self._check_node(node)
        return node

    def eject_link(self, node: int) -> int:
        """Link id of the switch -> PE fiber of ``node``."""
        self._check_node(node)
        return self.num_nodes + node

    @property
    def transit_link_base(self) -> int:
        """First link id used for transit links."""
        return 2 * self.num_nodes

    @property
    def num_links(self) -> int:
        """Total number of directed links (inject + eject + transit)."""
        return 2 * self.num_nodes + self.num_transit_links

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Full light path from ``src``'s PE to ``dst``'s PE.

        Returns the tuple ``(inject(src), t_1, ..., t_k, eject(dst))``
        where ``t_i`` are transit link ids.  ``k`` equals the routing
        distance between the two switches.

        Routes are deterministic, so results are memoised per instance
        in an LRU cache of :attr:`route_cache_size` pairs -- the table
        sweeps re-route the same (src, dst) pairs hundreds of times.
        Subclasses whose routes can change after construction (e.g.
        fault injection) must call :meth:`invalidate_route_cache`.

        Raises
        ------
        RoutingError
            If either endpoint is out of range or ``src == dst`` (a PE
            never talks to itself through the network).
        """
        cache = self._route_cache
        if cache is None:
            cache = self._route_cache = OrderedDict()
        key = (src, dst)
        path = cache.get(key)
        counters = _counters()
        if path is not None:
            counters.route_cache_hits += 1
            cache.move_to_end(key)
            return path
        counters.route_cache_misses += 1
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            raise RoutingError(f"src == dst == {src}: self-connections are not routed")
        transit = self._transit_route(src, dst)
        path = (self.inject_link(src), *transit, self.eject_link(dst))
        cache[key] = path
        if len(cache) > self.route_cache_size:
            cache.popitem(last=False)
        return path

    @property
    def _route_cache(self) -> OrderedDict | None:
        # Lazy per-instance storage: Topology subclasses predate the
        # cache and none call super().__init__.
        return self.__dict__.get("_route_cache_store")

    @_route_cache.setter
    def _route_cache(self, value: OrderedDict) -> None:
        self.__dict__["_route_cache_store"] = value

    def invalidate_route_cache(self) -> None:
        """Drop every memoised route (call after anything reroutes)."""
        self.__dict__.pop("_route_cache_store", None)

    def route_length(self, src: int, dst: int) -> int:
        """Number of links of ``route(src, dst)`` (inject + transit + eject).

        This is the "number of links in the connection" used as the
        numerator of the coloring heuristic's priority and the summand of
        the ordered-AAPC phase rank.
        """
        return len(self.route(src, dst))

    @abc.abstractmethod
    def _transit_route(self, src: int, dst: int) -> tuple[int, ...]:
        """Transit portion of the route; ``src != dst`` is guaranteed."""

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def link_info(self, link_id: int) -> Link:
        """Decode ``link_id`` into a :class:`~repro.topology.links.Link`."""
        if 0 <= link_id < self.num_nodes:
            return Link(LinkKind.INJECT, link_id, link_id)
        if self.num_nodes <= link_id < 2 * self.num_nodes:
            node = link_id - self.num_nodes
            return Link(LinkKind.EJECT, node, node)
        if 2 * self.num_nodes <= link_id < self.num_links:
            return self.transit_link_info(link_id - self.transit_link_base)
        raise ValueError(f"link id {link_id} out of range for {self!r}")

    @abc.abstractmethod
    def transit_link_info(self, offset: int) -> Link:
        """Decode transit link ``transit_link_base + offset``."""

    def iter_links(self) -> Iterator[int]:
        """All link ids, injection links first."""
        return iter(range(self.num_links))

    def iter_nodes(self) -> Iterator[int]:
        """All node ids."""
        return iter(range(self.num_nodes))

    @property
    @abc.abstractmethod
    def signature(self) -> str:
        """Stable string identifying topology *and* routing policy.

        Used as a cache key (e.g. by the AAPC phase builder), so any
        parameter that changes routes must appear here.
        """

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise RoutingError(f"node {node} out of range [0, {self.num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.signature}>"
