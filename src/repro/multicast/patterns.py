"""Multicast pattern generators (collective-operation shapes)."""

from __future__ import annotations

from repro.multicast.requests import MulticastRequest, MulticastSet


def broadcast_pattern(n: int, *, root: int = 0, size: int = 1) -> MulticastSet:
    """One-to-all broadcast from ``root``."""
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")
    dsts = tuple(i for i in range(n) if i != root)
    return MulticastSet(
        [MulticastRequest(root, dsts, size=size)], name=f"broadcast-{n}"
    )


def all_broadcast_pattern(n: int, *, size: int = 1) -> MulticastSet:
    """All-to-all broadcast (allgather): every node multicasts to all."""
    return MulticastSet(
        [
            MulticastRequest(s, tuple(d for d in range(n) if d != s), size=size)
            for s in range(n)
        ],
        name=f"all-broadcast-{n}",
    )


def row_multicast_pattern(width: int, height: int, *, size: int = 1) -> MulticastSet:
    """Each row's leader (column 0) multicasts to the rest of its row.

    The classic pattern of row-wise matrix algorithms (pivot row
    broadcast in LU, row scaling, ...); node ids are ``x + width * y``.
    """
    requests = []
    for y in range(height):
        leader = width * y
        dsts = tuple(x + width * y for x in range(1, width))
        requests.append(MulticastRequest(leader, dsts, size=size))
    return MulticastSet(requests, name=f"row-multicast-{width}x{height}")
