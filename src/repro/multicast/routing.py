"""Multicast tree construction.

The tree of a multicast request is the union of the topology's unicast
routes from the source to each destination.  Under deterministic
prefix-stable routing (dimension-order: two routes from one source
share a prefix and never remerge after diverging) that union *is* a
tree; :func:`route_multicasts` verifies the tree property anyway --
each switch is entered by at most one fiber -- so exotic topologies or
fault-rerouted paths that would silently create a DAG fail loudly
instead (a remerge would need an optical combiner, which the switch
model does not have).

:class:`MulticastConnection` duck-types
:class:`repro.core.paths.Connection` (``index``, ``links``,
``link_set``, ``num_links``), so the greedy and coloring schedulers and
the configuration machinery run on it unchanged.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.multicast.requests import MulticastRequest, MulticastSet
from repro.topology.base import Topology
from repro.topology.links import LinkKind


class MulticastTreeError(ValueError):
    """The union of unicast routes is not a tree on this topology."""


class MulticastConnection:
    """A routed multicast tree (scheduler-compatible footprint)."""

    __slots__ = ("index", "request", "links", "link_set", "branches")

    def __init__(
        self,
        index: int,
        request: MulticastRequest,
        links: tuple[int, ...],
        branches: dict[int, tuple[int, ...]],
    ) -> None:
        self.index = index
        self.request = request
        #: all tree links, deduplicated, in first-visit order.
        self.links = links
        self.link_set = frozenset(links)
        #: per-destination unicast path (shares prefixes with siblings).
        self.branches = branches

    @property
    def num_links(self) -> int:
        """Tree size in links (the scheduling 'length' of the request)."""
        return len(self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MulticastConnection #{self.index} {self.request} tree={self.num_links}>"


def route_multicasts(
    topology: Topology,
    requests: MulticastSet | Sequence[MulticastRequest],
) -> list[MulticastConnection]:
    """Build and verify the multicast tree of every request."""
    out = []
    for index, req in enumerate(requests):
        seen: list[int] = []
        seen_set: set[int] = set()
        entered_by: dict[int, int] = {}  # switch -> incoming link id
        branches: dict[int, tuple[int, ...]] = {}
        for dst in req.dsts:
            path = topology.route(req.src, dst)
            branches[dst] = path
            for link in path:
                info = topology.link_info(link)
                if link not in seen_set:
                    seen.append(link)
                    seen_set.add(link)
                    if info.kind is LinkKind.TRANSIT:
                        prior = entered_by.get(info.dst)
                        if prior is not None and prior != link:
                            raise MulticastTreeError(
                                f"multicast {req}: switch {info.dst} entered "
                                f"by fibers {prior} and {link} -- the route "
                                "union is not a tree"
                            )
                        entered_by[info.dst] = link
        out.append(
            MulticastConnection(
                index=index, request=req, links=tuple(seen), branches=branches
            )
        )
    return out
