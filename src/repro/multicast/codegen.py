"""Register generation for multicast trees (splitter-capable switches).

A multicast-capable crossbar lets one input drive *several* outputs
(an optical splitter behind the crossbar); inputs still may not share
an output.  :class:`FanoutState` models that, and the
generate/decode pair mirrors :mod:`repro.compiler.codegen` -- including
the trace-back audit, which here follows every fanout branch and must
recover exactly each tree's destination set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.configuration import ConfigurationSet
from repro.multicast.routing import MulticastConnection
from repro.topology.base import Topology
from repro.topology.links import LinkKind
from repro.topology.switch import CrossbarSwitch, SwitchConfigError, build_switches


@dataclass
class FanoutState:
    """One multicast-capable switch's state for one slot.

    ``mapping`` sends each input link id to the *set* of output link
    ids it drives; every output is driven by at most one input.
    """

    node: int
    mapping: dict[int, set[int]] = field(default_factory=dict)

    def connect(self, in_link: int, out_link: int) -> None:
        for other_in, outs in self.mapping.items():
            if out_link in outs and other_in != in_link:
                raise SwitchConfigError(
                    f"switch {self.node}: output {out_link} already driven "
                    f"by input {other_in}"
                )
        self.mapping.setdefault(in_link, set()).add(out_link)

    def outputs_of(self, in_link: int) -> frozenset[int]:
        return frozenset(self.mapping.get(in_link, ()))


@dataclass
class MulticastRegisterSchedule:
    """Register images with fanout words.

    A word has one entry per input port: the frozenset of local output
    port indices it drives (empty = dark input).
    """

    topology: Topology
    degree: int
    words: dict[int, list[tuple[frozenset[int], ...]]]
    switches: dict[int, CrossbarSwitch]


def _encode(switch: CrossbarSwitch, state: FanoutState) -> tuple[frozenset[int], ...]:
    out_index = {link: i for i, link in enumerate(switch.out_links)}
    in_index = {link: i for i, link in enumerate(switch.in_links)}
    word: list[frozenset[int]] = [frozenset()] * len(switch.in_links)
    used_outputs: set[int] = set()
    for in_link, outs in state.mapping.items():
        locals_ = frozenset(out_index[o] for o in outs)
        if used_outputs & locals_:
            raise SwitchConfigError(f"switch {state.node}: output used twice")
        used_outputs |= locals_
        word[in_index[in_link]] = locals_
    return tuple(word)


def generate_multicast_registers(
    topology: Topology, schedule: ConfigurationSet
) -> MulticastRegisterSchedule:
    """Emit fanout register words for a multicast schedule.

    ``schedule`` holds :class:`MulticastConnection` members (the core
    ``Configuration`` machinery is connection-type agnostic).
    """
    switches = build_switches(topology)
    degree = max(schedule.degree, 1)
    states: dict[tuple[int, int], FanoutState] = {}

    def state(node: int, slot: int) -> FanoutState:
        key = (node, slot)
        if key not in states:
            states[key] = FanoutState(node)
        return states[key]

    for slot, cfg in enumerate(schedule):
        for conn in cfg:
            assert isinstance(conn, MulticastConnection)
            for path in conn.branches.values():
                for in_link, out_link in zip(path, path[1:]):
                    node = topology.link_info(out_link).src
                    st = state(node, slot)
                    if out_link not in st.outputs_of(in_link):
                        st.connect(in_link, out_link)

    words: dict[int, list[tuple[frozenset[int], ...]]] = {}
    for node, switch in switches.items():
        words[node] = [
            _encode(switch, states.get((node, slot), FanoutState(node)))
            for slot in range(degree)
        ]
    return MulticastRegisterSchedule(
        topology=topology, degree=degree, words=words, switches=switches
    )


def decode_multicast_registers(
    regs: MulticastRegisterSchedule,
) -> list[set[tuple[int, frozenset[int]]]]:
    """Trace each slot's light trees out of the register image.

    Returns, per slot, the set of ``(source, destinations)`` trees.
    Raises on dead-ends or loops, as the unicast decoder does.
    """
    topo = regs.topology
    out: list[set[tuple[int, frozenset[int]]]] = []
    for slot in range(regs.degree):
        decoded: dict[int, FanoutState] = {}
        for node, words in regs.words.items():
            switch = regs.switches[node]
            st = FanoutState(node)
            for i, locals_ in enumerate(words[slot]):
                for o in locals_:
                    st.connect(switch.in_links[i], switch.out_links[o])
            decoded[node] = st
        trees: set[tuple[int, frozenset[int]]] = set()
        for src in topo.iter_nodes():
            first = decoded[src].outputs_of(topo.inject_link(src))
            if not first:
                continue
            dsts: set[int] = set()
            frontier = list(first)
            hops = 0
            while frontier:
                link = frontier.pop()
                info = topo.link_info(link)
                if info.kind is LinkKind.EJECT:
                    dsts.add(info.dst)
                    continue
                nxt = decoded[info.dst].outputs_of(link)
                if not nxt:
                    raise AssertionError(
                        f"slot {slot}: tree from {src} dead-ends at switch {info.dst}"
                    )
                frontier.extend(nxt)
                hops += len(nxt)
                if hops > topo.num_links:
                    raise AssertionError(f"slot {slot}: tree from {src} loops")
            trees.add((src, frozenset(dsts)))
        out.append(trees)
    return out
