"""Compiled-communication timing for multicast patterns.

A multicast tree delivers to *all* its destinations simultaneously --
the splitter duplicates the light, so a `z`-element message still costs
``ceil(z / slot_payload)`` owned slots regardless of fanout.  The
makespan formula is therefore identical to the unicast compiled model,
evaluated over trees:

    ``startup + finish(slot, K, ceil(size / slot_payload))``

This is exactly why optical multicast pays: the unicast emulation of a
broadcast sends the same ``z`` elements 63 times through one injection
fiber (63 slots of degree), while the tree sends them once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import ConfigurationSet
from repro.core.registry import get_scheduler
from repro.multicast.requests import MulticastSet
from repro.multicast.routing import route_multicasts
from repro.simulator.compiled import transfer_chunks, transfer_finish
from repro.simulator.params import SimParams
from repro.topology.base import Topology


@dataclass
class MulticastCompiledResult:
    """Outcome of a compiled multicast run."""

    completion_time: int
    degree: int
    schedule: ConfigurationSet
    #: delivery time per request index (all destinations at once).
    delivered: list[int]


def compiled_multicast_completion_time(
    topology: Topology,
    requests: MulticastSet,
    params: SimParams = SimParams(),
    *,
    scheduler: str = "coloring",
) -> MulticastCompiledResult:
    """Schedule and time a multicast pattern.

    ``scheduler`` defaults to coloring: the ordered-AAPC scheduler is
    unicast-only (its phase map is keyed by pairs) and the registry
    rejects it here.
    """
    if scheduler in ("aapc", "combined"):
        raise ValueError(
            f"scheduler {scheduler!r} is unicast-only (AAPC phases are "
            "keyed by (src, dst) pairs); use 'coloring' or 'greedy'"
        )
    connections = route_multicasts(topology, requests)
    schedule = get_scheduler(scheduler)(connections, topology)
    schedule.validate(connections)
    slot_map = schedule.slot_map()
    degree = max(schedule.degree, 1)
    delivered = []
    completion = params.compiled_startup
    for i, req in enumerate(requests):
        chunks = transfer_chunks(req.size, params.slot_payload)
        finish = transfer_finish(
            params.compiled_startup, slot_map[i], degree, chunks
        )
        delivered.append(finish)
        completion = max(completion, finish)
    return MulticastCompiledResult(
        completion_time=completion,
        degree=schedule.degree,
        schedule=schedule,
        delivered=delivered,
    )
