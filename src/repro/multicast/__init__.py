"""Multicast connections over all-optical TDM networks -- extension.

Optical splitters let a switch drive several outputs from one input, so
a single time slot can carry a **multicast tree**: the source's light
reaches every destination with no electronic relaying.  The paper stays
unicast; multicast was the natural next step for TDM optical
interconnects (collective operations -- broadcast, row/column updates
-- are trees), and the scheduling theory carries over unchanged:

* a multicast connection's footprint is its *tree's* directed-link set
  (under deterministic dimension-order routing the union of the
  source's unicast paths is always a tree -- two paths from one source
  never remerge after diverging);
* two connections conflict iff their link sets intersect -- exactly the
  unicast rule, so the greedy and coloring schedulers run unmodified on
  :class:`MulticastConnection` objects;
* the code generator needs one new capability: a switch input driving
  several outputs (:mod:`repro.multicast.codegen`).

The ordered-AAPC scheduler does not apply (its phase map is keyed by
unicast pairs), which mirrors the theory: multicast scheduling needs
its own decompositions.
"""

from repro.multicast.requests import MulticastRequest, MulticastSet
from repro.multicast.routing import MulticastConnection, route_multicasts
from repro.multicast.patterns import (
    broadcast_pattern,
    all_broadcast_pattern,
    row_multicast_pattern,
)
from repro.multicast.codegen import (
    FanoutState,
    generate_multicast_registers,
    decode_multicast_registers,
)
from repro.multicast.sim import (
    MulticastCompiledResult,
    compiled_multicast_completion_time,
)

__all__ = [
    "MulticastRequest",
    "MulticastSet",
    "MulticastConnection",
    "route_multicasts",
    "broadcast_pattern",
    "all_broadcast_pattern",
    "row_multicast_pattern",
    "FanoutState",
    "generate_multicast_registers",
    "decode_multicast_registers",
    "MulticastCompiledResult",
    "compiled_multicast_completion_time",
]
