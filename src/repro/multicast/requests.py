"""Multicast requests: one source, several destinations."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class MulticastRequest:
    """``src`` sends one message to every node in ``dsts``.

    Destinations are stored sorted and deduplicated; the source may not
    be its own destination (local delivery needs no network).
    """

    src: int
    dsts: tuple[int, ...]
    size: int = 1
    tag: int = 0

    def __post_init__(self) -> None:
        dsts = tuple(sorted(set(self.dsts)))
        if not dsts:
            raise ValueError("multicast needs at least one destination")
        if self.src in dsts:
            raise ValueError(f"source {self.src} cannot be a destination")
        object.__setattr__(self, "dsts", dsts)

    @property
    def fanout(self) -> int:
        """Number of destinations."""
        return len(self.dsts)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.src} -> {{{','.join(map(str, self.dsts))}}})"


class MulticastSet(Sequence[MulticastRequest]):
    """Ordered collection of multicast requests."""

    def __init__(self, requests: Iterable[MulticastRequest], *, name: str = "") -> None:
        self._requests = tuple(requests)
        self.name = name

    def __len__(self) -> int:
        return len(self._requests)

    def __getitem__(self, i):  # type: ignore[override]
        return self._requests[i]

    def __iter__(self) -> Iterator[MulticastRequest]:
        return iter(self._requests)

    def total_fanout(self) -> int:
        """Sum of destination counts (unicast-equivalent message count)."""
        return sum(r.fanout for r in self._requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<MulticastSet{label} n={len(self)}>"
