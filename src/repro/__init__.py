"""repro: compiled communication for all-optical TDM networks.

A from-scratch reproduction of

    Xin Yuan, Rami Melhem, Rajiv Gupta.
    "Compiled Communication for All-optical TDM Networks", SC 1996.

The library implements the whole system the paper describes:

* the **topology substrate** -- tori of electro-optical crossbar
  switches with dimension-order routing (:mod:`repro.topology`);
* the **off-line connection schedulers** -- greedy, conflict-graph
  coloring, ordered-AAPC and their combination, which compute the
  minimal TDM multiplexing degree for a static pattern
  (:mod:`repro.core`);
* the **phased AAPC decompositions** the ordered-AAPC scheduler needs,
  including a provably optimal 64-phase construction for the paper's
  8x8 torus (:mod:`repro.aapc`);
* the **evaluation workloads** -- random patterns, block-cyclic array
  redistributions, classic patterns, and the GS/TSCF/P3M application
  patterns (:mod:`repro.patterns`);
* the **cycle-level simulator** comparing compiled communication with
  a distributed path-reservation protocol (:mod:`repro.simulator`);
* the **compiler front end** -- pattern specs, per-phase scheduling,
  switch-register code generation (:mod:`repro.compiler`);
* **experiment drivers** for every table and figure
  (:mod:`repro.analysis`, ``python -m repro.cli``).

Quick start::

    from repro import Torus2D, route_requests, get_scheduler
    from repro.patterns import hypercube_pattern

    topo = Torus2D(8)
    connections = route_requests(topo, hypercube_pattern(64))
    schedule = get_scheduler("combined")(connections, topo)
    print(schedule.degree)  # TDM multiplexing degree for the pattern
"""

from repro.topology import (
    Topology,
    Torus2D,
    Ring,
    LinearArray,
    Mesh2D,
    KAryNCube,
    TieBreak,
)
from repro.core import (
    Request,
    RequestSet,
    Connection,
    route_requests,
    Configuration,
    ConfigurationSet,
    greedy_schedule,
    coloring_schedule,
    ordered_aapc_schedule,
    combined_schedule,
    get_scheduler,
    scheduler_names,
)
from repro.simulator import (
    SimParams,
    simulate_compiled,
    compiled_completion_time,
    simulate_dynamic,
)

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "Torus2D",
    "Ring",
    "LinearArray",
    "Mesh2D",
    "KAryNCube",
    "TieBreak",
    "Request",
    "RequestSet",
    "Connection",
    "route_requests",
    "Configuration",
    "ConfigurationSet",
    "greedy_schedule",
    "coloring_schedule",
    "ordered_aapc_schedule",
    "combined_schedule",
    "get_scheduler",
    "scheduler_names",
    "SimParams",
    "simulate_compiled",
    "compiled_completion_time",
    "simulate_dynamic",
    "__version__",
]
