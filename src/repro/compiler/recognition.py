"""Pattern recognition stand-in: declarative specs -> request sets.

The paper "relies upon existing techniques for identifying
communication patterns" (stencil compilers, HPF distribution analysis,
...).  This module provides the interface such a pass would feed the
connection scheduler: a small declarative spec language covering the
pattern families of the evaluation.  Examples::

    recognize({"pattern": "ring", "nodes": 64})
    recognize({"pattern": "stencil2d", "width": 8, "height": 8, "size": 64})
    recognize({"pattern": "hypercube", "nodes": 64, "size": 8})
    recognize({
        "pattern": "redistribution",
        "extents": [64, 64, 64],
        "source": [[4, 16], [4, 16], [4, 16]],   # [procs, block] per dim
        "target": [[1, 1], [1, 1], [64, 1]],
    })
    recognize({"pattern": "pairs", "pairs": [[0, 2], [1, 3]], "size": 4})

Every spec accepts an optional ``"size"`` (message elements, default 1).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.requests import RequestSet
from repro.patterns.classic import (
    all_to_all_pattern,
    bit_reversal_pattern,
    hypercube_pattern,
    nearest_neighbour_2d,
    nearest_neighbour_3d,
    ring_pattern,
    shuffle_exchange_pattern,
    transpose_pattern,
)
from repro.patterns.redistribution import (
    BlockCyclic,
    Distribution,
    redistribution_requests,
)


class SpecError(ValueError):
    """A malformed or unrecognised pattern spec."""


def _require(spec: Mapping, *keys: str) -> list:
    missing = [k for k in keys if k not in spec]
    if missing:
        raise SpecError(f"spec {spec.get('pattern')!r} is missing keys {missing}")
    return [spec[k] for k in keys]


def recognize(spec: Mapping) -> RequestSet:
    """Translate a declarative pattern spec into a request set.

    Raises :class:`SpecError` for unknown patterns or missing fields.
    """
    if "pattern" not in spec:
        raise SpecError("spec needs a 'pattern' key")
    kind = spec["pattern"]
    size = int(spec.get("size", 1))

    if kind == "ring":
        (nodes,) = _require(spec, "nodes")
        return ring_pattern(nodes, size=size,
                            bidirectional=bool(spec.get("bidirectional", True)))
    if kind == "stencil2d":
        width, height = _require(spec, "width", "height")
        return nearest_neighbour_2d(width, height, size=size)
    if kind == "stencil3d":
        (dims,) = _require(spec, "dims")
        sizes = tuple(spec.get("sizes", (size, size, size)))
        return nearest_neighbour_3d(tuple(dims), sizes=sizes)
    if kind == "hypercube":
        (nodes,) = _require(spec, "nodes")
        return hypercube_pattern(nodes, size=size)
    if kind == "shuffle-exchange":
        (nodes,) = _require(spec, "nodes")
        return shuffle_exchange_pattern(nodes, size=size)
    if kind == "all-to-all":
        (nodes,) = _require(spec, "nodes")
        return all_to_all_pattern(nodes, size=size)
    if kind == "transpose":
        (width,) = _require(spec, "width")
        return transpose_pattern(width, size=size)
    if kind == "bit-reversal":
        (nodes,) = _require(spec, "nodes")
        return bit_reversal_pattern(nodes, size=size)
    if kind == "redistribution":
        extents, source, target = _require(spec, "extents", "source", "target")
        src = Distribution(
            tuple(extents), tuple(BlockCyclic(p, b) for p, b in source)
        )
        dst = Distribution(
            tuple(extents), tuple(BlockCyclic(p, b) for p, b in target)
        )
        return redistribution_requests(src, dst)
    if kind == "pairs":
        (pairs,) = _require(spec, "pairs")
        return RequestSet.from_pairs(
            [(int(s), int(d)) for s, d in pairs], size=size
        )
    raise SpecError(f"unknown pattern kind {kind!r}")
