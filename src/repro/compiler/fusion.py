"""Communication phase fusion -- a compiler optimisation (extension).

A program's adjacent communication phases can sometimes be *fused*:
schedule the union of their requests as one pattern, pay one register
load instead of two, and let connections from both phases share the
frame.  Whether fusion wins is a genuine trade:

* **for**: one reconfiguration/synchronisation (``compiled_startup``)
  is saved, and sparse phases interleave into each other's idle slots;
* **against**: the union's multiplexing degree can exceed either
  phase's, stretching every message's slot spacing.

:func:`fuse_phases` evaluates the trade analytically with the same
transfer model the simulator uses and greedily merges adjacent fusable
phases while the estimated makespan improves.  Fusion is only *sound*
for phases without data dependencies between them (a message of phase
B must not depend on phase A's delivery); the caller declares that via
``can_fuse`` -- the default refuses everything, making fusion strictly
opt-in.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.compiler.program import CommPhase, CompiledProgram, compile_program
from repro.core.requests import RequestSet
from repro.simulator.params import SimParams
from repro.topology.base import Topology


def merge_requests(a: RequestSet, b: RequestSet, *, name: str = "") -> RequestSet:
    """Union of two phases' requests (duplicates get distinct tags)."""
    merged = []
    from repro.core.requests import Request

    for tag_base, rs in ((0, a), (1, b)):
        for i, r in enumerate(rs):
            # Distinct tags keep duplicate (src, dst) pairs across the
            # two phases as separate messages.
            merged.append(
                Request(r.src, r.dst, size=r.size, tag=tag_base * 1_000_000 + i)
            )
    return RequestSet(merged, allow_duplicates=True, name=name or f"{a.name}+{b.name}")


def phase_makespan(
    topology: Topology,
    requests: RequestSet,
    params: SimParams,
    *,
    scheduler: str = "combined",
) -> int:
    """Analytic compiled makespan of one phase (incl. register load)."""
    from repro.simulator.compiled import compiled_completion_time

    return compiled_completion_time(
        topology, requests, params, scheduler=scheduler
    ).completion_time


def fuse_phases(
    topology: Topology,
    phases: list[CommPhase],
    params: SimParams = SimParams(),
    *,
    can_fuse: Callable[[CommPhase, CommPhase], bool] = lambda a, b: False,
    scheduler: str = "combined",
) -> list[CommPhase]:
    """Greedily fuse adjacent phases while the makespan estimate drops.

    Only adjacent phases with equal ``repetitions`` for which
    ``can_fuse(a, b)`` returns True are candidates.  Returns a new
    phase list (possibly the input, untouched).
    """
    current = list(phases)
    improved = True
    while improved and len(current) > 1:
        improved = False
        for i in range(len(current) - 1):
            a, b = current[i], current[i + 1]
            if a.repetitions != b.repetitions or not can_fuse(a, b):
                continue
            separate = (
                phase_makespan(topology, a.requests, params, scheduler=scheduler)
                + phase_makespan(topology, b.requests, params, scheduler=scheduler)
            )
            union = merge_requests(a.requests, b.requests)
            fused = phase_makespan(topology, union, params, scheduler=scheduler)
            if fused < separate:
                current[i : i + 2] = [
                    CommPhase(
                        name=f"{a.name}+{b.name}",
                        requests=union,
                        repetitions=a.repetitions,
                    )
                ]
                improved = True
                break
    return current


def compile_fused(
    topology: Topology,
    phases: list[CommPhase],
    params: SimParams = SimParams(),
    *,
    can_fuse: Callable[[CommPhase, CommPhase], bool] = lambda a, b: False,
    scheduler: str = "combined",
) -> CompiledProgram:
    """Fuse then compile -- the one-call version."""
    fused = fuse_phases(
        topology, phases, params, can_fuse=can_fuse, scheduler=scheduler
    )
    return compile_program(topology, fused, scheduler=scheduler)
