"""Programs as sequences of communication phases.

A parallel program alternates computation with communication *phases*;
within a phase one static pattern is live.  Compiled communication
schedules each phase independently, so the multiplexing degree adapts
per phase -- the paper's fourth source of advantage over dynamic
control, whose degree is fixed machine-wide.

Phase switches at run time reload the switch registers and resynchronise
(:attr:`SimParams.compiled_startup` slots, same cost as the initial
load), which is exactly what :meth:`CompiledProgram.communication_time`
charges between phases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.codegen import RegisterSchedule, generate_registers
from repro.core.configuration import ConfigurationSet
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler
from repro.core.requests import RequestSet
from repro.simulator.compiled import transfer_chunks, transfer_finish
from repro.simulator.params import SimParams
from repro.topology.base import Topology


@dataclass(frozen=True)
class CommPhase:
    """One communication phase: a named static pattern."""

    name: str
    requests: RequestSet
    #: how often the phase executes (main-loop iterations); scales its
    #: contribution to the program's communication time.
    repetitions: int = 1


@dataclass
class CompiledPhase:
    """A phase after scheduling and code generation."""

    phase: CommPhase
    schedule: ConfigurationSet
    registers: RegisterSchedule

    @property
    def degree(self) -> int:
        """The phase's multiplexing degree."""
        return self.schedule.degree

    def makespan(self, params: SimParams) -> int:
        """Slots to complete one execution of the phase (incl. reload)."""
        slot_map = self.schedule.slot_map()
        degree = max(self.degree, 1)
        finish = params.compiled_startup
        for i, r in enumerate(self.phase.requests):
            chunks = transfer_chunks(r.size, params.slot_payload)
            finish = max(
                finish,
                transfer_finish(
                    params.compiled_startup, slot_map[i], degree, chunks
                ),
            )
        return finish


@dataclass
class CompiledProgram:
    """All phases of a program, compiled for one topology."""

    topology: Topology
    phases: list[CompiledPhase]
    scheduler: str

    def communication_time(self, params: SimParams = SimParams()) -> int:
        """Total communication slots over all phase executions.

        Each execution pays the register reload (inside ``makespan``);
        repetitions of the same phase after the first still pay it
        because an intervening phase overwrote the registers.  (For a
        single-phase program this is pessimistic by
        ``(repetitions-1) * compiled_startup`` slots; the paper's
        programs all interleave phases.)
        """
        return sum(
            p.makespan(params) * p.phase.repetitions for p in self.phases
        )

    def degrees(self) -> dict[str, int]:
        """Phase name -> multiplexing degree (per-phase adaptation)."""
        return {p.phase.name: p.degree for p in self.phases}


def compile_program(
    topology: Topology,
    phases: list[CommPhase],
    *,
    scheduler: str = "combined",
) -> CompiledProgram:
    """Schedule every phase and generate its switch registers."""
    schedule_fn = get_scheduler(scheduler)
    compiled = []
    for phase in phases:
        connections = route_requests(topology, phase.requests)
        schedule = schedule_fn(connections, topology)
        schedule.validate(connections)
        registers = generate_registers(topology, schedule)
        compiled.append(
            CompiledPhase(phase=phase, schedule=schedule, registers=registers)
        )
    return CompiledProgram(topology=topology, phases=compiled, scheduler=scheduler)
