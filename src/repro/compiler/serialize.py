"""Serialisation of compiled-communication artifacts.

A real compiled-communication toolchain separates compile time from run
time: the compiler writes the schedule and switch-register images to a
file the loader ships to the machine.  This module provides that
boundary as JSON:

* :func:`schedule_to_dict` / :func:`schedule_from_dict` -- a
  :class:`ConfigurationSet` as (slot -> list of sized requests); the
  loader re-routes on its own topology and *re-validates*, so a
  schedule file can never smuggle in a conflicting configuration (e.g.
  when the loader's routing policy differs from the compiler's);
* :func:`registers_to_dict` / :func:`registers_from_dict` -- the
  per-switch register words, bound to the topology signature; loading
  re-decodes and trace-audits the image against the declared circuits.

File-level helpers (:func:`save_artifact` / :func:`load_artifact`)
bundle both plus metadata into one document.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any

from repro.compiler.codegen import (
    RegisterSchedule,
    decode_registers,
    generate_registers,
)
from repro.core.configuration import Configuration, ConfigurationSet
from repro.core.paths import Connection, route_requests
from repro.core.requests import Request, RequestSet
from repro.topology.base import Topology

FORMAT_VERSION = 1


class ArtifactError(ValueError):
    """A serialized artifact is malformed or does not match the topology."""


# ----------------------------------------------------------------------
# canonical JSON + digests
# ----------------------------------------------------------------------

def canonical_json(obj: Any) -> Any:
    """Normalise ``obj`` so equal artifacts serialize identically.

    Recursively

    * coerces dict keys to strings (the only key type JSON has anyway),
    * collapses integral floats to ints (``2.0`` and ``2`` must hash
      the same -- the degree travels as an int in one process and may
      come back as a float through a JSON round trip in another),
    * rejects NaN/Inf, whose JSON spellings are implementation-defined.

    Raises :class:`ArtifactError` for non-finite floats or types JSON
    cannot represent, rather than letting ``json.dumps`` pick a
    platform-dependent fallback.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ArtifactError(f"non-finite float {obj!r} in artifact document")
        return int(obj) if obj.is_integer() else obj
    if isinstance(obj, dict):
        return {str(k): canonical_json(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_json(v) for v in obj]
    raise ArtifactError(f"type {type(obj).__name__} is not JSON-serialisable")


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace,
    canonicalised scalars.  The same logical document produces the same
    bytes in every process, which is what makes content-addressed
    artifact caching possible."""
    return json.dumps(
        canonical_json(obj), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True, allow_nan=False,
    )


def artifact_digest(doc: dict[str, Any]) -> str:
    """SHA-256 hex digest of a document's canonical encoding."""
    return hashlib.sha256(canonical_dumps(doc).encode("ascii")).hexdigest()


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------

def schedule_to_dict(schedule: ConfigurationSet) -> dict[str, Any]:
    """Serialise a configuration set (requests per slot).

    The output is digest-stable: every field is coerced to a plain int
    or str, so two processes serialising the same schedule produce
    byte-identical canonical JSON (see :func:`artifact_digest`).
    """
    return {
        "version": FORMAT_VERSION,
        "scheduler": str(schedule.scheduler),
        "degree": int(schedule.degree),
        "slots": [
            [
                {"src": int(c.request.src), "dst": int(c.request.dst),
                 "size": int(c.request.size), "tag": int(c.request.tag)}
                for c in cfg
            ]
            for cfg in schedule
        ],
    }


def schedule_from_dict(topology: Topology, data: dict[str, Any]) -> tuple[ConfigurationSet, list[Connection]]:
    """Rebuild (and re-validate) a schedule on ``topology``.

    Returns the schedule plus the routed connection list (in slot
    order), which downstream consumers (codegen, simulator) need.
    """
    if data.get("version") != FORMAT_VERSION:
        raise ArtifactError(f"unsupported schedule version {data.get('version')!r}")
    requests = RequestSet(
        (
            Request(e["src"], e["dst"], size=e.get("size", 1), tag=e.get("tag", 0))
            for slot in data["slots"]
            for e in slot
        ),
        allow_duplicates=True,
    )
    connections = route_requests(topology, requests)
    configs = []
    i = 0
    try:
        for slot in data["slots"]:
            cfg = Configuration()
            for _ in slot:
                cfg.add(connections[i])  # raises if the file lies
                i += 1
            configs.append(cfg)
    except AssertionError as exc:
        raise ArtifactError(f"schedule file is not conflict-free here: {exc}") from exc
    schedule = ConfigurationSet(configs, scheduler=data.get("scheduler", "loaded"))
    schedule.validate(connections)
    if schedule.degree != data["degree"]:
        raise ArtifactError(
            f"declared degree {data['degree']} != actual {schedule.degree}"
        )
    return schedule, connections


# ----------------------------------------------------------------------
# register images
# ----------------------------------------------------------------------

def registers_to_dict(regs: RegisterSchedule) -> dict[str, Any]:
    """Serialise per-switch register words (digest-stable, see
    :func:`schedule_to_dict`)."""
    return {
        "version": FORMAT_VERSION,
        "topology": regs.topology.signature,
        "degree": int(regs.degree),
        "words": {str(node): [[int(p) for p in w] for w in words]
                  for node, words in sorted(regs.words.items())},
    }


def registers_from_dict(topology: Topology, data: dict[str, Any]) -> RegisterSchedule:
    """Rebuild a register image for ``topology`` (signature-checked)."""
    if data.get("version") != FORMAT_VERSION:
        raise ArtifactError(f"unsupported registers version {data.get('version')!r}")
    if data["topology"] != topology.signature:
        raise ArtifactError(
            f"register image built for {data['topology']!r}, "
            f"loader topology is {topology.signature!r}"
        )
    from repro.topology.switch import build_switches

    switches = build_switches(topology)
    words = {
        int(node): [tuple(w) for w in node_words]
        for node, node_words in data["words"].items()
    }
    if set(words) != set(switches):
        raise ArtifactError("register image does not cover every switch")
    return RegisterSchedule(
        topology=topology, degree=data["degree"], words=words, switches=switches
    )


# ----------------------------------------------------------------------
# bundled artifact files
# ----------------------------------------------------------------------

def save_artifact(
    path: str | Path,
    topology: Topology,
    schedule: ConfigurationSet,
    *,
    name: str = "",
) -> None:
    """Write schedule + generated registers as one JSON document."""
    regs = generate_registers(topology, schedule)
    doc = {
        "version": FORMAT_VERSION,
        "name": name,
        "topology": topology.signature,
        "schedule": schedule_to_dict(schedule),
        "registers": registers_to_dict(regs),
    }
    # Sorted keys so the file bytes (and hence any digest of them) do
    # not depend on dict construction order.
    Path(path).write_text(json.dumps(canonical_json(doc), indent=1, sort_keys=True))


def load_artifact(
    path: str | Path, topology: Topology
) -> tuple[ConfigurationSet, RegisterSchedule]:
    """Load and fully audit an artifact file.

    The register image is decoded and the traced circuits are compared
    against the schedule's declared connections slot by slot -- a
    tampered or corrupted file fails loudly.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("topology") != topology.signature:
        raise ArtifactError(
            f"artifact built for {doc.get('topology')!r}, "
            f"loader topology is {topology.signature!r}"
        )
    schedule, _connections = schedule_from_dict(topology, doc["schedule"])
    regs = registers_from_dict(topology, doc["registers"])
    traced = decode_registers(regs)
    declared = [
        {c.pair for c in cfg} for cfg in schedule
    ]
    if traced != declared:
        raise ArtifactError("register image does not realise the declared schedule")
    return schedule, regs
