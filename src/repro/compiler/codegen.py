"""Code generation: schedules -> switch register contents.

The run-time artifact of compiled communication is, per switch, the
contents of a circular shift register with one word per time slot; word
``k`` sets the crossbar for configuration ``C_k``.  This module

* **generates** those words from a :class:`ConfigurationSet` by walking
  every connection's path through its switches
  (:func:`generate_registers`), and
* **decodes** them back into per-slot connection sets by tracing light
  paths from every injection fiber (:func:`decode_registers`),

so tests can assert the full round trip: schedule -> registers ->
traced circuits == scheduled requests.  Decoding is also how one audits
that a register image establishes *exactly* the intended circuits and
nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configuration import ConfigurationSet
from repro.topology.base import Topology
from repro.topology.links import LinkKind
from repro.topology.switch import CrossbarSwitch, SwitchState, build_switches


@dataclass
class RegisterSchedule:
    """Register images for every switch: ``words[node][slot]``.

    Each word is the tuple encoding of
    :meth:`repro.topology.switch.CrossbarSwitch.encode`: one output-port
    index (or -1) per input port.
    """

    topology: Topology
    degree: int
    words: dict[int, list[tuple[int, ...]]]
    switches: dict[int, CrossbarSwitch]


def generate_registers(
    topology: Topology, schedule: ConfigurationSet
) -> RegisterSchedule:
    """Emit per-switch circular register contents for ``schedule``."""
    switches = build_switches(topology)
    degree = max(schedule.degree, 1)
    states: dict[tuple[int, int], SwitchState] = {}

    def state(node: int, slot: int) -> SwitchState:
        key = (node, slot)
        if key not in states:
            states[key] = SwitchState(node)
        return states[key]

    for slot, cfg in enumerate(schedule):
        for conn in cfg:
            # Walk consecutive link pairs; each pair crosses one switch.
            for in_link, out_link in zip(conn.links, conn.links[1:]):
                node = topology.link_info(out_link).src
                state(node, slot).connect(in_link, out_link)

    words: dict[int, list[tuple[int, ...]]] = {}
    for node, switch in switches.items():
        words[node] = [
            switch.encode(states.get((node, slot), SwitchState(node)))
            for slot in range(degree)
        ]
    return RegisterSchedule(
        topology=topology, degree=degree, words=words, switches=switches
    )


def decode_registers(regs: RegisterSchedule) -> list[set[tuple[int, int]]]:
    """Trace the circuits a register image establishes, per slot.

    For every slot and every switch whose PE input is lit, follow the
    light path switch by switch until it ejects at a PE.  Raises if a
    path dead-ends (an input lit into an unconfigured switch) or loops
    -- both indicate a corrupt register image.
    """
    topo = regs.topology
    out: list[set[tuple[int, int]]] = []
    for slot in range(regs.degree):
        decoded: dict[int, SwitchState] = {
            node: regs.switches[node].decode(words[slot])
            for node, words in regs.words.items()
        }
        circuits: set[tuple[int, int]] = set()
        for src in topo.iter_nodes():
            link = decoded[src].output_of(topo.inject_link(src))
            if link is None:
                continue
            hops = 0
            while True:
                info = topo.link_info(link)
                if info.kind is LinkKind.EJECT:
                    circuits.add((src, info.dst))
                    break
                nxt = decoded[info.dst].output_of(link)
                if nxt is None:
                    raise AssertionError(
                        f"slot {slot}: path from {src} dead-ends at "
                        f"switch {info.dst}"
                    )
                link = nxt
                hops += 1
                if hops > topo.num_links:
                    raise AssertionError(
                        f"slot {slot}: path from {src} loops"
                    )
        out.append(circuits)
    return out
