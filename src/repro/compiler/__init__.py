"""Compiled-communication front end.

This package plays the role of the compiler in the paper's system:

* :mod:`repro.compiler.recognition` -- turns program-level
  communication *specs* (stencils, redistributions, explicit graphs)
  into request sets, standing in for the pattern-recognition passes the
  paper cites from prior work;
* :mod:`repro.compiler.program` -- a program is an ordered sequence of
  communication phases; each phase is scheduled independently, so
  different phases may run at different multiplexing degrees (one of
  compiled communication's advantages over fixed-degree dynamic
  control);
* :mod:`repro.compiler.codegen` -- emits the run-time artifact: one
  register word per (switch, slot), the contents of the circular shift
  registers that cycle the network through the phase's configurations.
"""

from repro.compiler.recognition import recognize
from repro.compiler.program import CommPhase, CompiledPhase, CompiledProgram, compile_program
from repro.compiler.codegen import (
    RegisterSchedule,
    generate_registers,
    decode_registers,
)
from repro.compiler.serialize import (
    ArtifactError,
    load_artifact,
    save_artifact,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "recognize",
    "CommPhase",
    "CompiledPhase",
    "CompiledProgram",
    "compile_program",
    "RegisterSchedule",
    "generate_registers",
    "decode_registers",
    "ArtifactError",
    "load_artifact",
    "save_artifact",
    "schedule_from_dict",
    "schedule_to_dict",
]
