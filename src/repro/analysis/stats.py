"""Statistics helpers for experiment reporting.

The paper reports plain means (e.g. "the average of 100 random
patterns").  For judging reproduction quality we additionally want
dispersion and simple uncertainty estimates; these helpers are used by
the experiment drivers and the benches.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Sample mean and (n-1) standard deviation (0 for n < 2)."""
    if not values:
        raise ValueError("no values")
    arr = np.asarray(values, dtype=float)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return float(arr.mean()), std


def mean_ci(
    values: Sequence[float], *, confidence: float = 0.95
) -> tuple[float, float]:
    """Mean and half-width of a normal-approximation confidence interval.

    Uses the z quantile (1.96 at 95%); fine for the >=20-sample sweeps
    the drivers run, conservative enough for quick runs.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    mean, std = mean_std(values)
    if len(values) < 2:
        return mean, 0.0
    # Abramowitz-Stegun rational approximation of the normal quantile.
    z = _normal_quantile(0.5 + confidence / 2)
    return mean, z * std / math.sqrt(len(values))


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central region approximation.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


def perf_rows(snapshot: dict[str, float] | None = None) -> list[tuple[str, str]]:
    """Perf-counter snapshot as (counter, value) display rows.

    ``snapshot`` defaults to the live global counters
    (:func:`repro.core.perf.snapshot`).  Counts print as integers,
    seconds and rates with enough digits to compare runs.
    """
    if snapshot is None:
        from repro.core import perf

        snapshot = perf.snapshot()
    rows: list[tuple[str, str]] = []
    for key, value in snapshot.items():
        if key.endswith("_seconds"):
            text = f"{value:.4f} s"
        elif key.endswith("_rate"):
            text = f"{value:.1%}"
        elif key.endswith("_per_second"):
            text = f"{value:,.0f}/s"
        else:
            text = f"{int(value):,}"
        rows.append((key, text))
    return rows


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf-safe)."""
    if reference == 0:
        return 0.0 if measured == 0 else math.inf
    return abs(measured - reference) / abs(reference)


def within(measured: float, reference: float, rel: float) -> bool:
    """True iff ``measured`` is within ``rel`` of ``reference``."""
    return relative_error(measured, reference) <= rel
