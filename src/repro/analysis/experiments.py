"""One driver per paper table/figure.

Every driver returns plain dict/list data plus knows the paper's
reference values, so benches can assert *shape* properties (who wins,
monotonicity, saturation at the AAPC bound) and EXPERIMENTS.md can
tabulate paper-vs-measured side by side.

The paper averages Table 1 over 100 random patterns per row and Table 2
over 500 redistributions; the drivers take ``seeds``/``samples``
arguments so benches run quickly by default while
``python -m repro.cli`` reproduces the full protocol.
"""

from __future__ import annotations

from collections import defaultdict
from statistics import fmean

import numpy as np

from repro.core.coloring import coloring_schedule
from repro.core.aapc_ordered import ordered_aapc_schedule
from repro.core.packing import first_fit
from repro.core.paths import route_requests
from repro.core.registry import get_scheduler
from repro.core.requests import RequestSet
from repro.patterns.applications import gs_pattern, p3m_pattern, tscf_pattern
from repro.patterns.classic import (
    all_to_all_pattern,
    hypercube_pattern,
    nearest_neighbour_2d,
    ring_pattern,
    shuffle_exchange_pattern,
)
from repro.patterns.random_patterns import random_pattern
from repro.patterns.redistribution import random_distribution, redistribution_requests
from repro.simulator.compiled import compiled_completion_time
from repro.simulator.dynamic import simulate_dynamic
from repro.simulator.params import SimParams
from repro.topology.torus import Torus2D


def paper_torus() -> Torus2D:
    """The 8x8 torus used throughout the paper's evaluation."""
    return Torus2D(8)


def randomized_greedy_degree(connections, rng: np.random.Generator, orders: int = 5) -> float:
    """Mean greedy degree over random request orders.

    The paper's greedy processes requests "in an arbitrary order"; its
    Table 3 values (ring 3, nearest-neighbour 6, hypercube 9) match the
    random-order average, not any structured order, so the drivers
    report greedy this way.
    """
    degrees = []
    for _ in range(orders):
        order = rng.permutation(len(connections)).tolist()
        degrees.append(first_fit(connections, order, scheduler="greedy").degree)
    return fmean(degrees)


def schedule_degrees(topology, requests: RequestSet, rng: np.random.Generator | None = None,
                     *, greedy_orders: int = 5) -> dict[str, float]:
    """Degrees of the paper's four algorithms on one pattern."""
    connections = route_requests(topology, requests)
    rng = rng if rng is not None else np.random.default_rng(0)
    greedy = randomized_greedy_degree(connections, rng, greedy_orders)
    coloring = coloring_schedule(connections).degree
    aapc = ordered_aapc_schedule(connections, topology).degree
    combined = min(coloring, aapc)
    return {
        "greedy": greedy,
        "coloring": float(coloring),
        "aapc": float(aapc),
        "combined": float(combined),
        "improvement_pct": 100.0 * (greedy - combined) / greedy if greedy else 0.0,
    }


# ----------------------------------------------------------------------
# Table 1: random patterns
# ----------------------------------------------------------------------

#: Paper Table 1 (connections -> greedy, coloring, AAPC, combined).
PAPER_TABLE1 = {
    100: (7.0, 6.7, 6.9, 6.6),
    400: (16.5, 16.1, 16.5, 15.9),
    800: (27.2, 25.9, 26.5, 25.6),
    1200: (36.3, 34.5, 35.3, 34.2),
    1600: (45.0, 43.5, 43.4, 42.8),
    2000: (53.4, 50.4, 50.4, 49.7),
    2400: (60.8, 57.5, 57.4, 56.7),
    2800: (68.8, 64.4, 62.4, 62.4),
    3200: (76.3, 70.8, 64.0, 64.0),
    3600: (83.9, 76.8, 64.0, 64.0),
    4000: (91.6, 83.0, 64.0, 64.0),
}


def _table1_task(task) -> dict[str, float]:
    """One Table 1 pattern: draw it and schedule it (picklable worker)."""
    topo, n, rng = task
    requests = random_pattern(topo.num_nodes, n, seed=rng)
    return schedule_degrees(topo, requests, rng, greedy_orders=1)


def table1(
    *,
    connection_counts: tuple[int, ...] = tuple(PAPER_TABLE1),
    patterns_per_row: int = 10,
    seed: int = 0,
    topology: Torus2D | None = None,
    workers: int | str | None = None,
) -> list[dict[str, float]]:
    """Random-pattern sweep (paper runs 100 patterns per row).

    Each pattern gets an independent spawned RNG, so the results are a
    pure function of ``seed`` -- identical for any ``workers`` value.
    """
    from repro.analysis.parallel import map_tasks, resolve_workers, warm_aapc_cache

    topo = topology or paper_torus()
    tasks = []
    for n in connection_counts:
        rng = np.random.default_rng(seed + n)
        tasks.extend((topo, n, child) for child in rng.spawn(patterns_per_row))
    if (resolve_workers(workers) or 1) > 1:
        warm_aapc_cache(topo)
    results = map_tasks(_table1_task, tasks, workers=workers)

    from repro.analysis.stats import mean_std

    rows = []
    for i, n in enumerate(connection_counts):
        group = results[i * patterns_per_row : (i + 1) * patterns_per_row]
        acc: dict[str, list[float]] = defaultdict(list)
        for degrees in group:
            for key, value in degrees.items():
                acc[key].append(value)
        row: dict[str, float] = {"connections": float(n)}
        for key, values in acc.items():
            row[key] = fmean(values)
        for key in ("greedy", "coloring", "aapc", "combined"):
            row[f"{key}_std"] = mean_std(acc[key])[1]
        row["improvement_pct"] = (
            100.0 * (row["greedy"] - row["combined"]) / row["greedy"]
        )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 2: random data redistributions
# ----------------------------------------------------------------------

#: Paper Table 2 bins: (low, high) -> (count, greedy, coloring, AAPC, combined).
PAPER_TABLE2 = {
    (0, 100): (34, 1.2, 1.2, 1.2, 1.2),
    (101, 200): (50, 5.9, 4.9, 4.8, 4.6),
    (201, 400): (54, 10.6, 9.7, 10.0, 9.5),
    (401, 800): (105, 17.7, 15.9, 16.0, 15.5),
    (801, 1200): (122, 31.7, 28.7, 28.6, 27.6),
    (1601, 2000): (15, 46.3, 42.8, 35.1, 35.1),
    (2001, 2400): (77, 55.5, 51.5, 51.9, 50.4),
    (4032, 4032): (43, 92.0, 83.0, 64.0, 64.0),
}

TABLE2_BINS = (
    (0, 100), (101, 200), (201, 400), (401, 800), (801, 1200),
    (1201, 1600), (1601, 2000), (2001, 2400), (2401, 4031), (4032, 4032),
)


def _table2_task(task) -> tuple[int, dict[str, float]] | None:
    """One Table 2 redistribution sample (picklable worker).

    Returns ``(num_requests, degrees)``, or ``None`` when the two
    distributions coincide and there is nothing to communicate.
    """
    topo, extents, rng = task
    src = random_distribution(extents, topo.num_nodes, seed=rng)
    dst = random_distribution(extents, topo.num_nodes, seed=rng)
    requests = redistribution_requests(src, dst)
    if len(requests) == 0:
        return None
    return len(requests), schedule_degrees(topo, requests, rng, greedy_orders=1)


def table2(
    *,
    samples: int = 100,
    seed: int = 0,
    extents: tuple[int, int, int] = (64, 64, 64),
    topology: Torus2D | None = None,
    workers: int | str | None = None,
) -> list[dict[str, float]]:
    """Random-redistribution sweep (paper runs 500 samples).

    Like :func:`table1`, one spawned RNG per sample keeps the results
    independent of ``workers``.
    """
    from repro.analysis.parallel import map_tasks, resolve_workers, warm_aapc_cache

    topo = topology or paper_torus()
    rng = np.random.default_rng(seed)
    tasks = [(topo, extents, child) for child in rng.spawn(samples)]
    if (resolve_workers(workers) or 1) > 1:
        warm_aapc_cache(topo)
    results = map_tasks(_table2_task, tasks, workers=workers)

    binned: dict[tuple[int, int], list[dict[str, float]]] = defaultdict(list)
    for sample in results:
        if sample is None:
            continue  # identical distributions: no communication
        n, degrees = sample
        for low, high in TABLE2_BINS:
            if low <= n <= high:
                binned[(low, high)].append(degrees)
                break
    rows = []
    for bin_range in TABLE2_BINS:
        group = binned.get(bin_range, [])
        row: dict[str, float] = {
            "bin_low": float(bin_range[0]),
            "bin_high": float(bin_range[1]),
            "patterns": float(len(group)),
        }
        if group:
            for key in ("greedy", "coloring", "aapc", "combined"):
                row[key] = fmean(g[key] for g in group)
            row["improvement_pct"] = (
                100.0 * (row["greedy"] - row["combined"]) / row["greedy"]
                if row["greedy"]
                else 0.0
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 3: frequently used patterns
# ----------------------------------------------------------------------

#: Paper Table 3: pattern -> (conns, greedy, coloring, AAPC, combined).
PAPER_TABLE3 = {
    "ring": (128, 3, 2, 2, 2),
    "nearest neighbour": (256, 6, 4, 4, 4),
    "hypercube": (384, 9, 7, 8, 7),
    "shuffle-exchange": (126, 6, 4, 5, 4),
    "all-to-all": (4032, 92, 83, 64, 64),
}


def table3(
    *,
    seed: int = 0,
    greedy_orders: int = 10,
    topology: Torus2D | None = None,
) -> list[dict[str, object]]:
    """Classic-pattern comparison."""
    topo = topology or paper_torus()
    n = topo.num_nodes
    patterns = {
        "ring": ring_pattern(n),
        "nearest neighbour": nearest_neighbour_2d(topo.width, topo.height),
        "hypercube": hypercube_pattern(n),
        "shuffle-exchange": shuffle_exchange_pattern(n),
        "all-to-all": all_to_all_pattern(n),
    }
    rows = []
    for name, requests in patterns.items():
        rng = np.random.default_rng(seed)
        degrees = schedule_degrees(topo, requests, rng, greedy_orders=greedy_orders)
        rows.append({"pattern": name, "connections": len(requests), **degrees})
    return rows


# ----------------------------------------------------------------------
# Tables 4 and 5: application patterns, compiled vs dynamic
# ----------------------------------------------------------------------

#: Paper Table 5: (pattern, problem) -> (compiled, dyn K=1, 2, 5, 10).
PAPER_TABLE5 = {
    ("GS", "64 x 64"): (35, 105, 118, 171, 251),
    ("GS", "128 x 128"): (67, 137, 154, 251, 411),
    ("GS", "256 x 256"): (131, 265, 304, 411, 731),
    ("TSCF", "5120"): (19, 344, 268, 270, 300),
    ("P3M 1", "32 x 32 x 32"): (831, 3905, 3625, 2018, 1861),
    ("P3M 1", "64 x 64 x 64"): (6207, 12471, 10754, 10333, 9619),
    ("P3M 2", "32 x 32 x 32"): (382, 9999, 6094, 4661, 4510),
    ("P3M 2", "64 x 64 x 64"): (2174, 17583, 14223, 10360, 9320),
    ("P3M 4", "32 x 32 x 32"): (457, 3309, 2356, 1766, 1722),
    ("P3M 4", "64 x 64 x 64"): (3369, 9161, 7674, 7805, 7122),
    ("P3M 5", "32 x 32 x 32"): (40, 583, 374, 371, 480),
    ("P3M 5", "64 x 64 x 64"): (68, 673, 457, 445, 505),
}

#: The dynamic multiplexing degrees the paper evaluates.
DYNAMIC_DEGREES = (1, 2, 5, 10)


def table5_workloads(
    *, gs_grids: tuple[int, ...] = (64, 128, 256), p3m_grids: tuple[int, ...] = (32, 64)
) -> list[tuple[str, str, RequestSet]]:
    """(pattern name, problem size label, requests) for every Table 5 row."""
    rows: list[tuple[str, str, RequestSet]] = []
    for g in gs_grids:
        rows.append(("GS", f"{g} x {g}", gs_pattern(g).requests))
    rows.append(("TSCF", "5120", tscf_pattern().requests))
    for which in (1, 2, 4, 5):
        for g in p3m_grids:
            rows.append(
                (f"P3M {which}", f"{g} x {g} x {g}", p3m_pattern(which, g).requests)
            )
    return rows


def table4(*, p3m_grid: int = 64) -> list[dict[str, object]]:
    """Pattern inventory (descriptive, like the paper's Table 4)."""
    from repro.patterns.applications import application_patterns

    rows = []
    for pat in application_patterns(p3m_grid=p3m_grid):
        rows.append(
            {
                "pattern": pat.name,
                "type": pat.kind,
                "description": pat.description,
                "connections": len(pat.requests),
                "elements": pat.requests.total_elements(),
            }
        )
    return rows


def table5(
    *,
    params: SimParams = SimParams(),
    degrees: tuple[int, ...] = DYNAMIC_DEGREES,
    gs_grids: tuple[int, ...] = (64, 128, 256),
    p3m_grids: tuple[int, ...] = (32, 64),
    topology: Torus2D | None = None,
) -> list[dict[str, object]]:
    """Compiled vs dynamic communication time for every workload."""
    topo = topology or paper_torus()
    rows = []
    for name, problem, requests in table5_workloads(
        gs_grids=gs_grids, p3m_grids=p3m_grids
    ):
        compiled = compiled_completion_time(topo, requests, params)
        row: dict[str, object] = {
            "pattern": name,
            "problem": problem,
            "compiled": compiled.completion_time,
            "compiled_degree": compiled.degree,
        }
        for k in degrees:
            row[f"dynamic_{k}"] = simulate_dynamic(
                topo, requests, k, params
            ).completion_time
        rows.append(row)
    return rows


def table5_programs(
    *,
    params: SimParams = SimParams(),
    degrees: tuple[int, ...] = DYNAMIC_DEGREES,
    gs_grid: int = 256,
    p3m_grid: int = 32,
    iterations: int = 1,
    topology: Torus2D | None = None,
) -> list[dict[str, object]]:
    """Whole-program comparison (extension of Table 5).

    Compiles each application *program* (all its phases, each at its
    own degree) and compares its total communication time against a
    dynamic network that must serve every phase at one fixed degree.
    """
    from repro.compiler.program import compile_program
    from repro.patterns.programs import application_programs

    topo = topology or paper_torus()
    rows = []
    for name, phases in application_programs(
        gs_grid=gs_grid, p3m_grid=p3m_grid, iterations=iterations
    ).items():
        program = compile_program(topo, phases)
        row: dict[str, object] = {
            "program": name,
            "phases": len(phases),
            "degrees": tuple(program.degrees().values()),
            "compiled": program.communication_time(params),
        }
        for k in degrees:
            total = 0
            for phase in phases:
                result = simulate_dynamic(topo, phase.requests, k, params)
                total += result.completion_time * phase.repetitions
            row[f"dynamic_{k}"] = total
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fault campaign: compiled vs dynamic degradation under fiber cuts
# ----------------------------------------------------------------------

#: Patterns the fault campaign can sweep (name -> requests factory).
FAULT_CAMPAIGN_PATTERNS = (
    "all-to-all",
    "ring",
    "nearest neighbour",
    "hypercube",
    "shuffle-exchange",
)


def _campaign_requests(topo: Torus2D, pattern: str, size: int) -> RequestSet:
    n = topo.num_nodes
    factories = {
        "all-to-all": lambda: all_to_all_pattern(n, size=size),
        "ring": lambda: ring_pattern(n, size=size),
        "nearest neighbour": lambda: nearest_neighbour_2d(
            topo.width, topo.height, size=size
        ),
        "hypercube": lambda: hypercube_pattern(n, size=size),
        "shuffle-exchange": lambda: shuffle_exchange_pattern(n, size=size),
    }
    try:
        return factories[pattern]()
    except KeyError:
        raise ValueError(
            f"unknown campaign pattern {pattern!r}; "
            f"choose from {FAULT_CAMPAIGN_PATTERNS}"
        ) from None


def fault_campaign(
    *,
    pattern: str = "all-to-all",
    size: int = 4,
    degree: int = 2,
    fault_counts: tuple[int, ...] = (0, 1, 2, 4),
    repair_after: int | None = None,
    protocol: str = "dropping",
    params: SimParams = SimParams(),
    seed: int = 0,
    topology: Torus2D | None = None,
    cache=None,
    recovery: str = "reactive",
) -> list[dict[str, object]]:
    """Compiled-vs-dynamic degradation sweep over fiber-cut counts.

    For each entry of ``fault_counts`` a random
    :class:`~repro.simulator.faults.FaultSchedule` cuts that many
    distinct transit fibers at uniform slots inside the compiled run's
    fault window (so both control models are hit mid-flight), then the
    same schedule is injected into both simulators.  Row 0 (no faults)
    is the healthy baseline the slowdown percentages are relative to.

    ``degree`` fixes the dynamic network's multiplexing degree;
    ``repair_after`` optionally restores every cut fiber that many
    slots later (intermittent-fault model).  Deterministic in ``seed``.
    ``cache`` (an :class:`repro.service.cache.ArtifactCache`) lets the
    compiled model's reschedules reuse previously compiled artifacts
    for recurring degraded states.

    ``recovery="protected"`` runs the compiled model with compile-time
    protection: single-fiber cuts fail over to precomputed backup
    configurations in ``params.failover_latency`` slots instead of
    recompiling (see :mod:`repro.core.protection`); the
    ``compiled_failovers``/``compiled_uncovered`` columns then separate
    bounded failovers from reactive fallbacks.
    """
    from repro.simulator.compiled import simulate_compiled_faulty
    from repro.simulator.faults import FaultSchedule, random_fault_schedule
    from repro.simulator.metrics import recovery_summary

    topo = topology or paper_torus()
    requests = _campaign_requests(topo, pattern, size)
    compiled_base = compiled_completion_time(topo, requests, params)
    dynamic_base = simulate_dynamic(
        topo, requests, degree, params, protocol=protocol
    )
    horizon = max(1, compiled_base.completion_time - params.compiled_startup)

    rows = []
    for n in fault_counts:
        if n == 0:
            schedule = FaultSchedule()
        else:
            schedule = random_fault_schedule(
                topo, n, horizon, repair_after=repair_after, seed=seed + n
            )
        compiled = simulate_compiled_faulty(
            topo, requests, schedule, params, cache=cache, recovery=recovery
        )
        dynamic = simulate_dynamic(
            topo, requests, degree, params, protocol=protocol, faults=schedule
        )
        crec, drec = recovery_summary(compiled), recovery_summary(dynamic)
        rows.append({
            "faults": n,
            "compiled": compiled.completion_time,
            "compiled_slowdown_pct": 100.0
            * (compiled.completion_time - compiled_base.completion_time)
            / compiled_base.completion_time,
            "compiled_ttr": crec.get("time_to_recover_mean", 0.0),
            "compiled_degree_inflation": compiled.degree_inflation,
            "compiled_reschedules": compiled.reschedules,
            "compiled_failovers": compiled.failovers,
            "compiled_uncovered": compiled.uncovered,
            "compiled_lost": compiled.lost,
            "dynamic": dynamic.completion_time,
            "dynamic_slowdown_pct": 100.0
            * (dynamic.completion_time - dynamic_base.completion_time)
            / dynamic_base.completion_time,
            "dynamic_ttr": drec.get("time_to_recover_mean", 0.0),
            "dynamic_fault_retries": dynamic.fault_retries,
            "dynamic_lost": dynamic.lost,
        })
    return rows


def protection_sweep(
    *,
    pattern: str = "all-to-all",
    size: int = 4,
    scheduler: str = "combined",
    fault_slot: int | None = None,
    compare_reactive: bool = False,
    params: SimParams = SimParams(),
    topology: Torus2D | None = None,
    cache=None,
) -> dict[str, object]:
    """Every single-fiber fault scenario under protected recovery.

    Plans the pattern's protection once (what ``repro-tdm protect``
    emits), then injects each covered scenario's fiber cut at
    ``fault_slot`` (default: one slot after startup, so the whole
    pattern is mid-flight) into a protected compiled run.  The per-
    scenario rows carry the plan's ΔK overhead next to the measured
    makespan, time-to-recover, failover/recompile counts and losses --
    the acceptance evidence that protected recovery of a single-fiber
    cut delivers everything with zero run-time recompiles.

    ``compare_reactive=True`` additionally runs the reactive simulator
    per scenario (expensive: one remainder recompile each) for the
    reactive-vs-protected comparison in EXPERIMENTS.md.
    """
    from repro.core.protection import build_protection
    from repro.simulator.compiled import simulate_compiled_faulty
    from repro.simulator.faults import FaultSchedule

    topo = topology or paper_torus()
    requests = _campaign_requests(topo, pattern, size)
    baseline = compiled_completion_time(topo, requests, params, scheduler=scheduler)
    connections = route_requests(topo, requests)
    schedule = get_scheduler(scheduler)(connections, topo)
    protected = build_protection(topo, connections, schedule)
    report = protected.overhead_report()
    slot = fault_slot if fault_slot is not None else params.compiled_startup + 1

    rows = []
    for link in protected.scenarios:
        plan = protected.plans[link]
        row: dict[str, object] = {
            "link": link,
            "kind": plan.kind,
            "affected": len(plan.affected),
            "delta_k": plan.delta_k,
        }
        faults = FaultSchedule.from_tuples([(slot, "fail", link)])
        run = simulate_compiled_faulty(
            topo, requests, faults, params,
            scheduler=scheduler, recovery="protected", protection=protected,
        )
        row.update({
            "protected": run.completion_time,
            "protected_ttr": max(
                (e["time_to_recover"] for e in run.fault_log), default=0
            ),
            "protected_failovers": run.failovers,
            "protected_recompiles": run.reschedules,
            "protected_lost": run.lost,
        })
        if compare_reactive:
            reactive = simulate_compiled_faulty(
                topo, requests, faults, params, scheduler=scheduler, cache=cache
            )
            row.update({
                "reactive": reactive.completion_time,
                "reactive_ttr": max(
                    (e["time_to_recover"] for e in reactive.fault_log),
                    default=0,
                ),
                "reactive_recompiles": reactive.reschedules,
                "reactive_lost": reactive.lost,
            })
        rows.append(row)

    summary = {k: v for k, v in report.items() if k != "rows"}
    summary.update({
        "baseline": baseline.completion_time,
        "recompiles": sum(r["protected_recompiles"] for r in rows),
        "lost": sum(r["protected_lost"] for r in rows),
        "ttr_max": max((r["protected_ttr"] for r in rows), default=0),
        "protected_makespan_max": max(
            (r["protected"] for r in rows), default=baseline.completion_time
        ),
    })
    if compare_reactive and rows:
        summary["reactive_makespan_max"] = max(r["reactive"] for r in rows)
        summary["reactive_ttr_max"] = max(r["reactive_ttr"] for r in rows)
    return {"pattern": pattern, "summary": summary, "rows": rows}


# ----------------------------------------------------------------------
# Churn campaign: amortized cost of incremental compilation
# ----------------------------------------------------------------------


def churn_campaign(
    *,
    sizes: tuple[int, ...] = (8, 16, 32),
    pattern: str = "ring",
    steps: int = 50,
    update_size: int = 2,
    size: int = 4,
    scheduler: str = "greedy",
    policy=None,
    kernel: str | None = None,
    seed: int = 0,
) -> dict[str, object]:
    """Amortized cost of delta scheduling under sustained churn.

    For each torus width in ``sizes`` the campaign compiles ``pattern``
    once, then drives ``steps`` random updates through one stateful
    :class:`repro.core.delta.DeltaScheduler`: each update removes
    ``update_size`` random live connections and adds ``update_size``
    random new requests, so the pattern's population stays fixed while
    its membership churns completely over the run.  Every epoch is
    re-validated (outside the timed region) and the final degree is
    compared against a from-scratch recompile of the surviving set.

    The claim under test is the tentpole's cost model: amend latency is
    **O(update size), not O(pattern size)** -- the per-update mean
    should stay flat as the pattern grows 8x8 -> 32x32 at fixed update
    size.  ``summary.flatness`` is the largest-to-smallest
    median-latency ratio (a full-recompile baseline would scale with
    the pattern, ~16x here); ``summary.validation_errors`` must be 0.
    Deterministic in ``seed`` (timings aside).
    """
    import random
    from collections import Counter
    from time import perf_counter

    from repro.core.configuration import ScheduleValidationError
    from repro.core.delta import DEFAULT_POLICY, DeltaScheduler
    from repro.core.paths import Connection
    from repro.core.requests import Request

    if policy is None:
        policy = DEFAULT_POLICY
    if update_size < 1:
        raise ValueError("update_size must be >= 1")
    rows: list[dict[str, object]] = []
    for width in sizes:
        topo = Torus2D(width)
        requests = _campaign_requests(topo, pattern, size)
        connections = route_requests(topo, requests)
        schedule = get_scheduler(scheduler)(connections, topo)
        engine = DeltaScheduler(
            schedule, num_links=topo.num_links, policy=policy, kernel=kernel
        )
        rng = random.Random(seed * 1_000_003 + width)
        live = [c.index for c in connections]
        next_index = len(connections)
        n = topo.num_nodes
        latencies: list[float] = []
        actions: Counter[str] = Counter()
        delta_k_max = 0
        validation_errors = 0
        for _ in range(steps):
            removals = rng.sample(live, min(update_size, len(live)))
            adds = []
            for _ in range(update_size):
                src = rng.randrange(n)
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
                adds.append(Connection(
                    next_index, Request(src, dst, size=size),
                    topo.route(src, dst),
                ))
                next_index += 1
            t0 = perf_counter()
            result = engine.amend(add=adds, remove=removals)
            latencies.append(perf_counter() - t0)
            actions[result.action] += 1
            delta_k_max = max(delta_k_max, result.delta_k)
            for idx in removals:
                live.remove(idx)
            live.extend(c.index for c in adds)
            try:
                engine.schedule.validate(engine.connections())
            except ScheduleValidationError:
                validation_errors += 1
        full = get_scheduler(scheduler)(engine.connections(), topo)
        latencies.sort()
        rows.append({
            "size": width,
            "nodes": n,
            "connections": len(live),
            "steps": steps,
            "update_size": update_size,
            "amend_mean_us": 1e6 * fmean(latencies),
            "amend_median_us": 1e6 * latencies[len(latencies) // 2],
            "amend_p95_us": 1e6 * latencies[int(0.95 * (len(latencies) - 1))],
            "actions": dict(actions),
            "validation_errors": validation_errors,
            "degree": engine.degree,
            "full_recompile_degree": full.degree,
            "certified_gap": engine.certified_gap,
            "delta_k_max": delta_k_max,
            "bound_ok": engine.degree
            <= full.degree + engine.certified_gap + policy.recompile_slack,
        })
    smallest, largest = rows[0], rows[-1]
    summary = {
        # Median-based: one GC pause in a short CI run must not move
        # the gated ratio; the mean variant is reported alongside.
        "flatness": largest["amend_median_us"] / smallest["amend_median_us"],
        "flatness_mean": largest["amend_mean_us"] / smallest["amend_mean_us"],
        "pattern_growth": largest["nodes"] / smallest["nodes"],
        "validation_errors": sum(r["validation_errors"] for r in rows),
        "bound_ok": all(r["bound_ok"] for r in rows),
        "updates": steps * len(rows),
    }
    return {
        "pattern": pattern,
        "update_size": update_size,
        "summary": summary,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Farm campaign: sustained-QPS throughput scaling of the compile farm
# ----------------------------------------------------------------------


def _farm_workload(
    rng, *, nodes: int, cold: int, warm: int, pairs: int
) -> tuple[list[list[list[int]]], list[list[list[int]]]]:
    """Seeded (cold, warm) pattern sets: random pair lists on ``nodes``."""
    def one() -> list[list[int]]:
        rows = []
        for _ in range(pairs):
            src = rng.randrange(nodes)
            dst = rng.randrange(nodes - 1)
            if dst >= src:
                dst += 1
            rows.append([src, dst])
        return rows

    return [one() for _ in range(cold)], [one() for _ in range(warm)]


def farm_campaign(
    *,
    farms: tuple[int, ...] = (1, 2, 4),
    requests: int = 128,
    concurrency: int = 12,
    replication: int = 2,
    torus: int = 8,
    pairs: int = 48,
    cold_frac: float = 0.5,
    warm_patterns: int = 6,
    workers: int = 1,
    scheduler: str = "combined",
    registers: bool = False,
    service_floor: float = 0.15,
    seed: int = 0,
) -> dict[str, object]:
    """Sustained-QPS mixed cold/warm throughput of the compile farm.

    For each farm size in ``farms`` the campaign starts a fresh
    in-process farm (:class:`repro.service.farm.Farm`, ``workers``
    compile processes *per node*), prewarms a small warm set, then
    drives the same seeded schedule of ``requests`` compile requests --
    a ``cold_frac`` mix of unique patterns (cold compiles that must fan
    out across the nodes' worker pools) and repeats from the warm set
    (served from the sharded cache) -- through ``concurrency``
    independent shard-map-carrying clients.

    The claim under test is the farm tentpole: cold compiles are the
    bottleneck of one box, and digest sharding spreads them across
    nodes with near-linear throughput scaling.  ``service_floor`` pads
    each cold compile to a fixed service time in the *worker*
    (:attr:`ServerPolicy.simulated_cost`), so the benchmark measures
    the farm's request-level parallelism -- routing, shard ownership,
    worker-pool dispatch -- at a calibrated per-compile cost instead of
    the harness host's core count (CI runners often expose a single
    core, where genuinely CPU-bound work cannot scale no matter how the
    farm behaves).  ``summary.scaling`` is ``qps(largest farm) /
    qps(smallest)``; the committed baseline gates it at >= 2.5x for
    1 -> 4 workers.  Deterministic in ``seed`` (timings aside).
    """
    import asyncio
    import random
    from time import perf_counter

    from repro.service.errors import ServiceError
    from repro.service.farm import Farm
    from repro.service.policy import ServerPolicy

    rng = random.Random(seed)
    n_cold = max(1, int(requests * cold_frac))
    cold, warm = _farm_workload(
        rng, nodes=torus * torus, cold=n_cold, warm=warm_patterns, pairs=pairs
    )
    topology = {"kind": "torus", "width": torus}
    # One shared schedule: every farm size compiles the same work.
    schedule = [("cold", i) for i in range(n_cold)] + [
        ("warm", rng.randrange(len(warm))) for _ in range(requests - n_cold)
    ]
    rng.shuffle(schedule)

    async def drive(nodes: int) -> dict[str, object]:
        farm = Farm(
            nodes,
            replication=min(replication, nodes),
            workers=workers,
            scheduler=scheduler,
            policy=ServerPolicy(
                max_pending=max(64, 4 * concurrency),
                simulated_cost=service_floor,
            ),
        )
        await farm.start()
        clients = [farm.client() for _ in range(concurrency)]
        row: dict[str, object] = {
            "nodes": nodes,
            "workers": nodes * max(1, workers),
            "requests": len(schedule),
        }
        try:
            loop = asyncio.get_running_loop()
            # Fork the worker pools *before* timing starts: pool spawn
            # is a one-time cost, not farm throughput.
            await asyncio.gather(*(
                loop.run_in_executor(node._executor, abs, 1)
                for node in farm.nodes.values()
            ))
            for client in clients:
                await client.connect()
            for pattern in warm:
                await clients[0].compile(
                    topology, pairs=pattern, scheduler=scheduler,
                    registers=registers,
                )
            for node in farm.nodes.values():
                if node._repl_tasks:
                    await asyncio.gather(
                        *node._repl_tasks, return_exceptions=True
                    )

            queue = list(schedule)
            outcomes = {"hit": 0, "miss": 0, "inflight": 0}
            typed_failures: dict[str, int] = {}

            async def worker(client) -> None:
                while queue:
                    kind, idx = queue.pop()
                    pattern = cold[idx] if kind == "cold" else warm[idx]
                    try:
                        reply = await client.compile(
                            topology, pairs=pattern, scheduler=scheduler,
                            registers=registers,
                        )
                    except ServiceError as exc:
                        typed_failures[exc.code] = (
                            typed_failures.get(exc.code, 0) + 1
                        )
                        continue
                    outcome = reply.get("cache", "?")
                    outcomes[outcome] = outcomes.get(outcome, 0) + 1

            t0 = perf_counter()
            await asyncio.gather(*(worker(c) for c in clients))
            elapsed = perf_counter() - t0

            completed = sum(outcomes.values())
            row.update({
                "elapsed_seconds": elapsed,
                "completed": completed,
                "qps": completed / elapsed if elapsed > 0 else 0.0,
                "outcomes": outcomes,
                "typed_failures": typed_failures,
                "direct": sum(c.direct for c in clients),
                "via_router": sum(c.via_router for c in clients),
                "replicas_pushed": sum(
                    n.replicas_pushed for n in farm.nodes.values()
                ),
            })
        finally:
            for client in clients:
                await client.close()
            await farm.shutdown()
        return row

    async def main() -> list[dict[str, object]]:
        return [await drive(n) for n in farms]

    rows = asyncio.run(main())
    first, last = rows[0], rows[-1]
    summary = {
        "scaling": (last["qps"] / first["qps"]) if first["qps"] else 0.0,
        "workers": [r["workers"] for r in rows],
        "qps": [r["qps"] for r in rows],
        "completed": sum(r["completed"] for r in rows),
        "failed": sum(sum(r["typed_failures"].values()) for r in rows),
    }
    return {
        "torus": torus,
        "pairs": pairs,
        "scheduler": scheduler,
        "cold_frac": cold_frac,
        "concurrency": concurrency,
        "service_floor": service_floor,
        "summary": summary,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Figures 1 and 3
# ----------------------------------------------------------------------

#: The Fig. 1 example configuration on the 4x4 torus.
FIG1_CONFIGURATION = ((4, 1), (5, 3), (6, 10), (8, 9), (11, 2))

#: The Fig. 3 example: requests on 5 linearly connected nodes.
FIG3_REQUESTS = ((0, 2), (1, 3), (3, 4), (2, 4))


def fig1() -> dict[str, object]:
    """Check the paper's example configuration is conflict-free."""
    from repro.core.configuration import Configuration

    topo = Torus2D(4)
    requests = RequestSet.from_pairs(FIG1_CONFIGURATION)
    connections = route_requests(topo, requests)
    cfg = Configuration()
    for c in connections:
        cfg.add(c)  # raises if any pair conflicts
    return {
        "connections": len(cfg),
        "links_used": cfg.total_links_used,
        "conflict_free": True,
    }


def fig3() -> dict[str, object]:
    """Greedy suboptimality example: natural order 3 slots, optimum 2."""
    from repro.topology.linear import LinearArray
    from repro.core.greedy import greedy_schedule

    topo = LinearArray(5)
    requests = RequestSet.from_pairs(FIG3_REQUESTS)
    connections = route_requests(topo, requests)
    natural = greedy_schedule(connections).degree
    # (0,2) and (2,4) first puts the two compatible pairs together.
    optimal = greedy_schedule(connections, order=[0, 3, 1, 2]).degree
    return {"greedy_natural_order": natural, "greedy_best_order": optimal}


# ----------------------------------------------------------------------
# Ablations (beyond the paper)
# ----------------------------------------------------------------------

ABLATION_SCHEDULERS = (
    "greedy",
    "coloring",
    "coloring-ratio",
    "aapc",
    "combined",
    "dsatur",
    "largest-first",
    "longest-first",
    "shortest-first",
    "random-restart",
    "coloring+repack",
    "combined+repack",
)


def ablation_schedulers(
    *,
    connection_counts: tuple[int, ...] = (200, 800),
    patterns_per_row: int = 3,
    seed: int = 0,
    schedulers: tuple[str, ...] = ABLATION_SCHEDULERS,
    topology: Torus2D | None = None,
) -> list[dict[str, float]]:
    """Degree comparison of every registered scheduler on random patterns."""
    topo = topology or paper_torus()
    rows = []
    for n in connection_counts:
        rng = np.random.default_rng(seed + n)
        acc: dict[str, list[int]] = defaultdict(list)
        for _ in range(patterns_per_row):
            requests = random_pattern(topo.num_nodes, n, seed=rng)
            connections = route_requests(topo, requests)
            for name in schedulers:
                schedule = get_scheduler(name)(connections, topo)
                acc[name].append(schedule.degree)
        row: dict[str, float] = {"connections": float(n)}
        row.update({name: fmean(vals) for name, vals in acc.items()})
        rows.append(row)
    return rows
