"""Scheduling-kernel micro-benchmark (the ``repro-tdm perf`` workload).

One fixed, reproducible workload -- the paper's densest instance,
all-to-all on the 8x8 torus (4032 connections) -- scheduled by the
greedy, coloring and combined algorithms under a chosen placement
kernel.  Reports wall-clock seconds, throughput in *connections
scheduled per second*, and the process perf counters, as plain dicts so
the CLI can print them or dump ``BENCH_kernel.json`` for CI trending.
"""

from __future__ import annotations

from repro.core import perf
from repro.core.coloring import coloring_schedule
from repro.core.combined import combined_schedule
from repro.core.greedy import greedy_schedule
from repro.core.linkmask import resolve_kernel
from repro.core.paths import route_requests
from repro.patterns.classic import all_to_all_pattern
from repro.topology.base import Topology

#: Schedulers the benchmark times, in reporting order.
BENCH_SCHEDULERS = ("greedy", "coloring", "combined")


def kernel_benchmark(
    *,
    kernel: str | None = None,
    repeats: int = 3,
    topology: Topology | None = None,
) -> dict:
    """Time the three headline schedulers on all-to-all under ``kernel``.

    Runs each scheduler ``repeats`` times and keeps the best (minimum)
    wall time, the standard practice for micro-benchmarks on shared
    machines.  Counters are reset first, so the returned snapshot
    describes exactly this benchmark -- including the route-cache
    behaviour of the initial pattern routing.
    """
    from repro.aapc.phases import aapc_phase_map
    from repro.analysis.experiments import paper_torus

    kernel = resolve_kernel(kernel)
    topo = topology or paper_torus()
    phase_of = aapc_phase_map(topo)  # exclude the one-off decomposition build

    perf.reset()
    t0 = perf.perf_timer()
    requests = all_to_all_pattern(topo.num_nodes)
    connections = route_requests(topo, requests)
    route_requests(topo, requests)  # warm pass: exercises the route cache
    route_seconds = perf.perf_timer() - t0

    runs = {
        "greedy": lambda: greedy_schedule(connections, kernel=kernel),
        "coloring": lambda: coloring_schedule(connections, kernel=kernel),
        "combined": lambda: combined_schedule(
            connections, phase_of=phase_of, kernel=kernel
        ),
    }
    n = len(connections)
    schedulers: dict[str, dict[str, float]] = {}
    for name in BENCH_SCHEDULERS:
        best, degree = None, 0
        for _ in range(max(1, repeats)):
            t0 = perf.perf_timer()
            schedule = runs[name]()
            elapsed = perf.perf_timer() - t0
            best = elapsed if best is None else min(best, elapsed)
            degree = schedule.degree
        schedulers[name] = {
            "seconds": best,
            "ops_per_sec": n / best if best > 0 else 0.0,
            "degree": float(degree),
        }
    return {
        "kernel": kernel,
        "topology": topo.signature,
        "connections": n,
        "repeats": repeats,
        "route_seconds": route_seconds,
        "schedulers": schedulers,
        "counters": perf.snapshot(),
    }
