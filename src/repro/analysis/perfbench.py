"""Scheduling-kernel micro-benchmark (the ``repro-tdm perf`` workload).

One fixed, reproducible workload -- the paper's densest instance,
all-to-all on the 8x8 torus (4032 connections) -- scheduled by the
greedy, coloring and combined algorithms under a chosen placement
kernel.  Reports wall-clock seconds, throughput in *connections
scheduled per second*, and the process perf counters, as plain dicts so
the CLI can print them or dump ``BENCH_kernel.json`` for CI trending.
"""

from __future__ import annotations

from statistics import fmean, pstdev

from repro.core import perf
from repro.core.coloring import coloring_schedule
from repro.core.combined import combined_schedule
from repro.core.greedy import greedy_schedule
from repro.core.linkmask import resolve_kernel
from repro.core.paths import route_requests
from repro.patterns.classic import all_to_all_pattern
from repro.topology.base import Topology

#: Schedulers the benchmark times, in reporting order.
BENCH_SCHEDULERS = ("greedy", "coloring", "combined")


def kernel_benchmark(
    *,
    kernel: str | None = None,
    repeats: int = 3,
    topology: Topology | None = None,
) -> dict:
    """Time the three headline schedulers on all-to-all under ``kernel``.

    Runs each scheduler ``repeats`` times; ``seconds`` is the best
    (minimum) wall time, the standard practice for micro-benchmarks on
    shared machines, but every run is kept so the report also carries
    ``mean_seconds`` / ``stddev_seconds`` / ``times`` -- the spread is
    what tells a CI reader whether a regression is signal or scheduler
    noise.  Counters are reset first, so the returned snapshot
    describes exactly this benchmark -- including the route-cache
    behaviour of the initial pattern routing.
    """
    from repro.aapc.phases import aapc_phase_map
    from repro.analysis.experiments import paper_torus

    kernel = resolve_kernel(kernel)
    topo = topology or paper_torus()
    phase_of = aapc_phase_map(topo)  # exclude the one-off decomposition build

    perf.reset()
    t0 = perf.perf_timer()
    requests = all_to_all_pattern(topo.num_nodes)
    connections = route_requests(topo, requests)
    route_requests(topo, requests)  # warm pass: exercises the route cache
    route_seconds = perf.perf_timer() - t0

    runs = {
        "greedy": lambda: greedy_schedule(connections, kernel=kernel),
        "coloring": lambda: coloring_schedule(connections, kernel=kernel),
        "combined": lambda: combined_schedule(
            connections, phase_of=phase_of, kernel=kernel
        ),
    }
    n = len(connections)
    schedulers: dict[str, dict[str, object]] = {}
    for name in BENCH_SCHEDULERS:
        times: list[float] = []
        degree = 0
        for _ in range(max(1, repeats)):
            t0 = perf.perf_timer()
            schedule = runs[name]()
            times.append(perf.perf_timer() - t0)
            degree = schedule.degree
        best = min(times)
        mean = fmean(times)
        schedulers[name] = {
            "seconds": best,
            "mean_seconds": mean,
            "stddev_seconds": pstdev(times) if len(times) > 1 else 0.0,
            "times": times,
            "repeats": len(times),
            "ops_per_sec": n / best if best > 0 else 0.0,
            "degree": float(degree),
        }
    return {
        "kernel": kernel,
        "topology": topo.signature,
        "connections": n,
        "repeats": repeats,
        "route_seconds": route_seconds,
        "schedulers": schedulers,
        "counters": perf.snapshot(),
    }


def cache_benchmark(
    *,
    repeats: int = 3,
    topology: Topology | None = None,
    scheduler: str = "combined",
) -> dict:
    """Cold vs warm artifact-cache compile of the densest instance.

    Measures three service paths on all-to-all (registers included, the
    full artifact): a **cold** compile into an empty cache, a **warm**
    recompile of the same pattern, and a warm compile of a *translated*
    variant (every endpoint shifted by one admissible torus offset),
    which must also hit thanks to canonicalization.  Warm numbers are
    the best of ``repeats``; cold is a single run per fresh cache,
    repeated, keeping the minimum.  ``speedup`` = cold / warm -- the
    compile-once-run-many ratio the CI perf gate asserts on.
    """
    from repro.analysis.experiments import paper_torus
    from repro.service.cache import ArtifactCache
    from repro.service.canonical import translation_group
    from repro.service.compile import compile_pattern

    topo = topology or paper_torus()
    requests = all_to_all_pattern(topo.num_nodes)
    group = translation_group(topo)
    shift = next((t for t in group if any(t)), group[0])
    coords = [topo.coords(v) for v in range(topo.num_nodes)]
    sigma = [
        topo.node_at([c + t for c, t in zip(coords[v], shift)])
        for v in range(topo.num_nodes)
    ]
    translated = [(sigma[r.src], sigma[r.dst], r.size, r.tag) for r in requests]

    cold = warm = moved = None
    cache = None
    for _ in range(max(1, repeats)):
        cache = ArtifactCache()  # fresh -> genuinely cold
        t0 = perf.perf_timer()
        first = compile_pattern(
            topo, requests, cache=cache, scheduler=scheduler,
            include_registers=True,
        )
        elapsed = perf.perf_timer() - t0
        assert first.cache == "miss"
        cold = elapsed if cold is None else min(cold, elapsed)

        t0 = perf.perf_timer()
        again = compile_pattern(
            topo, requests, cache=cache, scheduler=scheduler,
            include_registers=True,
        )
        elapsed = perf.perf_timer() - t0
        assert again.cache == "hit"
        assert again.schedule_doc == first.schedule_doc
        warm = elapsed if warm is None else min(warm, elapsed)

        t0 = perf.perf_timer()
        shifted = compile_pattern(
            topo, translated, cache=cache, scheduler=scheduler,
            include_registers=True,
        )
        elapsed = perf.perf_timer() - t0
        assert shifted.cache == "hit" or not any(shift)
        moved = elapsed if moved is None else min(moved, elapsed)

    return {
        "topology": topo.signature,
        "scheduler": scheduler,
        "connections": len(requests),
        "repeats": repeats,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "translated_seconds": moved,
        "speedup": cold / warm if warm else 0.0,
        "cache_stats": cache.stats.as_dict(),
    }
