"""Minimal aligned-text table rendering for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render rows as a right-aligned monospace table.

    Floats are shown with one decimal (the paper's precision).
    """
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
